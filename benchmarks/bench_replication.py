"""Region read replicas: hot-region throughput and warm-failover latency.

Two scenarios (docs/replication.md), both emitting tracked metrics into
``BENCH_replication.json`` for the CI regression gate:

* **Hot region.**  ``store_sales`` loaded into a *single* region -- the
  one-server bottleneck replica routing exists to break.  The same scan
  runs primary-only and replica-routed (the region's key range split at
  store-file block boundaries across every replica host); the scan
  stage's simulated-makespan ratio is the hot-region read-throughput win
  and must stay >= 2x.
* **Failover.**  The chaos suite's mid-scan region-server crash, with and
  without replicas.  With a secondary promoted, the scan resumes warm --
  zero backoff seconds -- and total latency must beat the cold
  WAL-replay + retry path.

``BENCH_SMOKE=1`` runs the reduced scale the committed smoke baseline was
recorded at.
"""

from repro.bench.reporting import format_table
from repro.common.faults import (
    FAULT_SCAN_STREAM,
    FaultInjector,
    crash_region_server,
)
from repro.core.catalog import HBaseSparkConf
from repro.workloads.loader import load_tpcds

from conftest import FIXED_SIZE_GB, write_bench_json, write_report

SIZE_GB = FIXED_SIZE_GB
QUERY = ("SELECT ss_item_sk, ss_quantity FROM store_sales "
         "WHERE ss_quantity > 1")
#: same pinned seed as tests/integration/test_replica_chaos.py
CHAOS_SEED = 101
#: small scanner pages so the injected crash lands between result pages
READER_OPTIONS = {HBaseSparkConf.CACHED_ROWS: "40"}

REPLICA_CONF = {"hbase.read.replica": True,
                "hbase.read.replica.staleness": 60}
#: staleness 0 pins failover runs to primary routing (single fault stream)
FAILOVER_CONF = {"hbase.read.replica": True,
                 "hbase.read.replica.staleness": 0}

_RESULTS = {}


def rows(result):
    return [tuple(r.values) for r in result.rows]


def _run_hot_region():
    """One-region table, scanned primary-only vs spread across replicas.

    Each configuration runs the query twice and reports the second run:
    steady state, with the executor connection caches warm, so the
    comparison measures scan throughput rather than first-contact
    connection setup (the block cache is off by default, so nothing else
    warms up between runs).
    """
    cold_env = load_tpcds(SIZE_GB, ["store_sales"], regions_per_table=1)
    cold_session = cold_env.new_session()
    cold_session.sql(QUERY).run()  # warm the connection cache
    cold = cold_session.sql(QUERY).run()
    cold_session.shutdown()

    hot_env = load_tpcds(SIZE_GB, ["store_sales"], regions_per_table=1)
    hot_env.cluster.enable_region_replication(replicas=4)
    session = hot_env.new_session(conf=REPLICA_CONF)
    session.sql(QUERY).run()  # warm the connection cache
    spread = session.sql(QUERY).run()
    session.shutdown()
    return cold, spread


def _run_failover(warm):
    """The pinned crash schedule, with (warm) or without (cold) replicas."""
    env = load_tpcds(SIZE_GB, ["store_sales"])
    if warm:
        env.cluster.enable_region_replication(replicas=1)
    session = env.new_session(conf=FAILOVER_CONF if warm else None,
                              extra_options=READER_OPTIONS)
    session.sql(QUERY).run()  # warm the connection cache, fault-free
    injector = FaultInjector(seed=CHAOS_SEED)
    injector.inject(FAULT_SCAN_STREAM, rate=1.0, after=1, times=1,
                    action=crash_region_server)
    env.cluster.install_fault_injector(injector)
    session.install_fault_injector(injector)
    result = session.sql(QUERY).run()
    session.shutdown()
    assert injector.injected(FAULT_SCAN_STREAM) == 1
    return result


def test_replication(benchmark):
    def run_all():
        _RESULTS["hot"] = _run_hot_region()
        _RESULTS["failover"] = (_run_failover(warm=False),
                                _run_failover(warm=True))

    benchmark.pedantic(run_all, iterations=1, rounds=1)


def test_replication_report(benchmark):
    def report():
        cold, spread = _RESULTS["hot"]
        assert sorted(rows(spread)) == sorted(rows(cold))
        assert spread.metrics.get("hbase.replica.reads") >= 1
        # read throughput = the distributed scan stage's simulated
        # makespan; end-to-end seconds additionally carry the constant
        # driver overhead, which is not what replicas parallelise
        cold_scan = sum(s.duration_s for s in cold.stages)
        spread_scan = sum(s.duration_s for s in spread.stages)
        hot_speedup = cold_scan / spread_scan
        assert hot_speedup >= 2.0, (
            f"replica routing must break the hot-region bottleneck, "
            f"got {hot_speedup:.2f}x")
        assert spread.seconds < cold.seconds  # end-to-end still wins

        slow, warm = _RESULTS["failover"]
        assert rows(warm) == rows(slow)  # exactly-once either way
        assert warm.metrics.get("hbase.replica.failovers") >= 1
        assert warm.metrics.get("hbase.backoff_s") == 0.0
        assert slow.metrics.get("hbase.backoff_s") > 0.0
        failover_speedup = slow.seconds / warm.seconds
        assert warm.seconds < slow.seconds, (
            "warm failover must beat cold WAL-replay recovery")

        write_report(
            "replication",
            format_table(
                ["scenario", "baseline", "replicas", "speedup", "notes"],
                [
                    ["hot region scan", f"{cold_scan:.2f}s",
                     f"{spread_scan:.2f}s", f"{hot_speedup:.2f}x",
                     f"{spread.metrics.get('hbase.replica.reads'):.0f} "
                     "replica scans"],
                    ["hot region e2e", f"{cold.seconds:.2f}s",
                     f"{spread.seconds:.2f}s",
                     f"{cold.seconds / spread.seconds:.2f}x",
                     "includes constant driver overhead"],
                    ["crash failover", f"{slow.seconds:.2f}s",
                     f"{warm.seconds:.2f}s", f"{failover_speedup:.2f}x",
                     f"{warm.metrics.get('hbase.replica.failovers'):.0f} warm "
                     f"failover, {slow.metrics.get('hbase.backoff_s'):.2f}s "
                     "backoff avoided"],
                ],
                f"Region read replicas: store_sales at {SIZE_GB} GB nominal",
            ),
        )
        write_bench_json("replication", {
            "hot_region_scan_speedup": {
                "value": hot_speedup, "direction": "higher"},
            "hot_region_replica_seconds": {
                "value": spread.seconds, "direction": "lower"},
            "failover_speedup": {
                "value": failover_speedup, "direction": "higher"},
            "failover_warm_seconds": {
                "value": warm.seconds, "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Serving overload: open-loop mixed-tenant load against the front door.

Measures single-query capacity, then drives an open-loop (arrivals do not
wait for completions) mixed-tenant workload at 1x, 2x and 4x of that
capacity through a :class:`~repro.serving.QueryServer`, recording p50/p99
end-to-end latency (queue wait + execution, simulated) and *goodput* --
completed queries per simulated second, normalised to capacity.  The
bounded queue plus deterministic shedding must keep goodput near capacity
while overload grows; a final leg injects latency degradation and checks
the circuit breaker opens and sheds instead of letting the queue collapse.

Emits a paper-style table under ``benchmarks/results/`` plus a
``BENCH_serving.json`` artifact for the CI regression gate
(``check_regression.py``).  ``BENCH_SMOKE=1`` runs the reduced scale the
committed smoke baseline was recorded at.
"""

from repro.bench.reporting import format_table
from repro.serving import BreakerConfig, QueryServer, ServingConfig
from repro.workloads.loader import load_tpcds

from conftest import BENCH_SMOKE, FIXED_SIZE_GB, write_bench_json, write_report

QUERY = ("SELECT inv_warehouse_sk, AVG(inv_quantity_on_hand) "
         "FROM inventory GROUP BY inv_warehouse_sk")
TENANTS = ("alpha", "beta", "gamma")
LOADS = (1, 2, 4)
QUERIES_PER_LOAD = 18 if BENCH_SMOKE else 30
SLOTS_PER_QUERY = 2

_RESULTS = {}


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty list (deterministic)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _config(**overrides):
    base = dict(max_queue_depth=8, slots_per_query=SLOTS_PER_QUERY)
    base.update(overrides)
    return ServingConfig(**base)


def _register_tenants(server):
    server.register_tenant("alpha", weight=2.0, reserved_slots=2)
    server.register_tenant("beta", weight=1.0)
    server.register_tenant("gamma", weight=1.0)


def _measure_capacity(env):
    """Single-query seconds and the cluster's concurrent-query capacity.

    Measured under the serving discipline -- the query runs on a leased
    ``SLOTS_PER_QUERY``-slot bulkhead, exactly as served queries will --
    so "capacity" is what the front door can actually deliver:
    ``floor(slots / slots_per_query)`` such queries at once.
    """
    session = env.new_session()
    session.sql(QUERY).run()  # warm the connection cache
    lease = session.cluster.slots()[:SLOTS_PER_QUERY]
    seconds = session.execute_plan(session.sql(QUERY).plan,
                                   slots=lease).seconds
    session.shutdown()
    concurrent = len(session.cluster.slots()) // SLOTS_PER_QUERY
    return seconds, concurrent / seconds  # queries per simulated second


def _run_load(env, multiplier, capacity_qps):
    """One open-loop leg: arrivals at ``multiplier``x capacity."""
    session = env.new_session()
    server = QueryServer(session, config=_config())
    _register_tenants(server)
    interarrival = 1.0 / (capacity_qps * multiplier)
    tickets = [
        server.submit(QUERY, tenant=TENANTS[i % len(TENANTS)],
                      at=i * interarrival)
        for i in range(QUERIES_PER_LOAD)
    ]
    server.drain()
    session.shutdown()
    done = [t for t in tickets if t.status == "completed"]
    shed = [t for t in tickets if t.status == "shed"]
    horizon = max(t.finish_s for t in tickets)
    goodput_qps = len(done) / horizon if horizon else 0.0
    latencies = [t.latency_s for t in done]
    return {
        "offered_qps": capacity_qps * multiplier,
        "completed": len(done),
        "shed": len(shed),
        "goodput_ratio": goodput_qps / capacity_qps,
        "p50_s": _percentile(latencies, 50),
        "p99_s": _percentile(latencies, 99),
        "queue_wait_s": server.metrics.get("serving.queue_wait_s"),
    }


def _run_degraded(env, single_query_s):
    """The breaker leg: every completion reads as degraded latency."""
    session = env.new_session()
    breaker = BreakerConfig(window=6, min_samples=3, failure_threshold=0.5,
                            cooldown_s=10.0 * single_query_s, probe_count=2,
                            latency_threshold_s=0.5 * single_query_s)
    server = QueryServer(session, config=_config(breaker=breaker))
    _register_tenants(server)
    tickets = [
        server.submit(QUERY, tenant=TENANTS[i % len(TENANTS)],
                      at=i * 0.5 * single_query_s)
        for i in range(QUERIES_PER_LOAD)
    ]
    server.drain()
    session.shutdown()
    return {
        "opened": server.metrics.get("serving.breaker.opened"),
        "shed_breaker": server.metrics.get("serving.shed.breaker_open"),
        "completed": sum(1 for t in tickets if t.status == "completed"),
    }


def test_serving_overload(benchmark):
    def run_all():
        env = load_tpcds(FIXED_SIZE_GB, ["inventory"])
        single_s, capacity_qps = _measure_capacity(env)
        _RESULTS["capacity"] = (single_s, capacity_qps)
        for load in LOADS:
            _RESULTS[load] = _run_load(env, load, capacity_qps)
        _RESULTS["degraded"] = _run_degraded(env, single_s)

    benchmark.pedantic(run_all, iterations=1, rounds=1)


def test_serving_overload_report(benchmark):
    def report():
        single_s, capacity_qps = _RESULTS["capacity"]
        rows = []
        for load in LOADS:
            leg = _RESULTS[load]
            rows.append([
                f"{load}x",
                f"{leg['offered_qps']:.3f}/s",
                leg["completed"],
                leg["shed"],
                f"{leg['goodput_ratio']:.2f}",
                f"{leg['p50_s']:.2f}s",
                f"{leg['p99_s']:.2f}s",
            ])
        degraded = _RESULTS["degraded"]
        # the load-shedding contract: overload must not collapse goodput --
        # at 4x open-loop load the completed work still fills >= 80% of
        # measured capacity, and p99 stays bounded by the queue depth
        assert _RESULTS[4]["goodput_ratio"] >= 0.8
        assert _RESULTS[4]["shed"] > 0
        queue_bound_s = single_s * (1 + _config().max_queue_depth)
        assert _RESULTS[4]["p99_s"] <= queue_bound_s
        # and the breaker really opens under injected degradation
        assert degraded["opened"] >= 1
        assert degraded["shed_breaker"] >= 1
        write_report(
            "serving_overload",
            format_table(
                ["load", "offered", "completed", "shed", "goodput/capacity",
                 "p50", "p99"],
                rows,
                f"Serving overload: open-loop mixed tenants at "
                f"{FIXED_SIZE_GB} GB nominal, capacity "
                f"{capacity_qps:.3f} q/s ({single_s:.2f}s per query); "
                f"breaker leg: opened={degraded['opened']:.0f} "
                f"shed={degraded['shed_breaker']:.0f}",
            ),
        )
        write_bench_json("serving", {
            "goodput_ratio_4x": {
                "value": _RESULTS[4]["goodput_ratio"],
                "direction": "higher"},
            "p50_latency_1x_s": {
                "value": _RESULTS[1]["p50_s"], "direction": "lower"},
            "p99_latency_4x_s": {
                "value": _RESULTS[4]["p99_s"], "direction": "lower"},
            "breaker_opened": {
                "value": degraded["opened"], "direction": "higher"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Ablation: vectorized columnar execution (batch kernels + fusion).

Two workloads, three configurations each -- row engine, vectorized,
vectorized with whole-stage fusion disabled:

* **scan-heavy leg** -- a synthetic wide-conjunct filter + expression-heavy
  aggregation over a driver-local relation, run on the serial stage runner
  so measured wall clock is pure operator CPU.  This is where batch kernels
  shine: the row path walks an expression tree per row while the vectorized
  path runs a handful of column kernels per 1024-row batch.  Acceptance bar
  from the issue: **>= 2x measured wall-clock speedup**.
* **q39a + fig4 suite** -- the paper's TPC-DS repro queries (q39a, q39b,
  q38) full-stack over the HBase substrate, each configuration against a
  freshly loaded environment so block-cache state cannot leak between legs.
  Rows must be identical in all three configurations.

Wall clock is asserted in-bench (ratios, not absolutes) but never exported:
``BENCH_vectorized.json`` carries only deterministic simulated totals and
batch/fusion counter values for the CI regression gate
(``check_regression.py --require vectorized``).
"""

import random
import time

import pytest

from repro.sql.session import SparkSession
from repro.sql.types import DoubleType, LongType, StringType, StructField, StructType
from repro.workloads import load_tpcds
from repro.workloads.queries import q38, q39a, q39b
from repro.workloads.tpcds_schema import Q38_TABLES, Q39_TABLES

from conftest import BENCH_SMOKE, FIXED_SIZE_GB, write_bench_json, write_report
from repro.bench.reporting import format_table

SCAN_SCHEMA = StructType([
    StructField("id", LongType),
    StructField("k", LongType),
    StructField("v", DoubleType),
    StructField("tag", StringType),
])

#: scan-heavy relation size; the speedup ratio is scale-stable, so smoke
#: only needs enough rows to swamp fixed scheduling overhead
SCAN_ROWS = 60_000 if BENCH_SMOKE else 120_000

#: wide non-selective conjuncts + expression-heavy aggregates: every row
#: pays the full interpreter walk on the row path, one kernel sweep per
#: expression on the batch path
SCAN_HEAVY_SQL = (
    "SELECT count(*) AS n, sum(v * 2.0 + 1.0) AS s1, sum(v * v - k) AS s2, "
    "sum(k % 7) AS s3, max(v + k) AS mx "
    "FROM t WHERE k >= 0 AND k < 990 AND v > 0.5 AND v < 99.5 "
    "AND id % 97 != 96 AND k % 13 != 12 AND v * 2.0 < 199.0"
)

SERIAL_CONF = {"engine.parallel.enabled": False}

CONFIGS = {
    "row": {"sql.vectorized.enabled": False},
    "vectorized": {"sql.vectorized.enabled": True},
    "vectorized nofusion": {"sql.vectorized.enabled": True,
                            "sql.vectorized.fusion": False},
}

_SCAN_RESULTS = {}
_SUITE_RESULTS = {}


def _scan_rows():
    rng = random.Random(7)
    return [(i, rng.randint(0, 999), rng.uniform(0.0, 100.0),
             rng.choice(["a", "b", "c", None])) for i in range(SCAN_ROWS)]


def _run_scan_heavy(conf):
    """Best-of-3 wall clock on the serial runner, plus the (deterministic)
    last QueryResult for simulated totals and counters."""
    session = SparkSession(["h1", "h2"], conf=dict(SERIAL_CONF, **conf))
    session.create_dataframe(_scan_rows(), SCAN_SCHEMA) \
        .create_or_replace_temp_view("t")
    best_wall = None
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = session.sql(SCAN_HEAVY_SQL).run()
        wall = time.perf_counter() - start
        best_wall = wall if best_wall is None else min(best_wall, wall)
    session.shutdown()
    return result, best_wall


@pytest.mark.parametrize("label", list(CONFIGS))
def test_scan_heavy(benchmark, label):
    _SCAN_RESULTS[label] = benchmark.pedantic(
        lambda: _run_scan_heavy(CONFIGS[label]), iterations=1, rounds=1)


FIG4_QUERIES = (("q39a", q39a, Q39_TABLES), ("q39b", q39b, Q39_TABLES),
                ("q38", q38, Q38_TABLES))


def _run_suite(conf):
    """q39a/q39b/q38 full-stack, one fresh environment per query+config."""
    runs = {}
    for name, query_fn, tables in FIG4_QUERIES:
        env = load_tpcds(FIXED_SIZE_GB, tables)
        session = env.new_session(conf=conf)
        runs[name] = session.sql(query_fn()).run()
        session.shutdown()
    return runs


@pytest.mark.parametrize("label", list(CONFIGS))
def test_fig4_suite(benchmark, label):
    _SUITE_RESULTS[label] = benchmark.pedantic(
        lambda: _run_suite(CONFIGS[label]), iterations=1, rounds=1)


def test_vectorized_report(benchmark):
    def report():
        table_rows = []
        for label in CONFIGS:
            result, wall = _SCAN_RESULTS[label]
            suite = _SUITE_RESULTS[label]
            suite_sim = sum(r.seconds for r in suite.values())
            table_rows.append([
                label,
                f"{wall:.3f}s",
                f"{result.seconds:.2f}s",
                f"{suite_sim:.2f}s",
                f"{int(result.metrics.get('engine.vectorized.batches'))}",
                f"{int(result.metrics.get('engine.vectorized.fused_operators'))}",
            ])
        write_report(
            "ablation_vectorized",
            format_table(
                ["configuration", "scan wall (best of 3)", "scan sim",
                 "fig4 suite sim", "batches", "fused ops"],
                table_rows,
                f"Ablation: vectorized execution "
                f"({SCAN_ROWS} scan rows, {FIXED_SIZE_GB}GB suite)",
            ),
        )

        # identical answers everywhere: the scan leg ...
        row_scan, row_wall = _SCAN_RESULTS["row"]
        want = [tuple(r.values) for r in row_scan.rows]
        for label in ("vectorized", "vectorized nofusion"):
            got = [tuple(r.values) for r in _SCAN_RESULTS[label][0].rows]
            assert got == want, label
        # ... and q39a + the whole fig4 suite
        for name, __, __tables in FIG4_QUERIES:
            want = [tuple(r.values) for r in _SUITE_RESULTS["row"][name].rows]
            for label in ("vectorized", "vectorized nofusion"):
                got = [tuple(r.values)
                       for r in _SUITE_RESULTS[label][name].rows]
                assert got == want, (name, label)

        # the row engine must not touch any vectorized machinery
        for result in (row_scan, *_SUITE_RESULTS["row"].values()):
            for key in result.metrics.snapshot():
                assert not key.startswith("engine.vectorized."), key

        vec_scan, vec_wall = _SCAN_RESULTS["vectorized"]
        wall_speedup = row_wall / vec_wall
        # the issue's acceptance bar: batch kernels + fusion cut measured
        # wall clock on the scan-heavy leg by >= 2x
        assert wall_speedup >= 2.0, wall_speedup
        assert vec_scan.metrics.get("engine.vectorized.fused_operators") >= 2
        print(f"scan-heavy wall-clock speedup: {wall_speedup:.2f}x")

        sim_speedup = row_scan.seconds / vec_scan.seconds
        q39a_row = _SUITE_RESULTS["row"]["q39a"]
        q39a_vec = _SUITE_RESULTS["vectorized"]["q39a"]
        q39a_nof = _SUITE_RESULTS["vectorized nofusion"]["q39a"]
        write_bench_json("vectorized", {
            "scan_row_sim_seconds": {
                "value": row_scan.seconds, "direction": "lower"},
            "scan_vectorized_sim_seconds": {
                "value": vec_scan.seconds, "direction": "lower"},
            "scan_sim_speedup": {
                "value": sim_speedup, "direction": "higher"},
            "scan_batches": {
                "value": vec_scan.metrics.get("engine.vectorized.batches"),
                "direction": "higher"},
            "scan_fused_operators": {
                "value": vec_scan.metrics.get(
                    "engine.vectorized.fused_operators"),
                "direction": "higher"},
            "q39a_row_sim_seconds": {
                "value": q39a_row.seconds, "direction": "lower"},
            "q39a_vectorized_sim_seconds": {
                "value": q39a_vec.seconds, "direction": "lower"},
            "q39a_nofusion_sim_seconds": {
                "value": q39a_nof.seconds, "direction": "lower"},
            "fig4_suite_vectorized_sim_seconds": {
                "value": sum(r.seconds for r in
                             _SUITE_RESULTS["vectorized"].values()),
                "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

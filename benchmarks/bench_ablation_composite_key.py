"""Ablation: composite-key pruning -- first dimension vs all dimensions.

The shipped SHC prunes on the first dimension of composite keys only; the
paper's future-work section promises all-dimension pruning.  Both are
implemented here; this bench quantifies what the extension buys on a query
constraining several leading key dimensions.
"""

import json

import pytest

from repro.bench.reporting import format_table
from repro.core.catalog import HBaseSparkConf, HBaseTableCatalog
from repro.core.relation import DEFAULT_FORMAT
from repro.hbase.cluster import HBaseCluster
from repro.sql.session import SparkSession
from repro.sql.types import DoubleType, IntegerType, StructField, StructType

from conftest import write_report

CATALOG = json.dumps({
    "table": {"namespace": "default", "name": "metrics", "tableCoder": "Phoenix"},
    "rowkey": "day:sensor:seq",
    "columns": {
        "day": {"cf": "rowkey", "col": "day", "type": "int"},
        "sensor": {"cf": "rowkey", "col": "sensor", "type": "int"},
        "seq": {"cf": "rowkey", "col": "seq", "type": "int"},
        "reading": {"cf": "f", "col": "reading", "type": "double"},
    },
})
SCHEMA = StructType([
    StructField("day", IntegerType),
    StructField("sensor", IntegerType),
    StructField("seq", IntegerType),
    StructField("reading", DoubleType),
])
HOSTS = ["node1", "node2", "node3"]
_RESULTS = {}


@pytest.fixture(scope="module")
def loaded():
    cluster = HBaseCluster("compkey", HOSTS)
    session = SparkSession(HOSTS, executors_requested=3, clock=cluster.clock)
    rows = [
        (day, sensor, seq, float(day * sensor + seq))
        for day in range(30)
        for sensor in range(20)
        for seq in range(3)
    ]
    options = {
        HBaseTableCatalog.tableCatalog: CATALOG,
        HBaseTableCatalog.newTable: "6",
        "hbase.zookeeper.quorum": cluster.quorum,
    }
    session.create_dataframe(rows, SCHEMA).write \
        .format(DEFAULT_FORMAT).options(options).save()
    cluster.compact_table("metrics", major=True)
    return session, options


QUERY = "day = 17 and sensor = 7"


@pytest.mark.parametrize("label,extra", [
    ("first-dimension (paper)", {}),
    ("all-dimension (future work)", {HBaseSparkConf.PRUNE_ALL_DIMENSIONS: "true"}),
])
def test_composite_pruning(benchmark, loaded, label, extra):
    session, options = loaded
    merged = dict(options)
    merged.update(extra)

    def run():
        df = session.read.format(DEFAULT_FORMAT).options(merged).load()
        return df.filter(QUERY).run()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS[label] = result
    benchmark.extra_info["simulated_seconds"] = result.seconds


def test_composite_pruning_report(benchmark):
    def report():
        first = _RESULTS["first-dimension (paper)"]
        alldim = _RESULTS["all-dimension (future work)"]
        rows = [
            [label, f"{r.seconds:.2f}s",
             f"{r.metrics.get('hbase.rows_visited', 0):.0f}",
             f"{r.metrics.get('hbase.bytes_scanned', 0) / 1024:.1f}KB"]
            for label, r in _RESULTS.items()
        ]
        write_report(
            "ablation_composite_key",
            format_table(["pruning mode", "latency", "rows visited", "bytes scanned"],
                         rows, f"Ablation: composite-key pruning ({QUERY})"),
        )
        assert sorted(map(tuple, first.rows)) == sorted(map(tuple, alldim.rows))
        assert alldim.metrics.get("hbase.rows_visited") <= \
            first.metrics.get("hbase.rows_visited")
        assert alldim.seconds <= first.seconds


    benchmark.pedantic(report, iterations=1, rounds=1)
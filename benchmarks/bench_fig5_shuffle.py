"""Figure 5: data shuffle cost (KB) vs data size.

Paper shape: SHC shuffles far less than Spark SQL while joining multiple
tables, because pushed-down predicates (and size statistics enabling
broadcast joins) keep the fact table out of the exchanges.
"""

import pytest

from repro.bench.harness import SHC_SYSTEM, SPARKSQL_SYSTEM, run_query
from repro.bench.reporting import format_series_table
from repro.workloads.queries import q39a, q39b

from conftest import DATA_SIZES_GB, write_report

_RUNS = []


@pytest.mark.parametrize("size", DATA_SIZES_GB)
@pytest.mark.parametrize("system", [SHC_SYSTEM, SPARKSQL_SYSTEM],
                         ids=lambda s: s.label)
@pytest.mark.parametrize("query_name,query_fn", [("q39a", q39a), ("q39b", q39b)])
def test_fig5_shuffle(benchmark, q39_envs, size, system, query_name, query_fn):
    env = q39_envs[size]
    sql = query_fn()

    def run():
        return run_query(env, system, query_name, sql)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["shuffle_kb"] = result.shuffle_kb
    _RUNS.append(result)


def test_fig5_report(benchmark):
    def report():
        for query_name in ("q39a", "q39b"):
            runs = [r for r in _RUNS if r.query == query_name]
            panel = "a" if query_name == "q39a" else "b"
            write_report(
                f"fig5{panel}_{query_name}_shuffle",
                format_series_table(
                    runs, "shuffle_kb",
                    f"Figure 5({panel}): {query_name} shuffle volume vs data size",
                    unit="KB",
                ),
            )
            by_key = {(r.system, r.size_gb): r.shuffle_kb for r in runs}
            for size in sorted({r.size_gb for r in runs}):
                assert by_key[("SHC", size)] < by_key[("SparkSQL", size)]


    benchmark.pedantic(report, iterations=1, rounds=1)
"""Ablation: HDFS short-circuit locality across a region's lifecycle.

Not a paper table -- the HDFS substrate (DESIGN.md module map) makes HBase's
locality lifecycle measurable: flushes write host-local store files; moving
a region to a non-replica host forces remote block reads; the next major
compaction rewrites the files locally and restores scan speed.
"""

import itertools

import pytest

from repro.bench.reporting import format_table
from repro.common.metrics import CostLedger
from repro.hbase import ConnectionFactory, Put
from repro.hbase.cluster import HBaseCluster

from conftest import write_report

HOSTS = [f"node{i}" for i in range(1, 6)]
_ids = itertools.count(1)
_RESULTS = {}


def build_moved_region():
    cluster = HBaseCluster(f"hdfsloc{next(_ids)}", HOSTS, hdfs_replication=3)
    cluster.create_table("t", ["f"])
    table = ConnectionFactory.create_connection(
        cluster.configuration()).get_table("t")
    for i in range(800):
        table.put(Put(b"r%04d" % i).add_column("f", "q", b"x" * 60))
    cluster.flush_table("t")
    master = cluster.active_master
    region_name = cluster.region_locations("t")[0].region_name
    owner = master.assignments[region_name]
    region = cluster.region_servers[owner].close_region(region_name)
    replica_hosts = {
        h for store in region.stores.values() for f in store.files
        for h in f.hdfs_file.replica_hosts
    }
    target = next(s for s in cluster.region_servers.values()
                  if s.host not in replica_hosts)
    target.open_region(region)
    master.assignments[region_name] = target.server_id
    return cluster, target, region_name


def scan_seconds(server, region_name):
    ledger = CostLedger()
    server.scan(region_name, ledger=ledger)
    return ledger.seconds, ledger.metrics.get("hbase.remote_hdfs_bytes", 0)


def test_locality_lifecycle(benchmark):
    def run():
        cluster, server, region_name = build_moved_region()
        after_move, remote_moved = scan_seconds(server, region_name)
        server.compact_region(region_name, major=True)
        after_compaction, remote_compacted = scan_seconds(server, region_name)
        return after_move, remote_moved, after_compaction, remote_compacted

    after_move, remote_moved, after_compaction, remote_compacted = \
        benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.update({
        "after region move": (after_move, remote_moved),
        "after major compaction": (after_compaction, remote_compacted),
    })


def test_locality_lifecycle_report(benchmark):
    def report():
        rows = [
            [phase, f"{seconds:.2f}s", f"{remote / 1024:.0f}KB"]
            for phase, (seconds, remote) in _RESULTS.items()
        ]
        write_report(
            "ablation_hdfs_locality",
            format_table(["phase", "region scan", "remote HDFS bytes"],
                         rows, "Ablation: HDFS locality across a region move"),
        )
        moved = _RESULTS["after region move"]
        compacted = _RESULTS["after major compaction"]
        assert moved[1] > 0 and compacted[1] == 0
        assert compacted[0] < moved[0]

    benchmark.pedantic(report, iterations=1, rounds=1)

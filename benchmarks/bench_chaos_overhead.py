"""Chaos overhead: what a crash schedule costs in query latency.

Each pinned seed runs q39a fault-free and then under the chaos schedule the
integration suite replays (a region-server crash mid-scan plus transient RPC
faults).  The answer must be byte-identical; the simulated latency gap is
the price of recovery -- retries, backoff, relocation and re-scanning --
which this benchmark records per seed into ``benchmarks/results/`` along
with a ``BENCH_chaos.json`` artifact for the CI regression gate
(``check_regression.py``).  ``BENCH_SMOKE=1`` runs the reduced scale the
committed smoke baseline was recorded at.
"""

from repro.bench.reporting import format_table
from repro.common.faults import (
    FAULT_RPC,
    FAULT_SCAN_STREAM,
    FaultInjector,
    crash_region_server,
)
from repro.core.catalog import HBaseSparkConf
from repro.workloads.loader import load_tpcds
from repro.workloads.queries import q39a
from repro.workloads.tpcds_schema import Q39_TABLES

from conftest import FIXED_SIZE_GB, write_bench_json, write_report

#: same pinned seeds as tests/integration/test_chaos.py
CHAOS_SEEDS = (101, 202, 303)
SIZE_GB = FIXED_SIZE_GB
#: small scanner pages so the injected crash lands between result pages
READER_OPTIONS = {HBaseSparkConf.CACHED_ROWS: "40"}

_RESULTS = {}


def _chaos_injector(seed):
    injector = FaultInjector(seed=seed)
    injector.inject(FAULT_SCAN_STREAM, rate=1.0, after=1, times=1,
                    action=crash_region_server)
    injector.inject(FAULT_RPC, rate=0.3, times=5)
    return injector


def _run_pair(seed):
    env = load_tpcds(SIZE_GB, Q39_TABLES)
    baseline = env.new_session(extra_options=READER_OPTIONS) \
        .sql(q39a()).run()
    injector = _chaos_injector(seed)
    env.cluster.install_fault_injector(injector)
    session = env.new_session(extra_options=READER_OPTIONS)
    session.install_fault_injector(injector)
    chaos = session.sql(q39a()).run()
    crashed = sum(1 for s in env.cluster.region_servers.values() if not s.alive)
    return baseline, chaos, injector, crashed


def test_chaos_overhead(benchmark):
    def run_all():
        for seed in CHAOS_SEEDS:
            _RESULTS[seed] = _run_pair(seed)

    benchmark.pedantic(run_all, iterations=1, rounds=1)


def test_chaos_overhead_report(benchmark):
    def report():
        rows = []
        for seed, (baseline, chaos, injector, crashed) in _RESULTS.items():
            # identical answers under chaos, and the schedule really ran
            assert [tuple(r.values) for r in chaos.rows] == \
                [tuple(r.values) for r in baseline.rows]
            assert crashed == 1
            assert chaos.metrics.get("hbase.retries") >= 1
            rows.append([
                seed,
                f"{baseline.seconds:.2f}s",
                f"{chaos.seconds:.2f}s",
                f"{chaos.seconds / baseline.seconds:.2f}x",
                f"{injector.injected():.0f}",
                f"{chaos.metrics.get('hbase.retries'):.0f}",
                f"{chaos.metrics.get('shc.scan_resumes'):.0f}",
                f"{chaos.metrics.get('hbase.backoff_s'):.2f}s",
            ])
        write_report(
            "chaos_overhead",
            format_table(
                ["seed", "fault-free", "crash schedule", "overhead",
                 "faults", "retries", "resumes", "backoff"],
                rows,
                f"Chaos overhead: q39a at {SIZE_GB} GB nominal, "
                "one region-server crash + transient RPC faults",
            ),
        )
        pairs = list(_RESULTS.values())
        baseline_mean = sum(b.seconds for b, *_ in pairs) / len(pairs)
        chaos_mean = sum(c.seconds for __, c, *_ in pairs) / len(pairs)
        write_bench_json("chaos", {
            "fault_free_seconds_mean": {
                "value": baseline_mean, "direction": "lower"},
            "chaos_seconds_mean": {
                "value": chaos_mean, "direction": "lower"},
            "overhead_ratio_mean": {
                "value": chaos_mean / baseline_mean, "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

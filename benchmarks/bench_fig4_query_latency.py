"""Figure 4: query latency vs data size, SHC vs vanilla Spark SQL.

Paper shape: SHC achieves several-fold better latency on both q39 variants;
Spark SQL's latency grows steeply with data size (full scans, no pushdown,
no partition pruning) while SHC grows slowly (it narrows the input to a few
partitions).
"""

import pytest

from repro.bench.harness import SHC_SYSTEM, SPARKSQL_SYSTEM, run_query
from repro.bench.reporting import format_series_table
from repro.workloads.queries import q39a, q39b

from conftest import DATA_SIZES_GB, write_report

_RUNS = []


@pytest.mark.parametrize("size", DATA_SIZES_GB)
@pytest.mark.parametrize("system", [SHC_SYSTEM, SPARKSQL_SYSTEM],
                         ids=lambda s: s.label)
@pytest.mark.parametrize("query_name,query_fn", [("q39a", q39a), ("q39b", q39b)])
def test_fig4_latency(benchmark, q39_envs, size, system, query_name, query_fn):
    env = q39_envs[size]
    sql = query_fn()

    def run():
        return run_query(env, system, query_name, sql)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["size_gb"] = size
    _RUNS.append(result)
    assert result.rows >= 0


def test_fig4_report(benchmark, q39_envs):
    def report():
        """Render both panels and check the paper's qualitative claims."""
        for query_name in ("q39a", "q39b"):
            runs = [r for r in _RUNS if r.query == query_name]
            panel = "a" if query_name == "q39a" else "b"
            write_report(
                f"fig4{panel}_{query_name}_latency",
                format_series_table(
                    runs, "seconds",
                    f"Figure 4({panel}): {query_name} query latency vs data size",
                ),
            )
            by_key = {(r.system, r.size_gb): r.seconds for r in runs}
            sizes = sorted({r.size_gb for r in runs})
            for size in sizes:
                assert by_key[("SHC", size)] < by_key[("SparkSQL", size)]
            # SparkSQL grows much more steeply than SHC across the sweep
            shc_growth = by_key[("SHC", sizes[-1])] / by_key[("SHC", sizes[0])]
            sparksql_growth = (
                by_key[("SparkSQL", sizes[-1])] / by_key[("SparkSQL", sizes[0])]
            )
            assert sparksql_growth > shc_growth
            # the gap widens with size (SHC "narrows the table down quickly")
            assert (by_key[("SparkSQL", sizes[-1])] / by_key[("SHC", sizes[-1])]) > \
                (by_key[("SparkSQL", sizes[0])] / by_key[("SHC", sizes[0])]) * 0.9


    benchmark.pedantic(report, iterations=1, rounds=1)
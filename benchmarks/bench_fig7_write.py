"""Figure 7: write performance vs data size.

Paper shape: SHC outperforms Spark SQL by >20% on data writes (more
efficient data encoding); the gap narrows as data grows because both
systems become bound by the cluster's ingest bandwidth.  Panel (a) writes
the q39a tables, panel (b) the q38 tables (matching the paper, which pairs
q39a with q38 in this figure).
"""

import itertools

import pytest

from repro.baselines import BASELINE_FORMAT
from repro.bench.reporting import format_table
from repro.common.simclock import SimClock
from repro.core.catalog import HBaseTableCatalog
from repro.core.relation import DEFAULT_FORMAT
from repro.hbase.cluster import HBaseCluster
from repro.sql.session import SparkSession
from repro.workloads.tpcds_gen import TpcdsGenerator
from repro.workloads.tpcds_schema import Q38_TABLES, Q39_TABLES, TABLES, catalog_json

from conftest import DATA_SIZES_GB, write_report

HOSTS = ["node1", "node2", "node3", "node4", "node5"]
_ids = itertools.count(1)
_RESULTS = {}


def write_tables(format_name: str, size: int, tables) -> float:
    """Write a table set through one connector; returns simulated seconds."""
    clock = SimClock()
    cluster = HBaseCluster(f"figure7-{next(_ids)}", HOSTS, clock=clock)
    session = SparkSession(HOSTS, executors_requested=5, clock=clock)
    generator = TpcdsGenerator(size)
    total = 0.0
    for table in tables:
        spec = TABLES[table]
        df = session.create_dataframe(generator.rows_for(table), spec.schema())
        result = df.write.format(format_name).options({
            HBaseTableCatalog.tableCatalog: catalog_json(spec),
            HBaseTableCatalog.newTable: str(len(HOSTS)),
            "hbase.zookeeper.quorum": cluster.quorum,
        }).save()
        total += result.seconds
    return total


@pytest.mark.parametrize("size", DATA_SIZES_GB)
@pytest.mark.parametrize("system,format_name",
                         [("SHC", DEFAULT_FORMAT), ("SparkSQL", BASELINE_FORMAT)])
@pytest.mark.parametrize("panel,tables",
                         [("q39a", Q39_TABLES), ("q38", Q38_TABLES)])
def test_fig7_write(benchmark, size, system, format_name, panel, tables):
    def run():
        return write_tables(format_name, size, tables)

    seconds = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_seconds"] = seconds
    _RESULTS[(panel, system, size)] = seconds


def test_fig7_report(benchmark):
    def report():
        for panel in ("q39a", "q38"):
            label = "a" if panel == "q39a" else "b"
            headers = ["system"] + [f"{s} GB" for s in DATA_SIZES_GB]
            rows = []
            for system in ("SHC", "SparkSQL"):
                rows.append([system] + [
                    f"{_RESULTS[(panel, system, s)]:.1f}s" for s in DATA_SIZES_GB
                ])
            write_report(
                f"fig7{label}_{panel}_write",
                format_table(headers, rows,
                             f"Figure 7({label}): {panel} tables write time vs size"),
            )
            ratios = [
                _RESULTS[(panel, "SparkSQL", s)] / _RESULTS[(panel, "SHC", s)]
                for s in DATA_SIZES_GB
            ]
            # SHC wins by 20%+ at the small end...
            assert ratios[0] > 1.2
            # ...and the advantage narrows as data size grows
            assert ratios[-1] < ratios[0]
            assert all(r > 1.0 for r in ratios)


    benchmark.pedantic(report, iterations=1, rounds=1)
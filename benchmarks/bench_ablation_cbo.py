"""Ablation: the cost-based optimizer on a star join (docs/optimizer.md).

A star query written in the worst syntactic order: the fact table joins a
same-cardinality dimension first (nothing is eliminated, every wide fact
row crosses the shuffle), and only then the tiny selective dimension that
keeps ~5% of the keys.  Three legs:

* **cbo off** -- the seed path: shuffle everything in syntactic order.
* **reorder** -- ``sql.cbo.enabled`` with semi-join reduction disabled:
  the DP search hoists the selective tiny join next to the fact table, so
  the expensive dimension join sees an already-reduced input.
* **reorder + semijoin** -- the full CBO: additionally pre-filters the
  fact side by the tiny build's distinct keys *before* the first shuffle
  (``sql.cbo.semijoin.rows_pruned``).

Statistics come free here (driver-local relations compute exact stats),
so the legs isolate the *decisions*, not ANALYZE cost.  The broadcast
threshold is pinned tiny to keep every join shuffled -- the ablation
measures reordering and reduction, not broadcast conversion -- and the
thread-pool runner is disabled for deterministic simulated totals.
Acceptance bar from the issue: the full CBO leg must be >= 5x cheaper in
simulated seconds than the CBO-off leg.  Every leg must return identical
rows.  Totals are exported as ``BENCH_cbo.json`` for the CI regression
gate (``check_regression.py --require cbo``).
"""

import pytest

from repro.sql.session import SparkSession
from repro.sql.types import DoubleType, IntegerType, StringType, StructField, \
    StructType

from conftest import BENCH_SMOKE, write_bench_json, write_report
from repro.bench.reporting import format_table

FACT_SCHEMA = StructType([
    StructField("fk1", IntegerType),
    StructField("fk2", IntegerType),
    StructField("v", DoubleType),
    StructField("payload", StringType),
])
DIM_SCHEMA = StructType([
    StructField("dk", IntegerType),
    StructField("dname", StringType),
])
TINY_SCHEMA = StructType([
    StructField("tk", IntegerType),
    StructField("tname", StringType),
])

HOSTS = ["h1", "h2", "h3", "h4", "h5"]

#: fact-table rows for the star workload
FACT_ROWS = 3_000 if BENCH_SMOKE else 10_000
DIM_KEYS = 400
FACT_TK_KEYS = 40
#: the selective dimension covers 5% of the fact's tk domain
TINY_KEYS = 2

BASE_CONF = {
    "sql.autoBroadcastJoinThreshold": 1,   # keep every join shuffled
    "sql.shuffle.partitions": 8,
    "sql.local.scan.partitions": 4,
    "engine.parallel.enabled": False,
}

#: worst syntactic order: the non-reducing dim join comes first
STAR_SQL = (
    "SELECT t.tname, d.dname, f.v, f.payload FROM fact f "
    "JOIN dim d ON f.fk1 = d.dk "
    "JOIN tiny t ON f.fk2 = t.tk"
)

LEGS = {
    "cbo off": {},
    "reorder": {"sql.cbo.enabled": True, "sql.cbo.semijoin": False},
    "reorder + semijoin": {"sql.cbo.enabled": True},
}

_RESULTS = {}


def _run(leg_conf):
    session = SparkSession(HOSTS, conf=dict(BASE_CONF, **leg_conf))
    fact = [(i % DIM_KEYS, i % FACT_TK_KEYS, float(i),
             f"payload-{i:06d}-" + "x" * 320) for i in range(FACT_ROWS)]
    dim = [(k, f"dim-{k:03d}") for k in range(DIM_KEYS)]
    tiny = [(k, f"tiny-{k}") for k in range(TINY_KEYS)]
    session.create_dataframe(fact, FACT_SCHEMA) \
        .create_or_replace_temp_view("fact")
    session.create_dataframe(dim, DIM_SCHEMA) \
        .create_or_replace_temp_view("dim")
    session.create_dataframe(tiny, TINY_SCHEMA) \
        .create_or_replace_temp_view("tiny")
    result = session.sql(STAR_SQL).run()
    session.shutdown()
    return result


@pytest.mark.parametrize("label", list(LEGS))
def test_cbo(benchmark, label):
    _RESULTS[label] = benchmark.pedantic(
        lambda: _run(LEGS[label]), iterations=1, rounds=1)


def test_cbo_report(benchmark):
    def report():
        rows = []
        for label, run in _RESULTS.items():
            rows.append([
                label,
                f"{run.seconds:.2f}s",
                f"{int(run.metrics.get('sql.cbo.reorders_applied'))}",
                f"{int(run.metrics.get('sql.cbo.semijoins_applied'))}",
                f"{int(run.metrics.get('sql.cbo.semijoin.rows_pruned'))}",
                f"{int(run.metrics.get('engine.shuffle_write_bytes'))}",
            ])
        write_report(
            "ablation_cbo",
            format_table(
                ["configuration", "sim latency", "reorders", "semi-joins",
                 "rows pruned", "shuffle bytes"],
                rows,
                f"Ablation: cost-based optimizer on a star join "
                f"({FACT_ROWS} fact rows, {TINY_KEYS}/{FACT_TK_KEYS} "
                f"selective keys)",
            ),
        )

        # identical answers on every leg
        expected = sorted(tuple(r.values) for r in _RESULTS["cbo off"].rows)
        for label, run in _RESULTS.items():
            assert sorted(tuple(r.values) for r in run.rows) == expected, label

        # the seed leg must not touch any CBO machinery
        for key in _RESULTS["cbo off"].metrics.snapshot():
            assert not key.startswith("sql.cbo."), key

        reorder = _RESULTS["reorder"]
        full = _RESULTS["reorder + semijoin"]
        assert reorder.metrics.get("sql.cbo.reorders_applied") >= 1.0
        assert reorder.metrics.get("sql.cbo.semijoins_applied") == 0.0
        assert full.metrics.get("sql.cbo.semijoins_applied") >= 1.0
        assert full.metrics.get("sql.cbo.semijoin.rows_pruned") > 0.0

        off_seconds = _RESULTS["cbo off"].seconds
        speedup = off_seconds / full.seconds
        # the issue's acceptance bar: the full CBO plan is >= 5x cheaper
        assert speedup >= 5.0, speedup
        # and the semi-join leg must not be slower than reorder alone
        assert full.seconds <= reorder.seconds * 1.05

        write_bench_json("cbo", {
            "cbo_off_sim_seconds": {
                "value": off_seconds, "direction": "lower"},
            "cbo_reorder_sim_seconds": {
                "value": reorder.seconds, "direction": "lower"},
            "cbo_full_sim_seconds": {
                "value": full.seconds, "direction": "lower"},
            "cbo_speedup": {
                "value": speedup, "direction": "higher"},
            "semijoin_rows_pruned": {
                "value": full.metrics.get("sql.cbo.semijoin.rows_pruned"),
                "direction": "higher"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Ablation: the parallel stage-execution engine.

The thread-pool runner (one worker per executor slot, event-driven
placement) is measured against the serial driver-thread baseline on the
scan-heavy TPC-DS q39 query.  ``engine.realtime.scale`` makes each task
sleep its simulated seconds scaled down, emulating the off-CPU I/O wait of
a real region scan, so thread-level overlap is visible in wall-clock time.

Both runners execute identical work: the rows and the simulated work
metrics (cells decoded, shuffle bytes, task count) must match exactly;
only placement-dependent quantities (makespan, locality) may differ.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.relation import DEFAULT_FORMAT
from repro.workloads.queries import q39a

from conftest import write_bench_json, write_report

#: real seconds slept per simulated task-second (I/O emulation)
REALTIME_SCALE = 0.1
SLOT_COUNTS = (1, 2, 4, 8)

_RESULTS = {}


def _run(env, parallel, slots):
    session = env.new_session(
        DEFAULT_FORMAT,
        executors_requested=slots,
        cores_per_executor=1,
        conf={
            "engine.parallel.enabled": parallel,
            "engine.realtime.scale": REALTIME_SCALE,
        },
    )
    return session.sql(q39a()).run()


def test_serial_baseline(benchmark, q39_env_fixed):
    result = benchmark.pedantic(
        lambda: _run(q39_env_fixed, parallel=False, slots=4),
        iterations=1, rounds=1,
    )
    _RESULTS["serial"] = result


@pytest.mark.parametrize("slots", SLOT_COUNTS)
def test_threadpool(benchmark, q39_env_fixed, slots):
    result = benchmark.pedantic(
        lambda: _run(q39_env_fixed, parallel=True, slots=slots),
        iterations=1, rounds=1,
    )
    _RESULTS[f"thread pool x{slots}"] = result


def test_parallelism_report(benchmark):
    def report():
        serial = _RESULTS["serial"]
        rows = []
        for label, r in _RESULTS.items():
            rows.append([
                label,
                f"{r.wall_clock_s:.2f}s",
                f"{serial.wall_clock_s / r.wall_clock_s:.1f}x",
                f"{r.seconds:.1f}s",
                f"{len(r.rows)}",
            ])
        write_report(
            "ablation_parallelism",
            format_table(
                ["configuration", "wall clock", "speedup",
                 "simulated latency", "rows"],
                rows,
                "Ablation: thread-pool stage execution (q39a, "
                f"realtime scale {REALTIME_SCALE})",
            ),
        )
        # identical answers and identical simulated *work* across runners --
        # only placement-dependent metrics (makespan, locality) may move
        expected_rows = sorted(tuple(r.values) for r in serial.rows)
        for label, r in _RESULTS.items():
            assert sorted(tuple(row.values) for row in r.rows) == expected_rows
            for key in ("engine.tasks", "engine.shuffle_write_bytes",
                        "shc.cells_decoded", "hbase.bytes_scanned"):
                assert r.metrics.get(key) == serial.metrics.get(key), \
                    (label, key)
            # the streaming scan path must not regress the memory proxy
            assert r.peak_memory_bytes <= serial.peak_memory_bytes
        # the acceptance bar: >= 2x wall-clock speedup at 4 slots
        four = _RESULTS["thread pool x4"]
        assert serial.wall_clock_s / four.wall_clock_s >= 2.0

        # regression-gate artifact: simulated quantities only -- wall-clock
        # speedups are real-machine-dependent and would flake the gate
        write_bench_json("parallelism", {
            "serial_sim_seconds": {
                "value": serial.seconds, "direction": "lower"},
            "threadpool_x4_sim_seconds": {
                "value": four.seconds, "direction": "lower"},
            "tasks": {
                "value": serial.metrics.get("engine.tasks"),
                "direction": "lower"},
            "hdfs_read_bytes": {
                "value": serial.metrics.get("hbase.bytes_scanned"),
                "direction": "lower"},
            "shuffle_write_bytes": {
                "value": serial.metrics.get("engine.shuffle_write_bytes"),
                "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Extension bench: SHC vs the Huawei-style coprocessor connector.

Section III.C: the Huawei design "is able to achieve high runtime
performance" by shipping work into HBase coprocessors, at the price of a
design "difficult to maintain [in] stability" -- the reason SHC chose the
plug-in route.  This bench quantifies the performance side of that
trade-off on aggregation-heavy queries: the coprocessor connector returns
only accumulators from the region servers, SHC returns (pruned, filtered)
rows.
"""

import pytest

import repro.extensions  # registers the provider
from repro.bench.harness import SHC_SYSTEM, SystemUnderTest, run_query
from repro.bench.reporting import format_table
from repro.extensions import HUAWEI_FORMAT
from repro.workloads.tpcds_gen import date_sk_range_for_year

from conftest import write_report

HUAWEI_SYSTEM = SystemUnderTest("Huawei-style", HUAWEI_FORMAT)

LO, HI = date_sk_range_for_year(2001)
QUERIES = {
    "full-table aggregate": (
        "select inv_warehouse_sk, count(*), avg(inv_quantity_on_hand) "
        "from inventory group by inv_warehouse_sk"
    ),
    "pruned aggregate": (
        f"select inv_item_sk, avg(inv_quantity_on_hand), "
        f"stddev(inv_quantity_on_hand) from inventory "
        f"where inv_date_sk between {LO} and {HI} group by inv_item_sk"
    ),
    "global count": "select count(*) from inventory",
}
_RESULTS = {}


@pytest.mark.parametrize("label", list(QUERIES))
@pytest.mark.parametrize("system", [SHC_SYSTEM, HUAWEI_SYSTEM],
                         ids=lambda s: s.label)
def test_coprocessor_comparison(benchmark, q39_env_fixed, label, system):
    def run():
        return run_query(q39_env_fixed, system, label, QUERIES[label])

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS[(label, system.label)] = result


def test_coprocessor_report(benchmark):
    def report():
        rows = []
        for label in QUERIES:
            shc = _RESULTS[(label, "SHC")]
            huawei = _RESULTS[(label, "Huawei-style")]
            assert shc.rows == huawei.rows  # identical result cardinality
            rows.append([
                label,
                f"{shc.seconds:.1f}s",
                f"{huawei.seconds:.1f}s",
                f"{shc.metrics.get('hbase.bytes_returned', 0) / 1024:.0f}KB",
                f"{huawei.metrics.get('hbase.bytes_returned', 0) / 1024:.0f}KB",
            ])
        write_report(
            "extension_coprocessor",
            format_table(
                ["query", "SHC", "Huawei-style", "SHC bytes ret",
                 "Huawei bytes ret"],
                rows, "Extension: coprocessor aggregation vs SHC",
            ),
        )
        for label in QUERIES:
            assert _RESULTS[(label, "Huawei-style")].seconds <= \
                _RESULTS[(label, "SHC")].seconds * 1.05

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Table I: feature comparison between SHC and other systems.

The SHC and Spark SQL columns are *introspected* from the implementations in
this repository (capability probes, not hard-coded strings); the
Phoenix-Spark and Huawei columns reproduce the paper's published values for
systems outside this reproduction's scope.
"""

import json

import repro.extensions  # registers the Huawei-style provider
from repro.baselines import BASELINE_FORMAT, SparkSqlGenericHBaseRelation
from repro.extensions import HUAWEI_FORMAT
from repro.bench.reporting import format_table
from repro.common.errors import AnalysisError
from repro.core.relation import DEFAULT_FORMAT, HBaseRelation
from repro.hbase.cluster import HBaseCluster
from repro.sql.session import SparkSession
from repro.sql.sources import GreaterThan, lookup_provider

from conftest import write_report

CATALOG = json.dumps({
    "table": {"namespace": "default", "name": "probe", "tableCoder": "PrimitiveType"},
    "rowkey": "k",
    "columns": {
        "k": {"cf": "rowkey", "col": "k", "type": "int"},
        "v": {"cf": "f", "col": "v", "type": "int"},
    },
})
AVRO_CATALOG = CATALOG.replace("PrimitiveType", "Avro")


def probe_system(format_name: str) -> dict:
    """Capability probes against a live relation of the given connector."""
    cluster = HBaseCluster(f"probe-{format_name[:4]}", ["h1"])
    cluster.create_table("probe", ["f"])
    session = SparkSession(["h1"])
    options = {"catalog": CATALOG, "hbase.zookeeper.quorum": cluster.quorum}
    provider = lookup_provider(format_name)
    relation = provider.create_relation(options, session)

    # multiple data codings: can the connector read an Avro catalog?
    try:
        provider.create_relation(
            {"catalog": AVRO_CATALOG, "hbase.zookeeper.quorum": cluster.quorum},
            session,
        )
        multi_coding = True
    except AnalysisError:
        multi_coding = False

    pushes = len(relation.unhandled_filters([GreaterThan("v", 1)])) == 0
    prunes = relation.pruning_enabled
    df = session.read.format(format_name).options(options).load()
    df.create_or_replace_temp_view("probe")
    sql_works = session.sql("select count(*) from probe").collect() is not None
    dataframe_works = df.filter("k > 0").count() == 0
    has_pool = hasattr(session, "submit_sql")
    return {
        "SQL": sql_works,
        "Dataframe API": dataframe_works,
        "In-memory": True,
        "Query planner": True,
        "Query optimizer": True,  # both sit on the Catalyst-style optimizer
        "Multiple data coding": multi_coding,
        "HBase predicate pushdown": pushes,
        "HBase partition pruning": prunes,
        "Concurrent query execution": "Thread pool" if has_pool and pushes
        else "User-level process",
    }


def test_table1_feature_matrix(benchmark):
    def report():
        shc = probe_system(DEFAULT_FORMAT)
        sparksql = probe_system(BASELINE_FORMAT)
        huawei = probe_system(HUAWEI_FORMAT)
        # the Huawei-style connector ships with coprocessor aggregation but,
        # per the paper, runs queries as a user-level process
        huawei["Concurrent query execution"] = "User-level process"
        huawei["Multiple data coding"] = False  # paper Table I
        # published values for the one system not reproduced here
        phoenix_spark = {
            "SQL": True, "Dataframe API": True, "In-memory": True,
            "Query planner": True, "Query optimizer": True,
            "Multiple data coding": False,
            "HBase predicate pushdown": True,
            "HBase partition pruning": True,
            "Concurrent query execution": "User-level process",
        }

        def mark(value):
            if isinstance(value, bool):
                return "yes" if value else "no"
            return value

        features = list(shc)
        rows = [
            [feature, mark(shc[feature]), mark(sparksql[feature]),
             mark(phoenix_spark[feature]), mark(huawei[feature])]
            for feature in features
        ]
        write_report(
            "table1_features",
            format_table(
                ["Feature", "SHC", "SparkSQL", "PhoenixSpark", "HuaweiSparkHBase"],
                rows, "Table I: system feature comparison",
            ),
        )
        # the paper's headline deltas
        assert shc["Multiple data coding"] and not sparksql["Multiple data coding"]
        assert shc["Concurrent query execution"] == "Thread pool"
        # vanilla Spark SQL cannot push filters into HBase or prune its regions
        assert shc["HBase predicate pushdown"] and not sparksql["HBase predicate pushdown"]
        assert shc["HBase partition pruning"] and not sparksql["HBase partition pruning"]


    benchmark.pedantic(report, iterations=1, rounds=1)
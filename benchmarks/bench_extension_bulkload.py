"""Extension bench: Put-based ingestion vs HFile bulk load.

Not a paper table -- HBase deployments at the paper's scale routinely ingest
via bulk-loaded HFiles instead of Puts; the HBaseContext implements both, so
this bench quantifies the WAL+memstore tax that bulk load avoids.
"""

import itertools

import pytest

from repro.core.hbase_context import HBaseContext
from repro.bench.reporting import format_table
from repro.engine.rdd import ParallelCollectionRDD
from repro.hbase.cell import Cell
from repro.hbase.client import Put
from repro.hbase.cluster import HBaseCluster
from repro.hbase.hbytes import Bytes
from repro.sql.session import SparkSession

from conftest import write_report

HOSTS = ["node1", "node2", "node3", "node4", "node5"]
SIZES = (2_000, 8_000)
_ids = itertools.count(1)
_RESULTS = {}


def ingest(mode: str, rows: int) -> float:
    cluster = HBaseCluster(f"ingest{next(_ids)}", HOSTS)
    session = SparkSession(HOSTS, executors_requested=5, clock=cluster.clock)
    split_keys = [Bytes.from_int(i * rows // 5) for i in range(1, 5)]
    cluster.create_table("ingest", ["f"], split_keys=split_keys)
    ctx = HBaseContext(session, cluster.quorum)
    data = [(Bytes.from_int(i), i) for i in range(rows)]
    rdd = ParallelCollectionRDD(data, 10)
    scheduler = session.new_scheduler()
    if mode == "puts":
        def to_put(pair):
            return Put(pair[0]).add_column("f", "q", Bytes.from_int(pair[1]))

        def work(partition_rows, task_ctx):
            connection, conf = ctx._acquire(task_ctx)
            try:
                table = connection.get_table("ingest")
                table.put([to_put(p) for p in partition_rows], task_ctx.ledger)
                yield 1
            finally:
                ctx._release(conf)

        job = scheduler.run_job(rdd.map_partitions(work))
    else:
        def to_cells(pair):
            return [Cell(pair[0], "f", "q", 1, Bytes.from_int(pair[1]))]

        from repro.hbase.hfile import StoreFile

        def work(partition_rows, task_ctx):
            cells = [c for p in partition_rows for c in to_cells(p)]
            by_region = {}
            for cell in cells:
                for location in cluster.region_locations("ingest"):
                    region = cluster.get_region(location.region_name)
                    if region.contains_row(cell.row):
                        by_region.setdefault(location.region_name, []).append(cell)
                        break
            for region_name, group in by_region.items():
                region = cluster.get_region(region_name)
                store_file = StoreFile(group)
                region.stores["f"].files.append(store_file)
                task_ctx.ledger.charge(
                    store_file.size_bytes / session.cost.write_bytes_per_sec,
                    "hbase.bulkload_bytes", store_file.size_bytes,
                )
            yield 1

        job = scheduler.run_job(rdd.map_partitions(work))
    return job.seconds


@pytest.mark.parametrize("rows", SIZES)
@pytest.mark.parametrize("mode", ["puts", "bulkload"])
def test_ingestion(benchmark, rows, mode):
    seconds = benchmark.pedantic(lambda: ingest(mode, rows),
                                 iterations=1, rounds=1)
    _RESULTS[(mode, rows)] = seconds
    benchmark.extra_info["simulated_seconds"] = seconds


def test_ingestion_report(benchmark):
    def report():
        headers = ["mode"] + [f"{r} rows" for r in SIZES]
        rows_out = [
            [mode] + [f"{_RESULTS[(mode, r)]:.1f}s" for r in SIZES]
            for mode in ("puts", "bulkload")
        ]
        write_report(
            "extension_bulkload",
            format_table(headers, rows_out,
                         "Extension: Put ingestion vs HFile bulk load"),
        )
        for r in SIZES:
            assert _RESULTS[("bulkload", r)] < _RESULTS[("puts", r)]

    benchmark.pedantic(report, iterations=1, rounds=1)

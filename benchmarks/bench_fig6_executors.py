"""Figure 6: query latency vs number of executors.

Paper shape: both systems speed up with more executors, but the speedup
flattens once the YARN resource manager's per-application cap is reached --
"the allocated resource is limited for each job".
"""

import pytest

from repro.bench.harness import SHC_SYSTEM, SPARKSQL_SYSTEM, run_query
from repro.bench.reporting import format_table
from repro.workloads.queries import q39a, q39b

from conftest import write_report

EXECUTOR_COUNTS = (4, 8, 12, 16, 20, 24)
_RESULTS = {}


@pytest.mark.parametrize("executors", EXECUTOR_COUNTS)
@pytest.mark.parametrize("system", [SHC_SYSTEM, SPARKSQL_SYSTEM],
                         ids=lambda s: s.label)
@pytest.mark.parametrize("query_name,query_fn", [("q39a", q39a), ("q39b", q39b)])
def test_fig6_executors(benchmark, q39_env_fixed, executors, system,
                        query_name, query_fn):
    sql = query_fn()

    def run():
        return run_query(q39_env_fixed, system, query_name, sql,
                         executors_requested=executors)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    _RESULTS[(query_name, system.label, executors)] = result.seconds


def test_fig6_report(benchmark):
    def report():
        for query_name in ("q39a", "q39b"):
            panel = "a" if query_name == "q39a" else "b"
            headers = ["system"] + [f"{n} exec" for n in EXECUTOR_COUNTS]
            rows = []
            for label in ("SHC", "SparkSQL"):
                rows.append([label] + [
                    f"{_RESULTS[(query_name, label, n)]:.1f}s"
                    for n in EXECUTOR_COUNTS
                ])
            write_report(
                f"fig6{panel}_{query_name}_executors",
                format_table(headers, rows,
                             f"Figure 6({panel}): {query_name} latency vs executors"),
            )
            for label in ("SHC", "SparkSQL"):
                series = [_RESULTS[(query_name, label, n)] for n in EXECUTOR_COUNTS]
                # runtime decreases with more executors...
                assert series[0] > series[2]
                # ...then plateaus once YARN stops granting more
                assert abs(series[-1] - series[-2]) < 0.2 * series[-2] + 1e-9


    benchmark.pedantic(report, iterations=1, rounds=1)
"""Ablation: adaptive query execution (runtime-stats re-optimization).

Two workloads whose *estimates* mislead the static planner, on synthetic
relations sized by ``BENCH_SMOKE``:

* **skewed join** -- a fact table where one hot key holds ~80% of the rows.
  The static plan hashes the hot key into a single reduce partition whose
  shuffle read dominates the makespan; AQE (rule 3) splits that partition
  into per-map-chunk tasks that run in parallel.  Acceptance bar from the
  issue: >= 1.5x lower simulated latency.
* **small-dimension join** -- a filtered dimension the size model estimates
  at parent//4 (over the broadcast threshold) but that actually shuffles a
  few hundred bytes.  AQE (rule 1) converts the shuffled join to a
  broadcast join at the stage barrier.

Both runs disable the thread-pool stage runner: AQE decisions depend only
on measured partition sizes, but the parallel runner's placement is
wall-clock-sensitive and would flake the exported simulated totals.  Every
configuration must return identical rows.  Deterministic simulated totals
are exported as ``BENCH_aqe.json`` for the CI regression gate
(``check_regression.py``).
"""

import pytest

from repro.sql.session import SparkSession
from repro.sql.types import IntegerType, StringType, StructField, StructType

from conftest import BENCH_SMOKE, write_bench_json, write_report
from repro.bench.reporting import format_table

FACT_SCHEMA = StructType([
    StructField("fk", IntegerType),
    StructField("payload", StringType),
])
DIM_SCHEMA = StructType([
    StructField("id", IntegerType),
    StructField("name", StringType),
])

HOSTS = ["h1", "h2", "h3", "h4", "h5"]

#: fact-table rows for the skewed-join workload
SKEW_ROWS = 3_000 if BENCH_SMOKE else 12_000
#: fraction of fact rows carrying the single hot key
HOT_FRACTION = 0.8
HOT_KEY = 7
DIM_KEYS = 64

SKEW_CONF = {
    "sql.autoBroadcastJoinThreshold": 1,   # isolate rule 3 from rule 1
    "sql.shuffle.partitions": 8,
    "sql.local.scan.partitions": 8,
    "sql.aqe.targetPartitionBytes": 16 * 1024,
    "sql.aqe.skewedPartitionFactor": 2.0,
    "sql.aqe.skewedPartitionThresholdBytes": 16 * 1024,
    "engine.parallel.enabled": False,
}
BROADCAST_CONF = {
    "sql.autoBroadcastJoinThreshold": 1024,
    "sql.local.scan.partitions": 4,
    "engine.parallel.enabled": False,
}

SKEW_SQL = "SELECT f.payload, d.name FROM fact f JOIN dim d ON f.fk = d.id"
BROADCAST_SQL = (
    "SELECT f.fk, f.payload, d.name "
    "FROM fact f JOIN (SELECT * FROM dim WHERE id < 3) d ON f.fk = d.id"
)

_RESULTS = {}


def _fact_rows(n, hot_fraction):
    rows = []
    hot = int(n * hot_fraction)
    for i in range(hot):
        rows.append((HOT_KEY, f"hot-payload-{i:06d}-" + "x" * 48))
    for i in range(n - hot):
        rows.append((i % DIM_KEYS, f"payload-{i:06d}-" + "y" * 48))
    return rows


def _dim_rows():
    # wide rows keep the filtered dimension's *estimate* over the broadcast
    # threshold while the actual filtered bytes stay far under it
    return [(i, f"dim-name-{i:03d}-" + "z" * 60) for i in range(DIM_KEYS)]


def _run(sql, conf, adaptive):
    merged = dict(conf, **{"sql.aqe.enabled": adaptive})
    session = SparkSession(HOSTS, conf=merged)
    fact = _fact_rows(SKEW_ROWS, HOT_FRACTION if sql is SKEW_SQL else 0.0)
    session.create_dataframe(fact, FACT_SCHEMA) \
        .create_or_replace_temp_view("fact")
    session.create_dataframe(_dim_rows(), DIM_SCHEMA) \
        .create_or_replace_temp_view("dim")
    result = session.sql(sql).run()
    session.shutdown()
    return result


@pytest.mark.parametrize("label,sql,conf,adaptive", [
    ("skew static", SKEW_SQL, SKEW_CONF, False),
    ("skew adaptive", SKEW_SQL, SKEW_CONF, True),
    ("broadcast static", BROADCAST_SQL, BROADCAST_CONF, False),
    ("broadcast adaptive", BROADCAST_SQL, BROADCAST_CONF, True),
])
def test_aqe(benchmark, label, sql, conf, adaptive):
    _RESULTS[label] = benchmark.pedantic(
        lambda: _run(sql, conf, adaptive), iterations=1, rounds=1)


def test_aqe_report(benchmark):
    def report():
        rows = []
        for label, run in _RESULTS.items():
            rows.append([
                label,
                f"{run.seconds:.2f}s",
                f"{int(run.metrics.get('engine.tasks'))}",
                f"{int(run.metrics.get('engine.aqe.skew_splits'))}",
                f"{int(run.metrics.get('engine.aqe.broadcast_conversions'))}",
            ])
        write_report(
            "ablation_aqe",
            format_table(
                ["configuration", "sim latency", "tasks",
                 "skew splits", "broadcast conversions"],
                rows,
                f"Ablation: adaptive query execution "
                f"({SKEW_ROWS} fact rows, hot fraction {HOT_FRACTION})",
            ),
        )

        # identical answers with and without re-optimization
        for static_label, aqe_label in (
            ("skew static", "skew adaptive"),
            ("broadcast static", "broadcast adaptive"),
        ):
            assert sorted(tuple(r.values)
                          for r in _RESULTS[static_label].rows) == \
                sorted(tuple(r.values) for r in _RESULTS[aqe_label].rows), \
                static_label

        # static runs must not touch any adaptive machinery
        for label in ("skew static", "broadcast static"):
            for key in _RESULTS[label].metrics.snapshot():
                assert not key.startswith("engine.aqe."), (label, key)

        skew_static = _RESULTS["skew static"]
        skew_aqe = _RESULTS["skew adaptive"]
        speedup = skew_static.seconds / skew_aqe.seconds
        # the issue's acceptance bar: splitting the hot partition cuts the
        # simulated makespan by >= 1.5x
        assert speedup >= 1.5, speedup
        assert skew_aqe.metrics.get("engine.aqe.skew_splits") >= 1.0

        bc_static = _RESULTS["broadcast static"]
        bc_aqe = _RESULTS["broadcast adaptive"]
        conversions = bc_aqe.metrics.get("engine.aqe.broadcast_conversions")
        assert conversions >= 1.0
        assert any(e["rule"] == "broadcast-conversion"
                   for e in bc_aqe.reopt_events)

        write_bench_json("aqe", {
            "skew_baseline_sim_seconds": {
                "value": skew_static.seconds, "direction": "lower"},
            "skew_aqe_sim_seconds": {
                "value": skew_aqe.seconds, "direction": "lower"},
            "skew_speedup": {
                "value": speedup, "direction": "higher"},
            "skew_splits": {
                "value": skew_aqe.metrics.get("engine.aqe.skew_splits"),
                "direction": "higher"},
            "broadcast_baseline_sim_seconds": {
                "value": bc_static.seconds, "direction": "lower"},
            "broadcast_aqe_sim_seconds": {
                "value": bc_aqe.seconds, "direction": "lower"},
            "broadcast_conversions": {
                "value": conversions, "direction": "higher"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Ablation: materialized views for a repeated dashboard aggregation.

The workload the views subsystem exists for (docs/views.md): the same
GROUP BY dashboard query refreshed over and over against a big fact table.
Three measurements:

* **dashboard** -- the repeated aggregate with and without a matching
  materialized view.  The acceptance bar from the issue: the view-answered
  query is >= 5x faster in *simulated* cost and in wall-clock time, with
  byte-identical answers.
* **maintenance** -- a Put batch lands on the base table and the CDC feed
  repairs the view incrementally; the incremental cost must stay under 10%
  of a full recomputation (``REFRESH MATERIALIZED VIEW``), and the repaired
  view must again answer byte-identically to a fresh recompute.
* **invariance spot-check** -- the flag-off run carries no ``sql.view.*``
  or ``hbase.cdc.*`` counters (the full guarantee is pinned by
  tests/integration/test_view_invariance.py).

Inventory is loaded at a fixed nominal size (independent of BENCH_SMOKE:
the simulated totals stay scale-comparable and the load is seconds of real
time), so the committed baseline gates both CI jobs.

Deterministic simulated totals are exported as ``BENCH_views.json`` for
the CI regression gate (``check_regression.py --require views``).
"""

import time

import pytest

from repro.core.catalog import HBaseTableCatalog
from repro.core.coders import get_coder
from repro.core.keys import encode_rowkey
from repro.hbase import ConnectionFactory, Put
from repro.workloads.loader import load_tpcds

from conftest import write_bench_json, write_report
from repro.bench.reporting import format_table

#: nominal TPC-DS size for the fact table (inventory rows scale with it)
VIEWS_SIZE_GB = 60
#: how many times the dashboard re-runs the same aggregation
REPEATS = 3
#: base-table mutation batch repaired incrementally by the CDC feed
MAINTENANCE_BATCH = 50

DASHBOARD = ("SELECT inv_date_sk, count(inv_quantity_on_hand) AS skus, "
             "sum(inv_quantity_on_hand) AS on_hand, "
             "avg(inv_quantity_on_hand) AS avg_on_hand "
             "FROM inventory GROUP BY inv_date_sk")

_RESULTS = {}


@pytest.fixture(scope="module")
def views_env():
    return load_tpcds(VIEWS_SIZE_GB, ["inventory"])


def _timed_runs(session, query, repeats):
    """(results, total simulated seconds, total wall seconds)."""
    runs = []
    start = time.perf_counter()
    for _ in range(repeats):
        runs.append(session.sql(query).run())
    wall = time.perf_counter() - start
    return runs, sum(r.seconds for r in runs), wall


def test_views_dashboard(benchmark, views_env):
    def workload():
        base_session = views_env.new_session()
        base_runs, base_sim, base_wall = _timed_runs(
            base_session, DASHBOARD, REPEATS)
        base_session.shutdown()

        view_session = views_env.new_session(
            conf={"sql.view.enabled": True})
        # build cost via the shared simulated clock: the CREATE statement's
        # QueryResult only prices its summary relation, while the
        # materializing scan+write advances the clock inline
        clock_before = views_env.cluster.clock.now()
        view_session.sql(
            f"CREATE MATERIALIZED VIEW inv_by_date AS {DASHBOARD}").run()
        build_sim = views_env.cluster.clock.now() - clock_before
        view_runs, view_sim, view_wall = _timed_runs(
            view_session, DASHBOARD, REPEATS)
        _RESULTS["dashboard"] = {
            "base_runs": base_runs, "view_runs": view_runs,
            "base_sim": base_sim, "view_sim": view_sim,
            "base_wall": base_wall, "view_wall": view_wall,
            "build_sim": build_sim,
            "view_session": view_session,
        }

    benchmark.pedantic(workload, iterations=1, rounds=1)


def test_views_maintenance(benchmark, views_env):
    def workload():
        session = _RESULTS["dashboard"]["view_session"]
        cluster = views_env.cluster
        maintainer = session.views.maintainer("inv_by_date")

        options = views_env.reader_options("inventory")
        catalog = HBaseTableCatalog.from_json(options["catalog"])
        coder = get_coder(catalog.table_coder)
        table = ConnectionFactory.create_connection(
            cluster.configuration()).get_table(catalog.qualified_name)
        column = catalog.column("inv_quantity_on_hand")
        puts = []
        for item_sk in range(1, MAINTENANCE_BATCH + 1):
            row = encode_rowkey(catalog, coder, {
                "inv_date_sk": 2456100, "inv_item_sk": item_sk,
                "inv_warehouse_sk": 1,
            })
            puts.append(Put(row).add_column(
                column.family, column.qualifier,
                coder.encode(40, column.dtype)))
        table.put(puts)

        before = maintainer.ledger.seconds + cluster.cdc.ledger.seconds
        cluster.run_maintenance()
        incremental = (maintainer.ledger.seconds
                       + cluster.cdc.ledger.seconds - before)

        repaired = session.sql(DASHBOARD).run()
        # recompute cost via the shared simulated clock: the REFRESH
        # statement's own QueryResult only prices the summary relation,
        # while the rematerializing scan+write advances the clock inline
        clock_before = cluster.clock.now()
        session.sql("REFRESH MATERIALIZED VIEW inv_by_date").run()
        _RESULTS["maintenance"] = {
            "incremental_sim": incremental,
            "refresh_sim": cluster.clock.now() - clock_before,
            "repaired": repaired,
        }

    benchmark.pedantic(workload, iterations=1, rounds=1)


def test_views_report(benchmark, views_env):
    def report():
        dash = _RESULTS["dashboard"]
        maint = _RESULTS["maintenance"]
        sim_speedup = dash["base_sim"] / dash["view_sim"]
        wall_speedup = dash["base_wall"] / dash["view_wall"]
        ratio = maint["incremental_sim"] / maint["refresh_sim"]

        write_report(
            "ablation_views",
            format_table(
                ["configuration", f"sim latency x{REPEATS}", "wall",
                 "speedup"],
                [
                    ["base scan", f"{dash['base_sim']:.2f}s",
                     f"{dash['base_wall']:.2f}s", "1.0x"],
                    ["materialized view", f"{dash['view_sim']:.2f}s",
                     f"{dash['view_wall']:.2f}s",
                     f"{sim_speedup:.1f}x sim / {wall_speedup:.1f}x wall"],
                    ["incremental maintenance",
                     f"{maint['incremental_sim']:.3f}s", "-",
                     f"{ratio:.1%} of refresh "
                     f"({maint['refresh_sim']:.2f}s)"],
                ],
                f"Ablation: materialized views ({REPEATS}x dashboard, "
                f"{VIEWS_SIZE_GB} GB inventory, "
                f"{MAINTENANCE_BATCH}-row maintenance batch)",
            ),
        )

        # byte-identical answers, every iteration, both configurations
        expected = sorted(tuple(r.values) for r in dash["base_runs"][0].rows)
        for run in dash["base_runs"] + dash["view_runs"]:
            assert sorted(tuple(r.values) for r in run.rows) == expected
        for run in dash["view_runs"]:
            assert [e["action"] for e in run.view_events] == ["rewrites"]

        # flag-off runs carry no view machinery at all
        for run in dash["base_runs"]:
            for key in run.metrics.snapshot():
                assert not key.startswith("sql.view."), key
                assert not key.startswith("hbase.cdc."), key

        # the issue's acceptance bars
        assert sim_speedup >= 5.0, sim_speedup
        assert wall_speedup >= 5.0, wall_speedup
        assert ratio < 0.10, ratio

        # after maintenance the view still answers, byte-identical to a
        # fresh recomputation over the mutated base table
        repaired = maint["repaired"]
        assert [e["action"] for e in repaired.view_events] == ["rewrites"]
        fresh = views_env.new_session().sql(DASHBOARD).run()
        assert sorted(tuple(r.values) for r in repaired.rows) \
            == sorted(tuple(r.values) for r in fresh.rows)
        _RESULTS["dashboard"]["view_session"].shutdown()

        write_bench_json("views", {
            "base_dashboard_sim_seconds": {
                "value": dash["base_sim"], "direction": "lower"},
            "view_dashboard_sim_seconds": {
                "value": dash["view_sim"], "direction": "lower"},
            "dashboard_sim_speedup": {
                "value": sim_speedup, "direction": "higher"},
            "view_build_sim_seconds": {
                "value": dash["build_sim"], "direction": "lower"},
            "maintenance_sim_seconds": {
                "value": maint["incremental_sim"], "direction": "lower"},
            "refresh_sim_seconds": {
                "value": maint["refresh_sim"], "direction": "lower"},
            "maintenance_cost_ratio": {
                "value": ratio, "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

"""Table II: performance of the different data encodings.

Paper shape (query/write time and memory at a fixed data size):

- native Java primitive types are fastest for query and write, and lightest
  on memory; Phoenix is slightly slower; Avro is far slower on the read path
  (records must be deserialised and its encoding supports no range pruning)
  but only mildly slower on writes;
- vanilla Spark SQL supports only the native coding (Phoenix and Avro rows
  are marked unsupported), and is slower than SHC on the coding it has.
"""

import pytest

from repro.baselines import BASELINE_FORMAT
from repro.bench.harness import run_query, SystemUnderTest
from repro.bench.reporting import format_table
from repro.common.errors import AnalysisError
from repro.workloads.loader import load_tpcds
from repro.workloads.queries import q39a
from repro.workloads.tpcds_schema import Q39_TABLES

from conftest import FIXED_SIZE_GB, write_report

CODERS = ("PrimitiveType", "Phoenix", "Avro")
_RESULTS = {}


@pytest.fixture(scope="module")
def coder_envs():
    return {coder: load_tpcds(FIXED_SIZE_GB, Q39_TABLES, coder=coder)
            for coder in CODERS}


@pytest.mark.parametrize("coder", CODERS)
def test_table2_shc_coder(benchmark, coder_envs, coder):
    env = coder_envs[coder]
    system = SystemUnderTest(f"SHC/{coder}", "shc")

    def run():
        return run_query(env, system, "q39a", q39a())

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    write_seconds = sum(r.seconds for r in env.write_results.values())
    _RESULTS[("SHC", coder)] = {
        "query_s": result.seconds,
        "write_s": write_seconds,
        "memory_kb": result.peak_memory_mb * 1024,
    }
    benchmark.extra_info.update(_RESULTS[("SHC", coder)])


def test_table2_sparksql_native(benchmark, coder_envs):
    env = coder_envs["PrimitiveType"]
    system = SystemUnderTest("SparkSQL/native", BASELINE_FORMAT)

    def run():
        return run_query(env, system, "q39a", q39a())

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS[("SparkSQL", "PrimitiveType")] = {
        "query_s": result.seconds,
        "write_s": None,  # the generic path writes via the same HBase API
        "memory_kb": result.peak_memory_mb * 1024,
    }


def test_table2_sparksql_rejects_other_codings(benchmark, coder_envs):
    def probe():
        _probe_rejections(coder_envs)

    benchmark.pedantic(probe, iterations=1, rounds=1)


def _probe_rejections(coder_envs):
    env = coder_envs["Phoenix"]
    with pytest.raises(AnalysisError):
        env.new_session(BASELINE_FORMAT)
    env = coder_envs["Avro"]
    with pytest.raises(AnalysisError):
        env.new_session(BASELINE_FORMAT)
    _RESULTS[("SparkSQL", "Phoenix")] = None
    _RESULTS[("SparkSQL", "Avro")] = None


def test_table2_report(benchmark):
    def report():
        def cell(system, coder, key):
            entry = _RESULTS.get((system, coder))
            if entry is None:
                return "x"
            value = entry[key]
            if value is None:
                return "-"
            return f"{value:.1f}"

        rows = []
        for system in ("SHC", "SparkSQL"):
            for coder, label in (("PrimitiveType", "Native"), ("Phoenix", "Phoenix"),
                                 ("Avro", "Avro")):
                rows.append([
                    system, label,
                    cell(system, coder, "query_s") if _RESULTS.get((system, coder)) else "x",
                    cell(system, coder, "write_s") if _RESULTS.get((system, coder)) else "x",
                    cell(system, coder, "memory_kb") if _RESULTS.get((system, coder)) else "x",
                ])
        write_report(
            "table2_encodings",
            format_table(
                ["System", "Type", "Query time(s)", "Write time(s)", "Memory(KB)"],
                rows, f"Table II: encoding comparison at {FIXED_SIZE_GB} GB",
            ),
        )
        shc = {c: _RESULTS[("SHC", c)] for c in CODERS}
        # native fastest, Avro slowest on the read path
        assert shc["PrimitiveType"]["query_s"] <= shc["Phoenix"]["query_s"]
        assert shc["Phoenix"]["query_s"] < shc["Avro"]["query_s"]
        # writes are close (the paper's 220/231/241), Avro still the slowest
        assert shc["PrimitiveType"]["write_s"] <= shc["Phoenix"]["write_s"]
        assert shc["Phoenix"]["write_s"] < shc["Avro"]["write_s"]
        # Avro needs the most engine memory
        assert shc["Avro"]["memory_kb"] > shc["PrimitiveType"]["memory_kb"]
        # SparkSQL on the one coding it supports is slower than SHC
        assert _RESULTS[("SparkSQL", "PrimitiveType")]["query_s"] > \
            shc["PrimitiveType"]["query_s"]


    benchmark.pedantic(report, iterations=1, rounds=1)
#!/usr/bin/env python
"""CI perf-regression gate: compare BENCH_*.json artifacts to baselines.

The bench suite emits ``benchmarks/results/BENCH_<name>.json`` files holding
*simulated* (deterministic) metrics -- simulated seconds, HDFS bytes read,
task counts.  This script compares each metric against the committed
baseline in ``benchmarks/baselines/`` and fails the build when a tracked
metric regresses beyond the tolerance in its bad direction:

* ``direction: lower``  -- a cost; fails when current > baseline * (1+tol)
* ``direction: higher`` -- a benefit (e.g. a speedup ratio); fails when
  current < baseline * (1-tol)

Improvements beyond the tolerance are reported as stale-baseline warnings
(exit 0) so intentional wins get their baselines refreshed.  Scale mismatch
(smoke baseline vs full-scale run) is an error: simulated totals are only
comparable at the same nominal data size.

Usage::

    python benchmarks/check_regression.py \
        [--baselines benchmarks/baselines] [--results benchmarks/results] \
        [--tolerance 0.15] [--require <name> ...]

``--require vectorized`` makes a *missing* ``BENCH_vectorized.json``
baseline a named failure instead of a silent skip -- the glob-driven loop
otherwise only gates benches that already have a committed baseline.

Refresh a baseline by re-running the bench and copying the artifact::

    BENCH_SMOKE=1 pytest benchmarks/bench_ablation_caching.py
    cp benchmarks/results/BENCH_caching.json benchmarks/baselines/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List

DEFAULT_TOLERANCE = 0.15


def _load(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def validate_payload(payload: object, label: str) -> List[str]:
    """Structural validation of one ``BENCH_*.json`` payload.

    Returns human-readable problems (empty = valid) instead of letting a
    malformed baseline or artifact surface as a bare ``KeyError`` deep in
    the comparison: the gate names the file, the metric and exactly which
    keys are missing or unexpected.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"{label}: payload must be a JSON object, "
                f"got {type(payload).__name__}"]
    missing = sorted({"bench", "scale", "metrics"} - set(payload))
    if missing:
        problems.append(
            f"{label}: missing top-level key(s) {', '.join(missing)}")
    metrics = payload.get("metrics")
    if metrics is None:
        return problems
    if not isinstance(metrics, dict):
        return problems + [
            f"{label}: 'metrics' must be an object, "
            f"got {type(metrics).__name__}"]
    for name, entry in metrics.items():
        if not isinstance(entry, dict):
            problems.append(
                f"{label}: metric {name!r} must be an object with "
                f"'value' and 'direction', got {type(entry).__name__}")
            continue
        missing = sorted({"value", "direction"} - set(entry))
        extra = sorted(set(entry) - {"value", "direction"})
        if missing:
            problems.append(
                f"{label}: metric {name!r} is missing key(s) "
                f"{', '.join(missing)}")
        if extra:
            problems.append(
                f"{label}: metric {name!r} has unexpected key(s) "
                f"{', '.join(extra)}")
        if "direction" in entry and entry["direction"] not in (
                "lower", "higher"):
            problems.append(
                f"{label}: metric {name!r} direction must be 'lower' or "
                f"'higher', got {entry['direction']!r}")
        if "value" in entry and not isinstance(
                entry["value"], (int, float)):
            problems.append(
                f"{label}: metric {name!r} value must be numeric, "
                f"got {type(entry['value']).__name__}")
    return problems


def check_bench(baseline: dict, current: dict, tolerance: float,
                failures: List[str], warnings: List[str]) -> List[str]:
    """Compare one bench's current metrics to its baseline; returns report lines."""
    lines = []
    name = baseline.get("bench", "?")
    if baseline.get("scale") != current.get("scale"):
        failures.append(
            f"{name}: scale mismatch -- baseline is "
            f"{baseline.get('scale')!r}, current run is "
            f"{current.get('scale')!r}; rerun at the baseline's scale"
        )
        return lines
    for metric, entry in baseline.get("metrics", {}).items():
        base_value = float(entry["value"])
        direction = entry["direction"]
        now = current.get("metrics", {}).get(metric)
        if now is None:
            failures.append(f"{name}.{metric}: missing from current run")
            continue
        value = float(now["value"])
        delta = (value - base_value) / base_value if base_value else 0.0
        marker = "ok"
        if direction == "lower" and value > base_value * (1.0 + tolerance):
            marker = "REGRESSION"
            failures.append(
                f"{name}.{metric}: {value:.6g} is {delta:+.1%} vs baseline "
                f"{base_value:.6g} (lower is better, tolerance "
                f"{tolerance:.0%})"
            )
        elif direction == "higher" and value < base_value * (1.0 - tolerance):
            marker = "REGRESSION"
            failures.append(
                f"{name}.{metric}: {value:.6g} is {delta:+.1%} vs baseline "
                f"{base_value:.6g} (higher is better, tolerance "
                f"{tolerance:.0%})"
            )
        elif (direction == "lower" and value < base_value * (1.0 - tolerance)) \
                or (direction == "higher"
                    and value > base_value * (1.0 + tolerance)):
            marker = "improved"
            warnings.append(
                f"{name}.{metric}: improved {delta:+.1%}; consider "
                f"refreshing the baseline"
            )
        lines.append(
            f"  {metric:<35} {base_value:>14.6g} -> {value:>14.6g} "
            f"({delta:+7.1%}) [{marker}]"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    here = pathlib.Path(__file__).parent
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=here / "baselines")
    parser.add_argument("--results", type=pathlib.Path,
                        default=here / "results")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail if BENCH_<NAME>.json has no committed baseline")
    args = parser.parse_args(argv)

    baseline_files = sorted(args.baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no baselines found under {args.baselines}", file=sys.stderr)
        return 2

    failures: List[str] = []
    warnings: List[str] = []
    present = {p.name for p in baseline_files}
    for name in args.require:
        wanted = f"BENCH_{name}.json"
        if wanted not in present:
            failures.append(
                f"{name}: no baseline {wanted} under {args.baselines} -- "
                f"run the bench at smoke scale and commit the artifact"
            )
    for baseline_path in baseline_files:
        current_path = args.results / baseline_path.name
        try:
            baseline = _load(baseline_path)
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(
                f"baseline {baseline_path.name}: unreadable JSON -- {exc}")
            continue
        problems = validate_payload(
            baseline, f"baseline {baseline_path.name}")
        bench_name = baseline.get("bench", baseline_path.stem) \
            if isinstance(baseline, dict) else baseline_path.stem
        scale = baseline.get("scale") if isinstance(baseline, dict) else None
        print(f"{bench_name} (scale={scale}):")
        if not current_path.exists():
            # a malformed baseline is reported even when the bench never
            # ran -- both problems need fixing, name them both
            failures.extend(problems)
            failures.append(
                f"{baseline_path.name}: no current artifact at "
                f"{current_path} -- did the bench run?"
            )
            continue
        try:
            current = _load(current_path)
        except (OSError, json.JSONDecodeError) as exc:
            failures.extend(problems)
            failures.append(
                f"artifact {current_path.name}: the bench emitted invalid "
                f"JSON -- {exc}")
            continue
        problems += validate_payload(
            current, f"artifact {current_path.name}")
        if problems:
            failures.extend(problems)
            continue
        for line in check_bench(baseline, current,
                                args.tolerance, failures, warnings):
            print(line)

    if warnings:
        print("\nwarnings:")
        for w in warnings:
            print(f"  {w}")
    if failures:
        print("\nFAIL: tracked bench metrics regressed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: all tracked metrics within {args.tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark-suite fixtures: shared TPC-DS environments per nominal size."""

import pytest

from repro.workloads.loader import load_tpcds
from repro.workloads.tpcds_schema import Q38_TABLES, Q39_TABLES

#: the paper's x-axis (Figures 4, 5 and 7)
DATA_SIZES_GB = (5, 10, 15, 20, 25, 30)
#: a mid-sweep size for the single-size experiments (Fig 6, Table II, ablations)
FIXED_SIZE_GB = 15


@pytest.fixture(scope="session")
def q39_envs():
    """One loaded environment per data size, q39 tables."""
    return {size: load_tpcds(size, Q39_TABLES) for size in DATA_SIZES_GB}


@pytest.fixture(scope="session")
def q38_envs():
    return {size: load_tpcds(size, Q38_TABLES) for size in DATA_SIZES_GB}


@pytest.fixture(scope="session")
def q39_env_fixed():
    return load_tpcds(FIXED_SIZE_GB, Q39_TABLES)


def write_report(name: str, text: str) -> None:
    """Persist a paper-style results table under benchmarks/results/."""
    import pathlib

    out_dir = pathlib.Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")

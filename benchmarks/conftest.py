"""Benchmark-suite fixtures: shared TPC-DS environments per nominal size.

Setting ``BENCH_SMOKE=1`` shrinks the single-size experiments so the suite
finishes in CI minutes instead of laptop-hours; the emitted ``BENCH_*.json``
artifacts record which scale produced them so the regression gate
(``check_regression.py``) never compares across scales.
"""

import os

import pytest

from repro.workloads.loader import load_tpcds
from repro.workloads.tpcds_schema import Q38_TABLES, Q39_TABLES

#: reduced-scale mode for the CI bench-smoke job
BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
#: the paper's x-axis (Figures 4, 5 and 7)
DATA_SIZES_GB = (5, 10, 15, 20, 25, 30)
#: a mid-sweep size for the single-size experiments (Fig 6, Table II, ablations)
FIXED_SIZE_GB = 2 if BENCH_SMOKE else 15


@pytest.fixture(scope="session")
def q39_envs():
    """One loaded environment per data size, q39 tables."""
    return {size: load_tpcds(size, Q39_TABLES) for size in DATA_SIZES_GB}


@pytest.fixture(scope="session")
def q38_envs():
    return {size: load_tpcds(size, Q38_TABLES) for size in DATA_SIZES_GB}


@pytest.fixture(scope="session")
def q39_env_fixed():
    return load_tpcds(FIXED_SIZE_GB, Q39_TABLES)


def write_report(name: str, text: str) -> None:
    """Persist a paper-style results table under benchmarks/results/."""
    import pathlib

    out_dir = pathlib.Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def write_bench_json(name: str, metrics: dict) -> None:
    """Persist tracked bench metrics as ``BENCH_<name>.json``.

    ``metrics`` maps a metric name to ``{"value": float, "direction":
    "lower"|"higher"}``.  Only *simulated* (deterministic) quantities belong
    here -- the CI regression gate (``check_regression.py``) compares these
    values against the committed baselines in ``benchmarks/baselines/`` and
    wall-clock numbers would flake the build.
    """
    import json
    import pathlib

    for key, entry in metrics.items():
        assert set(entry) == {"value", "direction"}, key
        assert entry["direction"] in ("lower", "higher"), key
    out_dir = pathlib.Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "scale": "smoke" if BENCH_SMOKE else "full",
        "metrics": {k: {"value": float(v["value"]),
                        "direction": v["direction"]}
                    for k, v in metrics.items()},
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")

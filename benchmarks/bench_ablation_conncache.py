"""Ablation: the connection cache (section V.B.1).

Reproduces the motivation quote: "we decrease the number of connections
created drastically, and greatly improve its performance in the process" --
by running the same scan workload with and without the cache.
"""

import pytest

from repro.bench.harness import SHC_SYSTEM, SystemUnderTest, run_query
from repro.bench.reporting import format_table
from repro.core.catalog import HBaseSparkConf
from repro.workloads.queries import q39a

from conftest import write_report

_RESULTS = {}


@pytest.mark.parametrize("label,options", [
    ("connection cache on", {}),
    ("connection cache off", {HBaseSparkConf.CONNECTION_CACHE: "false"}),
])
def test_conncache(benchmark, q39_env_fixed, label, options):
    system = SystemUnderTest(label, SHC_SYSTEM.format_name,
                             extra_options=options)

    def run():
        # several queries in a row: exactly the repeated-connection pattern;
        # only the first query of the application may pay connection setups
        from repro.core.conncache import DEFAULT_CONNECTION_CACHE

        DEFAULT_CONNECTION_CACHE.clear()
        last = None
        for __ in range(3):
            last = run_query(q39_env_fixed, system, "q39a", q39a(),
                             fresh_application=False)
        return last

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS[label] = result


def test_conncache_report(benchmark):
    def report():
        on = _RESULTS["connection cache on"]
        off = _RESULTS["connection cache off"]
        rows = [
            [label, f"{r.seconds:.1f}s",
             f"{r.metrics.get('shc.connection_setups', 0):.0f}"]
            for label, r in _RESULTS.items()
        ]
        write_report(
            "ablation_conncache",
            format_table(["configuration", "3rd-run latency", "connections created"],
                         rows, "Ablation: SHC connection cache"),
        )
        assert on.metrics.get("shc.connection_setups", 1) < \
            off.metrics.get("shc.connection_setups", 0)
        assert on.seconds < off.seconds


    benchmark.pedantic(report, iterations=1, rounds=1)
"""Ablation: multi-tier caching (region-server block cache + DataFrame persist).

A repeated-scan workload -- the same analytical query executed several times
within one application, the pattern both cache tiers exist for:

* tier 1, the per-region-server **block cache**, absorbs repeat HFile block
  reads so later scans bill memory bandwidth instead of (local or remote)
  HDFS I/O;
* tier 2, the executor **partition cache** (``DataFrame.persist``), skips
  the scan entirely and serves materialised partitions.

Every configuration must return identical rows; with both tiers off the
metrics must be byte-identical to the seed (no cache counters at all).  The
acceptance bar from the issue: the block cache alone cuts the simulated
HDFS-read volume of the repeated workload by >= 2x.

Deterministic simulated totals are exported as ``BENCH_caching.json`` for
the CI regression gate (``check_regression.py``).
"""

import pytest

from repro.core.relation import DEFAULT_FORMAT
from repro.workloads.loader import load_tpcds

from conftest import FIXED_SIZE_GB, write_bench_json, write_report
from repro.bench.reporting import format_table

#: how many times the workload re-runs the same query
REPEATS = 3
#: block-cache budget per region server -- big enough to hold the working set
BLOCK_CACHE_BYTES = 256 * 1024 * 1024

QUERY = (
    "SELECT ss_item_sk, ss_quantity, ss_sales_price FROM store_sales "
    "WHERE ss_quantity > 1"
)

_RESULTS = {}


@pytest.fixture(scope="module")
def caching_env():
    return load_tpcds(FIXED_SIZE_GB, ["store_sales"])


def _run_workload(env, block_cache: bool, persist: bool):
    """Run the repeated-scan workload under one cache configuration.

    The block cache is re-created (cold) or torn down before each
    configuration, and each configuration gets a fresh session, so its
    partition cache starts cold too.  Returns the per-iteration results.
    """
    if block_cache:
        env.cluster.enable_block_cache(BLOCK_CACHE_BYTES)
    else:
        env.cluster.disable_block_cache()
    from repro.core.conncache import DEFAULT_CONNECTION_CACHE

    DEFAULT_CONNECTION_CACHE.clear()
    session = env.new_session(DEFAULT_FORMAT)
    df = session.sql(QUERY)
    if persist:
        df.persist()
    runs = [df.run() for _ in range(REPEATS)]
    session.shutdown()
    env.cluster.disable_block_cache()
    return runs


def _hdfs_read_bytes(run) -> float:
    """Bytes the workload actually read from (local or remote) HDFS."""
    return run.metrics.get("hbase.bytes_scanned", 0.0)


@pytest.mark.parametrize("label,block_cache,persist", [
    ("no caches", False, False),
    ("block cache", True, False),
    ("partition cache", False, True),
    ("block + partition", True, True),
])
def test_caching(benchmark, caching_env, label, block_cache, persist):
    runs = benchmark.pedantic(
        lambda: _run_workload(caching_env, block_cache, persist),
        iterations=1, rounds=1,
    )
    _RESULTS[label] = runs


def test_caching_report(benchmark):
    def report():
        baseline = _RESULTS["no caches"]
        blockcache = _RESULTS["block cache"]
        partition = _RESULTS["partition cache"]
        both = _RESULTS["block + partition"]

        totals = {}
        rows = []
        for label, runs in _RESULTS.items():
            seconds = sum(r.seconds for r in runs)
            hdfs = sum(_hdfs_read_bytes(r) for r in runs)
            bc_hits = sum(r.metrics.get("hbase.blockcache.hits", 0.0)
                          for r in runs)
            pc_hits = sum(r.metrics.get("engine.cache.hits", 0.0)
                          for r in runs)
            totals[label] = {"seconds": seconds, "hdfs_bytes": hdfs}
            rows.append([
                label,
                f"{seconds:.2f}s",
                f"{hdfs / (1024 * 1024):.1f}MB",
                f"{bc_hits:.0f}",
                f"{pc_hits:.0f}",
            ])
        write_report(
            "ablation_caching",
            format_table(
                ["configuration", f"sim latency x{REPEATS}",
                 "hdfs read", "block hits", "partition hits"],
                rows,
                f"Ablation: multi-tier caching ({REPEATS}x repeated scan, "
                f"{FIXED_SIZE_GB} GB store_sales)",
            ),
        )

        # identical answers under every configuration, every iteration
        expected = sorted(tuple(r.values) for r in baseline[0].rows)
        for label, runs in _RESULTS.items():
            for run in runs:
                assert sorted(tuple(r.values) for r in run.rows) == expected, \
                    label

        # caches off is the seed path: no cache counters may appear
        for run in baseline:
            for key in run.metrics.snapshot():
                assert not key.startswith("hbase.blockcache."), key
                assert not key.startswith("engine.cache."), key

        # the issue's acceptance bar: >= 2x lower simulated HDFS-read cost
        # on the repeated-scan workload with the block cache on
        base_hdfs = totals["no caches"]["hdfs_bytes"]
        assert totals["block cache"]["hdfs_bytes"] <= base_hdfs / 2.0
        # warm block-cache iterations must also be faster end to end
        assert blockcache[-1].seconds < baseline[-1].seconds

        # the partition cache skips the scan entirely on warm runs
        warm = partition[-1]
        assert warm.metrics.get("engine.cache.hits", 0) > 0
        assert "hbase.bytes_scanned" not in warm.metrics
        assert warm.seconds < baseline[-1].seconds
        # stacking both tiers is never worse than the block cache alone
        assert sum(r.seconds for r in both) <= \
            totals["block cache"]["seconds"] + 1e-9

        write_bench_json("caching", {
            "baseline_sim_seconds": {
                "value": totals["no caches"]["seconds"],
                "direction": "lower"},
            "baseline_hdfs_read_bytes": {
                "value": base_hdfs, "direction": "lower"},
            "blockcache_sim_seconds": {
                "value": totals["block cache"]["seconds"],
                "direction": "lower"},
            "blockcache_hdfs_read_bytes": {
                "value": totals["block cache"]["hdfs_bytes"],
                "direction": "lower"},
            "blockcache_hdfs_read_reduction": {
                "value": base_hdfs / max(
                    totals["block cache"]["hdfs_bytes"], 1.0),
                "direction": "higher"},
            "partition_cache_sim_seconds": {
                "value": totals["partition cache"]["seconds"],
                "direction": "lower"},
            "both_tiers_sim_seconds": {
                "value": totals["block + partition"]["seconds"],
                "direction": "lower"},
        })

    benchmark.pedantic(report, iterations=1, rounds=1)

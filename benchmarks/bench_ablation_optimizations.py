"""Ablation: isolate each section-VI optimization by switching it off.

Not a paper table -- DESIGN.md calls these out as the design choices worth
quantifying.  Each row runs q39a with exactly one SHC optimization disabled;
the deltas show where the connector's speedup actually comes from.
"""

import pytest

from repro.bench.harness import SHC_SYSTEM, SystemUnderTest, run_query
from repro.workloads.loader import load_tpcds
from repro.workloads.tpcds_schema import Q39_TABLES
from repro.bench.reporting import format_table
from repro.core.catalog import HBaseSparkConf
from repro.workloads.queries import q39a

from conftest import write_report

ABLATIONS = {
    "full SHC": {},
    "no predicate pushdown": {HBaseSparkConf.PUSHDOWN: "false"},
    "no partition pruning": {HBaseSparkConf.PRUNING: "false"},
    "no column pruning": {HBaseSparkConf.COLUMN_PRUNING: "false"},
    "no data locality": {HBaseSparkConf.LOCALITY: "false"},
    "no operator fusion": {HBaseSparkConf.FUSION: "false"},
}
_RESULTS = {}


@pytest.fixture(scope="module")
def ablation_env():
    # more regions than servers, so operator fusion has something to pack
    from conftest import FIXED_SIZE_GB

    return load_tpcds(FIXED_SIZE_GB, Q39_TABLES, regions_per_table=15)


@pytest.mark.parametrize("label", list(ABLATIONS))
def test_ablation(benchmark, ablation_env, label):
    system = SystemUnderTest(label, SHC_SYSTEM.format_name,
                             extra_options=ABLATIONS[label])

    def run():
        return run_query(ablation_env, system, "q39a", q39a())

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    _RESULTS[label] = result


def test_ablation_report(benchmark):
    def report():
        full = _RESULTS["full SHC"]
        rows = []
        for label, result in _RESULTS.items():
            rows.append([
                label,
                f"{result.seconds:.1f}s",
                f"{result.seconds / full.seconds:.2f}x",
                f"{result.metrics.get('hbase.rows_visited', 0):.0f}",
                f"{result.metrics.get('hbase.bytes_returned', 0) / 1024:.0f}KB",
                f"{result.metrics.get('engine.tasks', 0):.0f}",
            ])
        write_report(
            "ablation_optimizations",
            format_table(
                ["configuration", "latency", "vs full", "rows visited",
                 "bytes returned", "tasks"],
                rows, "Ablation: q39a with single optimizations disabled",
            ),
        )
        # every ablation returns the same answer
        assert len({r.rows for r in _RESULTS.values()}) == 1
        # and each optimization's signature effect shows up in the metrics
        assert _RESULTS["no partition pruning"].metrics["hbase.rows_visited"] > \
            full.metrics["hbase.rows_visited"]
        assert _RESULTS["no predicate pushdown"].metrics["hbase.bytes_returned"] >= \
            full.metrics["hbase.bytes_returned"]
        assert _RESULTS["no operator fusion"].metrics["engine.tasks"] > \
            full.metrics["engine.tasks"]
        assert _RESULTS["no data locality"].metrics.get("hbase.network_bytes", 0) >= \
            full.metrics.get("hbase.network_bytes", 0)
        for label, result in _RESULTS.items():
            if label != "full SHC":
                assert result.seconds >= full.seconds * 0.95, label


    benchmark.pedantic(report, iterations=1, rounds=1)
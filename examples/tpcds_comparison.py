"""SHC vs vanilla Spark SQL on TPC-DS q39a -- the paper's Figure 4 in small.

Loads the q39 tables at one nominal size, runs the same query through both
connectors against the *same* HBase bytes, and prints latency, shuffle
volume and scan metrics side by side, plus the physical-plan difference that
explains them (pushdown + broadcast vs full scan + shuffled joins).

Run:  python examples/tpcds_comparison.py [size_gb]
"""

import sys

from repro.baselines import BASELINE_FORMAT
from repro.workloads import load_tpcds, q39a
from repro.workloads.tpcds_schema import Q39_TABLES


def describe(label, result):
    metrics = result.metrics
    print(f"{label:10s} latency {result.seconds:7.1f}s   "
          f"shuffle {result.shuffle_bytes / 1024:8.1f}KB   "
          f"scanned {metrics.get('hbase.bytes_scanned') / 1024:8.1f}KB   "
          f"rows visited {metrics.get('hbase.rows_visited'):7.0f}   "
          f"tasks {metrics.get('engine.tasks'):4.0f}")


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    print(f"loading TPC-DS q39 tables at nominal {size} GB ...")
    env = load_tpcds(size, Q39_TABLES)

    shc = env.new_session()
    base = env.new_session(BASELINE_FORMAT)
    sql = q39a()

    shc_df = shc.sql(sql)
    base_df = base.sql(sql)

    shc_run = shc_df.run()
    base_run = base_df.run()

    def close(a, b):
        if len(a) != len(b):
            return False
        for ra, rb in zip(a, b):
            for va, vb in zip(ra.values, rb.values):
                if isinstance(va, float):
                    if abs(va - vb) > 1e-9 * max(1.0, abs(va)):
                        return False
                elif va != vb:
                    return False
        return True

    verdict = "MATCH" if close(shc_run.rows, base_run.rows) else "DIFFER"
    print(f"\nTPC-DS q39a at nominal {size} GB "
          f"({len(shc_run.rows)} result rows, answers {verdict}):\n")
    describe("SHC", shc_run)
    describe("SparkSQL", base_run)
    print(f"\nspeedup: {base_run.seconds / shc_run.seconds:.1f}x, "
          f"shuffle reduction: {base_run.shuffle_bytes / max(1, shc_run.shuffle_bytes):.0f}x")

    print("\nwhy -- the SHC physical plan pushes filters into the scan and")
    print("broadcasts the dimensions (no fact-table exchange):\n")
    for line in shc_df.explain().splitlines():
        if "DataSourceScan" in line or "Join" in line:
            print("   " + line.strip()[:120])
    print("\nwhile the generic connector scans everything and shuffles both")
    print("sides of every join:\n")
    for line in base_df.explain().splitlines():
        if "DataSourceScan" in line or "Join" in line:
            print("   " + line.strip()[:120])


if __name__ == "__main__":
    main()

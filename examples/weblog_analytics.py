"""Web-log analytics: the introduction's motivating scenario.

User check-in / page-visit events land in HBase as key-value pairs; an
analyst runs OLAP over them through SHC.  Demonstrates composite row keys
(time-leading so time-range predicates prune partitions), timestamp/version
queries (the paper's Code 5), and a coder choice (Phoenix encoding so the
table interoperates with Apache Phoenix).

Run:  python examples/weblog_analytics.py
"""

import json

from repro.core import DEFAULT_FORMAT, HBaseSparkConf, HBaseTableCatalog
from repro.hbase import HBaseCluster
from repro.sql import (
    DoubleType,
    IntegerType,
    SparkSession,
    StringType,
    StructField,
    StructType,
)

# composite row key (hour, user): hour leads, so hour ranges prune regions
CATALOG = json.dumps({
    "table": {"namespace": "default", "name": "weblog", "tableCoder": "Phoenix"},
    "rowkey": "hour:user_id",
    "columns": {
        "hour": {"cf": "rowkey", "col": "hour", "type": "int"},
        "user_id": {"cf": "rowkey", "col": "user_id", "type": "int"},
        "page": {"cf": "cf1", "col": "page", "type": "string"},
        "country": {"cf": "cf2", "col": "country", "type": "string"},
        "stay_time": {"cf": "cf3", "col": "stay_time", "type": "double"},
    },
})
SCHEMA = StructType([
    StructField("hour", IntegerType),
    StructField("user_id", IntegerType),
    StructField("page", StringType),
    StructField("country", StringType),
    StructField("stay_time", DoubleType),
])

PAGES = ["/home", "/search", "/cart", "/checkout", "/profile"]
COUNTRIES = ["US", "DE", "JP", "BR"]


def generate_events():
    import random

    rng = random.Random(2018)
    rows = []
    for hour in range(24 * 7):                 # one week of traffic
        for __ in range(rng.randint(3, 9)):    # a few events per hour
            rows.append((
                hour,
                rng.randint(1, 200),
                rng.choice(PAGES),
                rng.choice(COUNTRIES),
                round(rng.expovariate(1 / 40.0), 1),
            ))
    # composite keys must be unique: dedupe (hour, user)
    return list({(r[0], r[1]): r for r in rows}.values())


def main() -> None:
    hosts = [f"node{i}" for i in range(1, 6)]
    cluster = HBaseCluster("weblog", hosts)
    session = SparkSession(hosts, executors_requested=5, clock=cluster.clock)
    options = {
        HBaseTableCatalog.tableCatalog: CATALOG,
        HBaseTableCatalog.newTable: "5",
        "hbase.zookeeper.quorum": cluster.quorum,
    }

    events = generate_events()
    session.create_dataframe(events, SCHEMA).write \
        .format(DEFAULT_FORMAT).options(options).save()
    write_ms = cluster.clock.now_millis()
    print(f"loaded {len(events)} events into HBase")

    weblog = session.read.format(DEFAULT_FORMAT).options(options).load()
    weblog.create_or_replace_temp_view("weblog")

    # 1. hour-range OLAP: the leading key dimension prunes partitions
    busy = session.sql("""
        select page, count(*) as hits, avg(stay_time) as avg_stay
        from weblog
        where hour between 48 and 71        -- day three only
        group by page order by hits desc
    """)
    print("\nday-three traffic by page:")
    busy.show()
    run = session.sql(
        "select count(*) from weblog where hour between 48 and 71").run()
    print(f"(pruned scan visited {run.metrics.get('hbase.rows_visited'):.0f} "
          f"of {len(events)} rows)")

    # 2. per-country engagement with HAVING
    engaged = session.sql("""
        select country, count(*) n, avg(stay_time) stay
        from weblog
        group by country
        having avg(stay_time) > 30
        order by stay desc
    """)
    print("countries with average stay over 30s:")
    engaged.show()

    # 3. late-arriving corrections: newer cell versions shadow older ones
    cluster.clock.advance(60.0)
    session.create_dataframe(
        [(0, events[0][1], "/corrected", "US", 1.0)], SCHEMA
    ).write.format(DEFAULT_FORMAT).options(options).save()

    latest = weblog.filter(f"hour = 0 and user_id = {events[0][1]}").collect()
    print(f"latest version: {latest[0].page}")

    # Code 5: query as-of the original load using MIN/MAX_TIMESTAMP
    historical_options = dict(options)
    historical_options[HBaseSparkConf.MIN_TIMESTAMP] = "0"
    historical_options[HBaseSparkConf.MAX_TIMESTAMP] = str(write_ms + 1)
    historical = session.read.format(DEFAULT_FORMAT) \
        .options(historical_options).load()
    old = historical.filter(f"hour = 0 and user_id = {events[0][1]}").collect()
    print(f"as-of-load version: {old[0].page}")


if __name__ == "__main__":
    main()

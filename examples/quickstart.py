"""Quickstart: the paper's Code 1-4 flow, end to end.

Define a catalog mapping an HBase table to a relational schema (Code 1),
write a DataFrame into a new pre-split HBase table (Code 2), read it back
and query with the DataFrame API (Code 3) and SQL (Code 4).

Run:  python examples/quickstart.py
"""

from repro.core import DEFAULT_FORMAT, HBaseTableCatalog
from repro.hbase import HBaseCluster
from repro.sql import (
    DoubleType,
    SparkSession,
    StringType,
    StructField,
    StructType,
    TimestampType,
)

# the catalog of the paper's Code 1: user activity logs
CATALOG = """{
  "table":{"namespace":"default", "name":"actives",
           "tableCoder":"PrimitiveType", "Version":"2.0"},
  "rowkey":"key",
  "columns":{
    "col0":{"cf":"rowkey", "col":"key", "type":"string"},
    "visit_pages":{"cf":"cf2", "col":"col2", "type":"string"},
    "stay_time":{"cf":"cf3", "col":"col3", "type":"double"},
    "time":{"cf":"cf4", "col":"col4", "type":"time"}
  }
}"""

SCHEMA = StructType([
    StructField("col0", StringType),
    StructField("visit_pages", StringType),
    StructField("stay_time", DoubleType),
    StructField("time", TimestampType),
])


def main() -> None:
    # one HBase cluster and one Spark-like session on the same five hosts
    hosts = [f"node{i}" for i in range(1, 6)]
    cluster = HBaseCluster("quickstart", hosts)
    session = SparkSession(hosts, executors_requested=5, clock=cluster.clock)

    options = {
        HBaseTableCatalog.tableCatalog: CATALOG,
        HBaseTableCatalog.newTable: "5",  # create the table with 5 regions
        "hbase.zookeeper.quorum": cluster.quorum,
    }

    # -- write path (paper Code 2) ---------------------------------------
    rows = [
        (f"row{i:03d}", f"/page/{i % 7}", round(1.5 * (i % 11), 2), 1_000 + i)
        for i in range(300)
    ]
    df = session.create_dataframe(rows, SCHEMA)
    write_result = df.write.format(DEFAULT_FORMAT).options(options).save()
    print(f"wrote {write_result.rows_written} rows "
          f"in {write_result.seconds:.1f} simulated seconds "
          f"across {len(cluster.region_locations('actives'))} regions")

    # -- read + DataFrame API (paper Code 3) -------------------------------
    actives = session.read.format(DEFAULT_FORMAT).options(options).load()
    result = actives.filter("col0 <= 'row120'").select("col0", "visit_pages")
    print(f"\ndf.filter(col0 <= 'row120').select(...): {result.count()} rows")
    result.limit(5).show()

    # -- SQL (paper Code 4) ----------------------------------------------------
    actives.create_or_replace_temp_view("actives")
    count = session.sql("select count(*) from actives").collect()[0][0]
    print(f"select count(1) from actives -> {count}")

    top = session.sql("""
        select visit_pages, count(*) as visits, avg(stay_time) as avg_stay
        from actives
        where col0 >= 'row100'
        group by visit_pages
        order by visits desc, visit_pages
        limit 3
    """)
    print("\ntop pages for rows >= row100:")
    top.show()

    # partition pruning at work: the row-key predicate touched a subset
    run = actives.filter("col0 >= 'row250'").run()
    print(f"pruned scan visited {run.metrics.get('hbase.rows_visited'):.0f} "
          f"of 300 rows in {run.seconds:.2f} simulated seconds")


if __name__ == "__main__":
    main()

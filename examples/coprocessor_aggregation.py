"""The section III.C design trade-off, live: SHC vs coprocessor aggregation.

The paper chose a maintainable Data-Source-API plug-in over the Huawei
connector's "advanced and aggressive" approach of shipping work into HBase
coprocessors. Both live in this repository; this example runs the same
grouped aggregation through each and shows where the bytes flow.

Run:  python examples/coprocessor_aggregation.py
"""

import repro.extensions  # registers the Huawei-style provider
from repro.core import DEFAULT_FORMAT, HBaseTableCatalog
from repro.extensions import HUAWEI_FORMAT
from repro.hbase import HBaseCluster
from repro.sql import (
    DoubleType,
    IntegerType,
    SparkSession,
    StringType,
    StructField,
    StructType,
)

CATALOG = """{
  "table":{"namespace":"default", "name":"readings", "tableCoder":"Phoenix"},
  "rowkey":"sensor_id:seq",
  "columns":{
    "sensor_id":{"cf":"rowkey", "col":"sensor_id", "type":"int"},
    "seq":{"cf":"rowkey", "col":"seq", "type":"int"},
    "room":{"cf":"cf1", "col":"room", "type":"string"},
    "celsius":{"cf":"cf2", "col":"celsius", "type":"double"}
  }
}"""
SCHEMA = StructType([
    StructField("sensor_id", IntegerType),
    StructField("seq", IntegerType),
    StructField("room", StringType),
    StructField("celsius", DoubleType),
])

QUERY = """
    select room, count(*) as samples, avg(celsius) as avg_c,
           stddev(celsius) as sd_c
    from readings group by room order by room
"""


def main() -> None:
    hosts = [f"node{i}" for i in range(1, 6)]
    cluster = HBaseCluster("sensors", hosts)
    session = SparkSession(hosts, executors_requested=5, clock=cluster.clock)
    options = {
        HBaseTableCatalog.tableCatalog: CATALOG,
        HBaseTableCatalog.newTable: "5",
        "hbase.zookeeper.quorum": cluster.quorum,
    }
    rows = [
        (sensor, seq, f"room-{sensor % 4}",
         20.0 + (sensor % 7) + (seq % 11) / 10.0)
        for sensor in range(1, 41)
        for seq in range(25)
    ]
    session.create_dataframe(rows, SCHEMA).write \
        .format(DEFAULT_FORMAT).options(options).save()
    print(f"loaded {len(rows)} sensor readings\n")

    for label, fmt in (("SHC (plug-in)", DEFAULT_FORMAT),
                       ("Huawei-style (coprocessor)", HUAWEI_FORMAT)):
        df = session.read.format(fmt).options(options).load()
        df.create_or_replace_temp_view("readings")
        result = session.sql(QUERY).run()
        print(f"{label}:")
        for row in result.rows:
            print(f"  {row.room}: n={row.samples} avg={row.avg_c:.2f} "
                  f"sd={row.sd_c:.2f}")
        print(f"  latency {result.seconds:.1f} simulated s | "
              f"bytes returned to engine "
              f"{result.metrics.get('hbase.bytes_returned') / 1024:.0f}KB | "
              f"coprocessor calls "
              f"{result.metrics.get('hbase.coprocessor_calls', 0):.0f}\n")

    plan = session.sql(QUERY).explain()
    headline = [l for l in plan.splitlines() if "Aggregate" in l][:1]
    print("the coprocessor plan's top operator:", headline[0].strip())
    print("\n(the paper's point: the speed is real, but the plug-in design")
    print("survives engine upgrades -- see DESIGN.md and section III.C)")


if __name__ == "__main__":
    main()

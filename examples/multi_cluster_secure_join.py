"""Joining data across multiple *secure* HBase clusters (section V.B.2).

The paper's motivating deployment: streaming user activity lands in one
secure HBase cluster, user profiles live in another, and one Spark
application must join them.  Stock Spark acquires tokens statically at
launch and cannot talk to a newly discovered secure service; SHC's
``SHCCredentialsManager`` fetches and caches delegation tokens per cluster
on the fly and renews them before expiry.

Run:  python examples/multi_cluster_secure_join.py
"""

import json

from repro.common.simclock import SimClock
from repro.core import DEFAULT_FORMAT, HBaseSparkConf, HBaseTableCatalog
from repro.core.credentials import DEFAULT_CREDENTIALS_MANAGER
from repro.hbase import HBaseCluster
from repro.hbase.security import KeyDistributionCenter, KeytabStore
from repro.sql import IntegerType, SparkSession, StringType, StructField, StructType

ACTIVITY_CATALOG = json.dumps({
    "table": {"namespace": "default", "name": "activity"},
    "rowkey": "event_id",
    "columns": {
        "event_id": {"cf": "rowkey", "col": "event_id", "type": "int"},
        "uid": {"cf": "cf1", "col": "uid", "type": "int"},
        "item": {"cf": "cf2", "col": "item", "type": "string"},
    },
})
PROFILE_CATALOG = json.dumps({
    "table": {"namespace": "default", "name": "profiles"},
    "rowkey": "uid",
    "columns": {
        "uid": {"cf": "rowkey", "col": "uid", "type": "int"},
        "name": {"cf": "cf1", "col": "name", "type": "string"},
        "segment": {"cf": "cf2", "col": "segment", "type": "string"},
    },
})
ACTIVITY_SCHEMA = StructType([
    StructField("event_id", IntegerType),
    StructField("uid", IntegerType),
    StructField("item", StringType),
])
PROFILE_SCHEMA = StructType([
    StructField("uid", IntegerType),
    StructField("name", StringType),
    StructField("segment", StringType),
])


def main() -> None:
    clock = SimClock()

    # the Kerberos realm: one KDC, one headless principal with a keytab
    kdc = KeyDistributionCenter(clock)
    keytab = kdc.register_principal("ambari-qa@EXAMPLE.COM")
    KeytabStore.install("smokeuser.headless.keytab", keytab)

    # two independent *secure* HBase clusters
    activity_cluster = HBaseCluster("activity-hb", ["a1", "a2"], clock=clock,
                                    secure=True, kdc=kdc)
    profile_cluster = HBaseCluster("profile-hb", ["p1", "p2"], clock=clock,
                                   secure=True, kdc=kdc)

    # one Spark application configured as the paper's Code 6
    session = SparkSession(["a1", "a2", "p1", "p2"], clock=clock, conf={
        HBaseSparkConf.CREDENTIALS_ENABLED: "true",           # Code 6
        HBaseSparkConf.PRINCIPAL: "ambari-qa@EXAMPLE.COM",
        HBaseSparkConf.KEYTAB: "smokeuser.headless.keytab",
    })

    activity_opts = {
        HBaseTableCatalog.tableCatalog: ACTIVITY_CATALOG,
        HBaseTableCatalog.newTable: "2",
        "hbase.zookeeper.quorum": activity_cluster.quorum,
    }
    profile_opts = {
        HBaseTableCatalog.tableCatalog: PROFILE_CATALOG,
        HBaseTableCatalog.newTable: "2",
        "hbase.zookeeper.quorum": profile_cluster.quorum,
    }

    events = [(i, i % 5 + 1, f"item-{i % 3}") for i in range(40)]
    profiles = [(uid, f"user{uid}", "gold" if uid % 2 else "silver")
                for uid in range(1, 6)]
    session.create_dataframe(events, ACTIVITY_SCHEMA).write \
        .format(DEFAULT_FORMAT).options(activity_opts).save()
    session.create_dataframe(profiles, PROFILE_SCHEMA).write \
        .format(DEFAULT_FORMAT).options(profile_opts).save()

    session.read.format(DEFAULT_FORMAT).options(activity_opts).load() \
        .create_or_replace_temp_view("activity")
    session.read.format(DEFAULT_FORMAT).options(profile_opts).load() \
        .create_or_replace_temp_view("profiles")

    result = session.sql("""
        select segment, count(*) as purchases
        from activity join profiles on activity.uid = profiles.uid
        group by segment order by purchases desc
    """)
    print("purchases per customer segment (join across two secure clusters):")
    result.show()

    manager = DEFAULT_CREDENTIALS_MANAGER
    print(f"tokens cached for: {manager.cached_services()}")
    print(f"token fetches: {manager.fetches}, cache hits: {manager.cache_hits}")

    # long-running job: hours later the tokens are renewed, not refetched
    clock.advance(45 * 60)
    session.sql("select count(*) from activity").collect()
    print(f"after 45 minutes -> fetches: {manager.fetches}, "
          f"renewals: {manager.renewals}, cache hits: {manager.cache_hits}")


if __name__ == "__main__":
    main()

"""Per-query tracing: a span tree over the simulated query lifecycle.

A trace is a tree of :class:`Span` objects mirroring how a query executes:
``query`` at the root, planning phases (``optimize`` / ``plan`` /
``scan-plan``) and stages below it, task and attempt spans below stages, and
scan spans below tasks.  Every span carries two clocks — *simulated seconds*
(the cost-model time attributed to that span) and *wall-clock seconds*
(measured with ``perf_counter``) — plus a snapshot of the
:class:`~repro.common.metrics.MetricsRegistry` deltas observed while the
span was open, a free-form attribute dict and a list of point events
(retries, scan resumes, shuffle fetches).

Tracing is zero-overhead by default: when disabled, every producer holds
:data:`NOOP_SPAN`, whose methods do nothing and whose ``child()`` returns
itself, so the hot path never branches on a flag or allocates.  Code that
may run without any span at all (e.g. the HBase client, which only sees a
``CostLedger``) checks ``ledger.trace_span is None`` first.

Span trees are deterministic under the parallel runner: children record an
``order`` key at creation (stage id, task index, attempt number, ...) and
``finish()`` sorts them by it, so the rendered tree does not depend on
thread interleaving.  ``to_dict()`` serialises a trace to plain JSON for
the bench harness and the ``repro trace`` CLI; :func:`render_trace` is the
shared pretty-printer over that JSON shape.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

# One lock guards every span tree's child/event appends.  Contention is
# negligible (spans are created far less often than metrics are bumped) and
# a shared lock keeps Span allocation-free beyond its own slots.
_TREE_LOCK = threading.Lock()


class Span:
    """One timed node in a trace tree.

    ``sim_seconds`` is simulated (cost-model) time, ``wall_clock_s`` is
    measured host time, ``metrics`` is the counter delta observed inside
    the span (assigned by the producer at ``finish()``).
    """

    __slots__ = ("name", "kind", "order", "attrs", "children", "events",
                 "sim_seconds", "wall_clock_s", "metrics", "_wall_start")

    #: real spans record; NOOP_SPAN overrides this with False so producers
    #: can cheaply skip snapshot work that only feeds the trace.
    enabled = True

    def __init__(self, name: str, kind: str = "span",
                 order: Any = None, **attrs: Any) -> None:
        self.name = name
        self.kind = kind
        self.order = order
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []
        self.sim_seconds = 0.0
        self.wall_clock_s = 0.0
        self.metrics: Dict[str, float] = {}
        self._wall_start = time.perf_counter()

    def child(self, name: str, kind: str = "span",
              order: Any = None, **attrs: Any) -> "Span":
        """Open a child span.  Thread-safe; explicit parent, no thread-locals."""
        span = Span(name, kind, order=order, **attrs)
        with _TREE_LOCK:
            self.children.append(span)
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (retry, resume, fetch) inside this span."""
        record = {"event": name}
        record.update(attrs)
        with _TREE_LOCK:
            self.events.append(record)

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on this span."""
        self.attrs.update(attrs)

    def finish(self, sim_seconds: Optional[float] = None,
               metrics: Optional[Dict[str, float]] = None) -> "Span":
        """Close the span: stamp wall-clock, attach the metrics delta and
        sort children into their deterministic order."""
        self.wall_clock_s = time.perf_counter() - self._wall_start
        if sim_seconds is not None:
            self.sim_seconds = float(sim_seconds)
        if metrics:
            self.metrics = dict(metrics)
        with _TREE_LOCK:
            if all(c.order is not None for c in self.children):
                self.children.sort(key=lambda c: c.order)
        return self

    def find(self, kind: str) -> List["Span"]:
        """All descendant spans (including self) of the given kind."""
        found = [self] if self.kind == kind else []
        for c in self.children:
            found.extend(c.find(kind))
        return found

    def find_events(self, name: str) -> List[Dict[str, Any]]:
        """All events of ``name`` in this span and every descendant.

        Lets tests and the observability docs locate e.g. the adaptive
        executor's ``reopt`` events without walking the tree by hand.
        """
        found = [dict(e) for e in self.events if e.get("event") == name]
        for c in self.children:
            found.extend(c.find_events(name))
        return found

    def total(self, metric: str) -> float:
        """Sum a metric over this span and every descendant."""
        return (self.metrics.get(metric, 0.0)
                + sum(c.total(metric) for c in self.children))

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to the JSON trace schema (see docs/observability.md)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "sim_seconds": round(self.sim_seconds, 9),
            "wall_clock_s": round(self.wall_clock_s, 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if self.events:
            out["events"] = [dict(e) for e in self.events]
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


class _NoopSpan:
    """The disabled recorder: every operation is a no-op, ``child()``
    returns itself so a whole subtree of calls collapses to nothing."""

    __slots__ = ()
    enabled = False
    name = kind = "noop"
    order = None
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    events: List[Dict[str, Any]] = []
    sim_seconds = 0.0
    wall_clock_s = 0.0
    metrics: Dict[str, float] = {}

    def child(self, name: str, kind: str = "span",
              order: Any = None, **attrs: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    def finish(self, sim_seconds: Optional[float] = None,
               metrics: Optional[Dict[str, float]] = None) -> "_NoopSpan":
        return self

    def find(self, kind: str) -> List[Span]:
        return []

    def find_events(self, name: str) -> List[Dict[str, Any]]:
        return []

    def total(self, metric: str) -> float:
        return 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOOP_SPAN"


#: Shared no-op recorder used whenever tracing is disabled.
NOOP_SPAN = _NoopSpan()


def save_trace(trace: Any, path: str) -> None:
    """Write a trace (a :class:`Span` or an already-serialised dict) to a
    JSON file readable by ``python -m repro.cli trace``."""
    data = trace.to_dict() if hasattr(trace, "to_dict") else trace
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    """Read a trace JSON file written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


_EVENT_ATTR_ORDER = ("event",)


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_attrs(attrs: Dict[str, Any], skip: tuple = ()) -> str:
    parts = [f"{k}={_fmt_value(v)}" for k, v in attrs.items() if k not in skip]
    return " ".join(parts)


def render_trace(node: Dict[str, Any], indent: int = 0,
                 show_metrics: bool = False) -> str:
    """Pretty-print a serialised trace dict as an indented tree.

    Used by the ``repro trace`` CLI subcommand and tests; accepts the
    output of :meth:`Span.to_dict` / :func:`load_trace`.
    """
    pad = "  " * indent
    head = f"{pad}{node.get('name', '?')} [{node.get('kind', 'span')}]"
    timing = (f"sim={node.get('sim_seconds', 0.0):.4f}s "
              f"wall={node.get('wall_clock_s', 0.0):.4f}s")
    attrs = _fmt_attrs(node.get("attrs", {}))
    line = f"{head}  {timing}" + (f"  {attrs}" if attrs else "")
    lines = [line]
    if show_metrics:
        for name in sorted(node.get("metrics", {})):
            lines.append(f"{pad}    {name} = "
                         f"{_fmt_value(node['metrics'][name])}")
    for event in node.get("events", []):
        detail = _fmt_attrs(event, skip=_EVENT_ATTR_ORDER)
        lines.append(f"{pad}  ! {event.get('event', '?')}"
                     + (f"  {detail}" if detail else ""))
    for childd in node.get("children", []):
        lines.append(render_trace(childd, indent + 1,
                                  show_metrics=show_metrics))
    return "\n".join(lines)

"""The calibrated cost model that turns metered work into simulated seconds.

The paper's evaluation ran on a 5-node Gigabit cluster; we cannot reproduce
wall-clock numbers on a laptop-scale Python simulation, so every experiment
reports *simulated seconds* computed from metered work (bytes scanned at
region servers, bytes moved over the network, RPC counts, per-cell decode
work, task launches, shuffle volume).  The constants below are set **once**
to magnitudes resembling the paper's testbed scaled to our generated data
volumes and are never tuned per experiment -- all differences between SHC and
the baseline emerge from the work they actually perform.

``logical_bytes_per_row`` deserves a note: the TPC-DS generators produce row
counts scaled down ~1e4 from the paper's 5-30 GB, so the harness labels runs
with a nominal ``size_gb`` while the cost model charges for the *actual*
encoded bytes.  Bandwidth constants are therefore expressed in scaled
bytes/second; see DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """All timing constants for the simulation, in one documented place."""

    # -- HBase region server ------------------------------------------------
    #: sequential store-file scan bandwidth per region server (bytes/s)
    scan_bytes_per_sec: float = 24_000.0
    #: extra cost to open a scanner / seek via the block index (s)
    seek_cost_s: float = 0.01
    #: server-side filter evaluation per cell visited (s)
    cell_filter_cost_s: float = 1.0e-5
    #: memstore/WAL write path cost per byte written (s)
    write_bytes_per_sec: float = 30_000.0
    #: fixed cost per Put batch (WAL sync) (s)
    wal_sync_cost_s: float = 0.004
    #: block-cache memory read bandwidth (bytes/s); ~20x the HDFS scan rate,
    #: mirroring the DRAM-vs-disk gap the LLAP-style cache exploits
    blockcache_bytes_per_sec: float = 480_000.0

    # -- network --------------------------------------------------------------
    #: client <-> region server transfer bandwidth (bytes/s)
    network_bytes_per_sec: float = 48_000.0
    #: same-host region server -> executor transfer (RPC serialization is
    #: paid even co-located; locality saves the wire, not the copy) (bytes/s)
    local_ipc_bytes_per_sec: float = 160_000.0
    #: fixed round-trip latency per RPC (s)
    rpc_latency_s: float = 0.004
    #: primary -> region-replica WAL shipping bandwidth (bytes/s); the async
    #: replication stream runs server-to-server on the cluster fabric, so it
    #: moves faster than the client path but still pays the wire
    replication_bytes_per_sec: float = 96_000.0
    #: creating an HBase connection (ZooKeeper lookups, meta cache warmup) (s)
    connection_setup_s: float = 1.8
    #: fetching a delegation token from a secure cluster (s)
    token_fetch_s: float = 2.5

    # -- compute engine ---------------------------------------------------------
    #: fixed scheduling + JVM-ish launch overhead per task (s)
    task_launch_s: float = 0.35
    #: driver-side planning/compilation overhead per query (s)
    driver_overhead_s: float = 1.2
    #: per-row CPU cost of engine-side operators (filter/project/join probe) (s)
    row_cpu_s: float = 1.2e-5
    #: per-row CPU cost of the same operators under vectorized batch
    #: execution (``sql.vectorized.enabled``): column kernels amortise the
    #: per-row interpreter dispatch across a RecordBatch, modeled as a flat
    #: 4x reduction (docs/vectorized.md)
    vector_row_cpu_s: float = 3.0e-6
    #: shuffle write+read bandwidth (bytes/s)
    shuffle_bytes_per_sec: float = 7_000.0
    #: fixed cost per shuffle exchange (s)
    shuffle_setup_s: float = 0.1
    #: executor partition-cache memory read bandwidth (bytes/s); reading a
    #: cached partition skips the scan + decode pipeline entirely
    cached_partition_bytes_per_sec: float = 600_000.0

    # -- coders -----------------------------------------------------------------
    #: base per-cell decode cost (s); multiplied by each coder's cpu_factor
    decode_cell_s: float = 4.0e-5
    #: base per-cell encode cost (s); multiplied by each coder's cpu_factor
    encode_cell_s: float = 4.0e-5

    # -- memory accounting ---------------------------------------------------
    #: bytes of engine heap charged per decoded value beyond its payload
    row_object_overhead_bytes: int = 24

    #: per-coder CPU multipliers (native primitive = 1.0)
    coder_cpu_factors: Dict[str, float] = field(
        default_factory=lambda: {
            "PrimitiveType": 1.0,
            "Phoenix": 1.35,
            "Avro": 7.0,
            # the vanilla engine's generic row converter (baseline write path)
            "GenericSparkSql": 4.0,
        }
    )

    def coder_factor(self, coder_name: str) -> float:
        """CPU multiplier for a coder; unknown custom coders cost native x1.2."""
        return self.coder_cpu_factors.get(coder_name, 1.2)

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with the given constants replaced (for ablations)."""
        return replace(self, **overrides)


#: the default model used by every benchmark
DEFAULT_COST_MODEL = CostModel()

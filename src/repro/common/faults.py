"""Deterministic, seeded fault injection for the whole stack.

A :class:`FaultInjector` holds a set of :class:`FaultRule`\\ s keyed by
named *fault points* threaded through the substrate (HBase client RPCs,
mid-scan page fetches, pushed-down filter evaluation, shuffle fetches,
executor hosts).  Whether a given invocation of a fault point fires is a
pure function of ``(seed, point, key, invocation index)`` -- no wall clock,
no ``random`` module -- so a chaos schedule replays identically for a given
seed even though the engine runs tasks on a thread pool: each ``(point,
key)`` pair keeps its own invocation counter, and per-key invocation order
is determined by the task that owns the key, not by thread interleaving.

With no injector installed every fault point is a single ``is None`` check,
and the code path is byte-for-byte the fault-free one: turning fault
injection off yields zero behavior or ledger difference.

Fault points currently wired in:

======================  ======================================================
``hbase.rpc``           raised before a client data RPC (default: transient)
``hbase.stale_meta``    forces a NotServingRegion-style relocation
``hbase.scan_stream``   between scan result pages (crash a server mid-scan)
``hbase.filter``        pushed-down filter blows up server-side
``engine.shuffle_fetch`` reduce-side block fetch fails (task retry)
``engine.slow_host``    inflates a task's simulated cost (straggler)
``serving.admission``   front-door overload (queue-full / degraded server)
======================  ======================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    FilterEvalError,
    OverloadedError,
    RegionOfflineError,
    RegionServerStoppedError,
    ShuffleFetchError,
    TransientRpcError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.retry import stable_fraction

#: fault-point names (the registry below is open: sites may add their own)
FAULT_RPC = "hbase.rpc"
FAULT_STALE_META = "hbase.stale_meta"
FAULT_SCAN_STREAM = "hbase.scan_stream"
FAULT_FILTER = "hbase.filter"
FAULT_SHUFFLE_FETCH = "engine.shuffle_fetch"
FAULT_SLOW_HOST = "engine.slow_host"
FAULT_ADMISSION = "serving.admission"

#: an action gets the site's context dict and either raises or returns an effect
FaultAction = Callable[[dict], object]


def raise_transient(ctx: dict) -> None:
    """Default action: a retryable RPC failure."""
    raise TransientRpcError(
        f"injected transient fault at {ctx.get('point')} ({ctx.get('key')})"
    )


def raise_stale_meta(ctx: dict) -> None:
    """Pretend the cached region location went stale (NotServingRegion)."""
    raise RegionOfflineError(
        f"injected stale meta at {ctx.get('point')} ({ctx.get('key')})"
    )


def raise_filter_error(ctx: dict) -> None:
    """Pushed-down filter evaluation blows up on the server."""
    raise FilterEvalError(
        f"injected filter failure at {ctx.get('point')} ({ctx.get('key')})"
    )


def raise_overloaded(ctx: dict) -> None:
    """The serving front door is overloaded (queue-full / degraded server).

    The default action for :data:`FAULT_ADMISSION`: the query under
    admission is shed with a structured retry-after error exactly as if the
    bounded queue had filled, which is how the chaos suite injects overload
    scenarios without having to saturate the simulated cluster for real.
    ``retry_after_s`` may be supplied through the site context.
    """
    raise OverloadedError(
        f"injected admission overload at {ctx.get('point')} ({ctx.get('key')})",
        reason="injected",
        retry_after_s=float(ctx.get("retry_after_s", 1.0)),
        tenant=str(ctx.get("key")) or None,
    )


def raise_shuffle_fetch_error(ctx: dict) -> None:
    """A reduce-side shuffle block fetch fails (the task will be retried)."""
    raise ShuffleFetchError(
        f"injected shuffle-fetch failure at {ctx.get('point')} ({ctx.get('key')})"
    )


def crash_region_server(ctx: dict) -> None:
    """Crash the region server serving the faulted request, mid-scan.

    The site passes ``cluster`` and ``server_id`` in its context.  The crash
    runs the master's failure handling synchronously (region reassignment +
    WAL replay on the new owners), then raises
    :class:`RegionServerStoppedError` so the in-flight scan aborts exactly
    the way a broken socket would -- after which the client's resume logic
    re-locates and continues from the last row it yielded.
    """
    cluster = ctx.get("cluster")
    server_id = ctx.get("server_id")
    if cluster is not None and server_id is not None:
        server = cluster.region_servers.get(server_id)
        if server is not None and server.alive:
            cluster.kill_region_server(server_id)
    raise RegionServerStoppedError(
        f"injected crash of region server {server_id} mid-scan"
    )


@dataclass
class SlowHostEffect:
    """Returned (not raised) by a slow-host rule: the straggler knobs.

    ``factor`` multiplies the simulated cost the task accrued; ``sleep_s``
    holds the task open in *wall-clock* time so the stage's speculative
    execution can observe a still-running tail task and race a copy.
    """

    factor: float = 4.0
    sleep_s: float = 0.0

    def __call__(self, ctx: dict) -> "SlowHostEffect":
        """Acting on a slow-host fault just hands the effect to the site."""
        return self


#: per-point default actions for rules registered without an explicit one;
#: every point not listed here injects a retryable RPC failure
_DEFAULT_ACTIONS: Dict[str, FaultAction] = {
    FAULT_ADMISSION: raise_overloaded,
}


@dataclass
class FaultRule:
    """One injection rule bound to a fault point.

    ``rate`` is the per-invocation firing probability, decided by a stable
    hash (deterministic per key + invocation index).  ``times`` caps total
    fires; ``after`` skips the first N invocations of each key; ``key`` and
    ``key_substr`` narrow which site keys the rule applies to.
    """

    point: str
    rate: float = 1.0
    times: Optional[int] = None
    after: int = 0
    key: Optional[str] = None
    key_substr: Optional[str] = None
    action: Optional[FaultAction] = None
    fired: int = field(default=0, compare=False)

    def matches(self, key: str) -> bool:
        """Whether this rule applies to an invocation with ``key``."""
        if self.key is not None and key != self.key:
            return False
        if self.key_substr is not None and self.key_substr not in key:
            return False
        return True


class FaultInjector:
    """A seeded registry of fault rules plus injection bookkeeping.

    Install one on an :class:`~repro.hbase.cluster.HBaseCluster` (substrate
    faults) and/or a :class:`~repro.sql.session.SparkSession` (engine
    faults); sites call :meth:`check` and either nothing happens, an
    injected error is raised, or an effect object is returned.  Thread-safe:
    invocation counters and fire caps mutate under one lock.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._rules: Dict[str, List[FaultRule]] = {}
        self._counts: Dict[Tuple[str, str], int] = {}

    # -- configuration -----------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        """Register a rule; returns it for later inspection (``rule.fired``)."""
        with self._lock:
            self._rules.setdefault(rule.point, []).append(rule)
        return rule

    def inject(self, point: str, rate: float = 1.0,
               times: Optional[int] = None, after: int = 0,
               key: Optional[str] = None, key_substr: Optional[str] = None,
               action: Optional[FaultAction] = None) -> FaultRule:
        """Convenience wrapper building and registering a :class:`FaultRule`."""
        return self.add_rule(FaultRule(point=point, rate=rate, times=times,
                                       after=after, key=key,
                                       key_substr=key_substr, action=action))

    # -- the hot path ------------------------------------------------------
    def check(self, point: str, key: str = "", ledger=None, **ctx) -> object:
        """Decide whether the fault point fires for this invocation.

        Returns ``None`` (nothing injected) or whatever the matched rule's
        action returns; most actions raise instead.  The decision is made
        under the injector lock; the action runs outside it, because crash
        actions take cluster-level locks of their own.
        """
        rules = self._rules.get(point)
        if not rules:
            return None
        with self._lock:
            index = self._counts.get((point, key), 0)
            self._counts[(point, key)] = index + 1
            chosen: Optional[FaultRule] = None
            for rule in rules:
                if not rule.matches(key):
                    continue
                if index < rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if stable_fraction(self.seed, point, key, index) < rule.rate:
                    rule.fired += 1
                    chosen = rule
                    break
        if chosen is None:
            return None
        self.metrics.incr("faults.injected")
        self.metrics.incr(f"faults.injected.{point}")
        if ledger is not None:
            ledger.count("faults.injected")
        if chosen.action is not None:
            action = chosen.action
        else:
            action = _DEFAULT_ACTIONS.get(point, raise_transient)
        ctx.update({"point": point, "key": key})
        return action(ctx)

    # -- inspection --------------------------------------------------------
    def injected(self, point: Optional[str] = None) -> float:
        """Total faults injected, overall or for one fault point."""
        name = "faults.injected" if point is None else f"faults.injected.{point}"
        return self.metrics.get(name)

    def __repr__(self) -> str:
        points = sorted(self._rules)
        return f"FaultInjector(seed={self.seed}, points={points})"

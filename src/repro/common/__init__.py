"""Shared infrastructure: errors, simulated clock, metrics, and the cost model."""

from repro.common.cost import CostModel
from repro.common.errors import (
    ReproError,
    CatalogError,
    CoderError,
    HBaseError,
    NoSuchTableError,
    RegionOfflineError,
    RegionServerStoppedError,
    TransientRpcError,
    FilterEvalError,
    OperationTimeoutError,
    RetriesExhaustedError,
    ShuffleFetchError,
    SecurityError,
    SqlError,
    AnalysisError,
    ParseError,
)
from repro.common.faults import FaultInjector, FaultRule
from repro.common.metrics import CostLedger, MetricsRegistry
from repro.common.retry import RetryPolicy
from repro.common.simclock import SimClock

__all__ = [
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "CostModel",
    "MetricsRegistry",
    "CostLedger",
    "SimClock",
    "ReproError",
    "CatalogError",
    "CoderError",
    "HBaseError",
    "NoSuchTableError",
    "RegionOfflineError",
    "RegionServerStoppedError",
    "TransientRpcError",
    "FilterEvalError",
    "OperationTimeoutError",
    "RetriesExhaustedError",
    "ShuffleFetchError",
    "SecurityError",
    "SqlError",
    "AnalysisError",
    "ParseError",
]

"""Shared infrastructure: errors, simulated clock, metrics, and the cost model."""

from repro.common.cost import CostModel
from repro.common.errors import (
    ReproError,
    CatalogError,
    CoderError,
    HBaseError,
    NoSuchTableError,
    RegionOfflineError,
    SecurityError,
    SqlError,
    AnalysisError,
    ParseError,
)
from repro.common.metrics import CostLedger, MetricsRegistry
from repro.common.simclock import SimClock

__all__ = [
    "CostModel",
    "MetricsRegistry",
    "CostLedger",
    "SimClock",
    "ReproError",
    "CatalogError",
    "CoderError",
    "HBaseError",
    "NoSuchTableError",
    "RegionOfflineError",
    "SecurityError",
    "SqlError",
    "AnalysisError",
    "ParseError",
]

"""Retry policy with capped exponential backoff and deterministic jitter.

The whole reproduction is a deterministic discrete simulation, so backoff
cannot come from ``random`` or the wall clock: jitter is derived from a
stable hash of (operation key, attempt), which makes every retry schedule
reproducible across runs and thread interleavings.  Backoff is *simulated*
time -- callers charge it to the cost ledger of the operation that retried,
so recovery latency shows up in query seconds exactly like any other work.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional


def stable_fraction(*parts: object) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` from ``parts``.

    Used for jitter and for seeded fault schedules; CRC32 keeps it cheap,
    stable across processes (unlike salted ``hash``) and well-mixed enough
    for scheduling decisions.
    """
    text = "\x1f".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to back off, and when to give up.

    ``backoff_s`` grows exponentially from ``base_backoff_s`` up to
    ``max_backoff_s`` with +/-50% deterministic jitter (decorrelated retries
    without a random source).  ``deadline_s``, when set, caps the *total*
    simulated seconds an operation may consume across all attempts,
    including backoff -- HBase's ``hbase.client.operation.timeout``.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    deadline_s: Optional[float] = None
    jitter_seed: int = 0

    def backoff_s(self, attempt: int, key: object = "") -> float:
        """Backoff before retry number ``attempt`` (first retry = 1)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        raw = min(self.max_backoff_s, self.base_backoff_s * 2 ** (attempt - 1))
        jitter = 0.5 + stable_fraction(self.jitter_seed, key, attempt)
        return raw * jitter

    def allows_retry(self, attempt: int) -> bool:
        """Whether attempt number ``attempt + 1`` may still be made."""
        return attempt < self.max_attempts

    def within_deadline(self, spent_s: float) -> bool:
        """Whether an operation that already spent ``spent_s`` may continue."""
        return self.deadline_s is None or spent_s < self.deadline_s

"""Exception hierarchy for the whole reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch the
library's failures without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """The SHC catalog JSON is malformed or inconsistent."""


class CoderError(ReproError):
    """A value could not be encoded to / decoded from HBase bytes."""


class HBaseError(ReproError):
    """Base class for errors raised by the HBase substrate."""


class NoSuchTableError(HBaseError):
    """The requested HBase table does not exist."""


class TableExistsError(HBaseError):
    """An HBase table with the requested name already exists."""


class RegionOfflineError(HBaseError):
    """The region holding the requested row is not currently served."""


class SecurityError(ReproError):
    """Authentication or token management failure."""


class TokenExpiredError(SecurityError):
    """A delegation token was presented after its expiry."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL layer."""


class ParseError(SqlError):
    """The SQL text could not be parsed."""


class AnalysisError(SqlError):
    """The query referenced unknown tables/columns or had a type error."""


class EngineError(ReproError):
    """A failure inside the compute engine (scheduler, executors, shuffle)."""


class FatalTaskError(EngineError):
    """A task failed more times than the scheduler is willing to retry."""

"""Exception hierarchy for the whole reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch the
library's failures without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """The SHC catalog JSON is malformed or inconsistent."""


class CoderError(ReproError):
    """A value could not be encoded to / decoded from HBase bytes."""


class HBaseError(ReproError):
    """Base class for errors raised by the HBase substrate."""


class NoSuchTableError(HBaseError):
    """The requested HBase table does not exist."""


class TableExistsError(HBaseError):
    """An HBase table with the requested name already exists."""


class RegionOfflineError(HBaseError):
    """The region holding the requested row is not currently served."""


class RegionServerStoppedError(RegionOfflineError):
    """The region server owning the region has crashed or been stopped.

    A subclass of :class:`RegionOfflineError` because the client-side remedy
    is identical: invalidate the cached location and re-locate after the
    master reassigns the dead server's regions.
    """


class TransientRpcError(HBaseError):
    """A retryable RPC failure (connection reset, timeout, queue-full)."""


class FilterEvalError(HBaseError):
    """A pushed-down server-side filter failed while evaluating a row.

    The client degrades gracefully: it re-issues the scan unfiltered and
    applies the predicate client-side instead of failing the query.
    """


class OperationTimeoutError(HBaseError):
    """A client operation exceeded its simulated-time deadline across retries."""


class RetriesExhaustedError(HBaseError):
    """A client operation kept failing after every allowed retry."""


class OverloadedError(ReproError):
    """The serving front door shed a query instead of letting queues collapse.

    Structured so callers can build a well-behaved retry loop instead of
    parsing message text: ``reason`` names which guardrail fired
    (``queue_full`` / ``throttled`` / ``breaker_open`` / ``deadline`` /
    ``injected``) and ``retry_after_s`` is the *simulated* seconds after
    which a resubmission has a chance of being admitted -- the
    queue-based-load-leveling contract from docs/serving.md.
    """

    def __init__(self, message: str, reason: str = "overloaded",
                 retry_after_s: float = 0.0, tenant: "str | None" = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = float(retry_after_s)
        self.tenant = tenant


class SecurityError(ReproError):
    """Authentication or token management failure."""


class TokenExpiredError(SecurityError):
    """A delegation token was presented after its expiry."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL layer."""


class ParseError(SqlError):
    """The SQL text could not be parsed."""


class AnalysisError(SqlError):
    """The query referenced unknown tables/columns or had a type error."""


class EngineError(ReproError):
    """A failure inside the compute engine (scheduler, executors, shuffle)."""


class ShuffleFetchError(EngineError):
    """A reduce task failed to fetch a map output block (retryable)."""


class FatalTaskError(EngineError):
    """A task failed more times than the scheduler is willing to retry."""

"""A deterministic simulated clock.

The whole reproduction is a single-process discrete simulation; anything that
would depend on wall-clock time in the real system (token expiry, connection
cache eviction, timestamps on HBase cells) reads this clock instead.  Tests
advance it explicitly, which makes timing-dependent behaviour (e.g. the lazy
connection eviction policy of section V.B.1) deterministic.
"""

from __future__ import annotations

import threading


class SimClock:
    """A monotonically non-decreasing clock measured in float seconds.

    Thread-safe: concurrent queries submitted through a session's thread
    pool all advance the shared clock, so the read-modify-write in
    :meth:`advance` is guarded by a lock.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._lock = threading.Lock()
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (no-op if already past it)."""
        with self._lock:
            if timestamp > self._now:
                self._now = timestamp
            return self._now

    def now_millis(self) -> int:
        """Current time in integer milliseconds (HBase cell timestamps)."""
        return int(self._now * 1000)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"

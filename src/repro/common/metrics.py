"""Metrics registry used across the stack.

Region servers meter bytes scanned/returned and RPC counts, the engine meters
shuffle bytes, task counts and peak materialised memory, and coders meter
encode/decode work.  The benchmark harness reads one registry per query run,
so every reported number in EXPERIMENTS.md is mechanically derived from work
actually performed, never hard-coded.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class MetricsRegistry:
    """A named bag of float counters and gauges.

    Counters only accumulate (:meth:`incr`); gauges track a maximum
    (:meth:`record_peak`), which is how peak memory is metered.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._peaks: Dict[str, float] = defaultdict(float)

    # -- counters ---------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name``."""
        return self._counters.get(name, default)

    # -- peak gauges ------------------------------------------------------
    def record_peak(self, name: str, value: float) -> None:
        """Record ``value`` for gauge ``name`` keeping only the maximum seen."""
        if value > self._peaks[name]:
            self._peaks[name] = value

    def peak(self, name: str, default: float = 0.0) -> float:
        """Maximum value recorded for gauge ``name``."""
        return self._peaks.get(name, default)

    # -- plumbing ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s counters and peaks into this registry."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, value in other._peaks.items():
            self.record_peak(name, value)

    def reset(self) -> None:
        """Zero every counter and gauge."""
        self._counters.clear()
        self._peaks.clear()

    def snapshot(self) -> Mapping[str, float]:
        """An immutable view of all counters (peaks are prefixed ``peak.``)."""
        out = dict(self._counters)
        out.update({f"peak.{k}": v for k, v in self._peaks.items()})
        return out

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self.snapshot().items())

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self.snapshot().items()))
        return f"MetricsRegistry({body})"


class CostLedger:
    """Accumulates simulated seconds + counters for one unit of work.

    Every HBase client/server operation and every engine operator charges the
    ledger it is handed; the scheduler turns a task's ledger into that task's
    duration.  Ledgers also carry a :class:`MetricsRegistry` so per-query
    metrics (bytes scanned, RPCs, shuffle volume) fall out of the same pass.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self.seconds: float = 0.0
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def charge(self, seconds: float, counter: str | None = None, amount: float = 1.0) -> None:
        """Add ``seconds`` of simulated work, optionally bumping a counter."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.seconds += seconds
        if counter is not None:
            self.metrics.incr(counter, amount)

    def count(self, counter: str, amount: float = 1.0) -> None:
        """Bump a counter without charging time."""
        self.metrics.incr(counter, amount)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's time and counters into this one."""
        self.seconds += other.seconds
        self.metrics.merge(other.metrics)

    def __repr__(self) -> str:
        return f"CostLedger(seconds={self.seconds:.6f})"

"""Metrics registry used across the stack.

Region servers meter bytes scanned/returned and RPC counts, the engine meters
shuffle bytes, task counts and peak materialised memory, and coders meter
encode/decode work.  The benchmark harness reads one registry per query run,
so every reported number in EXPERIMENTS.md is mechanically derived from work
actually performed, never hard-coded.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class MetricsRegistry:
    """A named bag of float counters and gauges.

    Counters only accumulate (:meth:`incr`); gauges track a maximum
    (:meth:`record_peak`), which is how peak memory is metered.

    Thread-safe: a registry may be shared by concurrently running tasks
    (the HBase cluster's registry is hit from every executor thread), so
    read-modify-write on the underlying dicts happens under a lock.  Merging
    snapshots the source registry first, so two registries never need to be
    locked at once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = defaultdict(float)
        self._peaks: Dict[str, float] = defaultdict(float)

    # -- counters ---------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name``."""
        with self._lock:
            self._counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name``."""
        with self._lock:
            return self._counters.get(name, default)

    # -- peak gauges ------------------------------------------------------
    def record_peak(self, name: str, value: float) -> None:
        """Record ``value`` for gauge ``name`` keeping only the maximum seen."""
        with self._lock:
            if value > self._peaks[name]:
                self._peaks[name] = value

    def peak(self, name: str, default: float = 0.0) -> float:
        """Maximum value recorded for gauge ``name``."""
        with self._lock:
            return self._peaks.get(name, default)

    # -- plumbing ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s counters and peaks into this registry."""
        with other._lock:
            counters = dict(other._counters)
            peaks = dict(other._peaks)
        with self._lock:
            for name, value in counters.items():
                self._counters[name] += value
            for name, value in peaks.items():
                if value > self._peaks[name]:
                    self._peaks[name] = value

    def reset(self) -> None:
        """Zero every counter and gauge."""
        with self._lock:
            self._counters.clear()
            self._peaks.clear()

    def snapshot(self) -> Mapping[str, float]:
        """An immutable view of all counters (peaks are prefixed ``peak.``)."""
        with self._lock:
            out = dict(self._counters)
            out.update({f"peak.{k}": v for k, v in self._peaks.items()})
        return out

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self.snapshot().items())

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self.snapshot().items()))
        return f"MetricsRegistry({body})"


class CostLedger:
    """Accumulates simulated seconds + counters for one unit of work.

    Every HBase client/server operation and every engine operator charges the
    ledger it is handed; the scheduler turns a task's ledger into that task's
    duration.  Ledgers also carry a :class:`MetricsRegistry` so per-query
    metrics (bytes scanned, RPCs, shuffle volume) fall out of the same pass.

    A ledger is mostly owned by one task, but shared-state charges cross
    threads -- a region server billing each writer for flushing the bytes it
    contributed, say -- so the running total is updated under a lock.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self.seconds: float = 0.0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: trace span of the task attempt this ledger belongs to, set by the
        #: scheduler when tracing is enabled.  Lets code that only sees a
        #: ledger (the HBase client's retry decorator) record trace events
        #: without threading a span through every call signature.
        self.trace_span = None
        #: simulated seconds the work unit already spent queued at the
        #: serving front door before it started running.  Client operation
        #: deadlines (``hbase.client.operation.timeout``) count this wait
        #: against their budget -- a query that sat in the admission queue
        #: has less time left for attempts and backoff (docs/serving.md).
        self.queued_s: float = 0.0

    def charge(self, seconds: float, counter: str | None = None, amount: float = 1.0) -> None:
        """Add ``seconds`` of simulated work, optionally bumping a counter."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        with self._lock:
            self.seconds += seconds
        if counter is not None:
            self.metrics.incr(counter, amount)

    def count(self, counter: str, amount: float = 1.0) -> None:
        """Bump a counter without charging time."""
        self.metrics.incr(counter, amount)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's time and counters into this one."""
        with self._lock:
            self.seconds += other.seconds
        self.metrics.merge(other.metrics)

    def __repr__(self) -> str:
        return f"CostLedger(seconds={self.seconds:.6f})"

"""SHC's connection cache (section V.B.1).

``ConnectionFactory.create_connection`` is heavyweight (ZooKeeper round
trips, meta cache warm-up), so SHC keeps a pool keyed by the connection
configuration.  Entries carry a reference count and the timestamp at which
the count last dropped to zero; a housekeeping pass lazily evicts entries
that have been idle longer than ``connectionCloseDelay`` (10 minutes by
default).  Cache hits skip the setup cost entirely -- the difference is
metered and shows up in the ablation benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.cost import CostModel
from repro.common.metrics import CostLedger
from repro.common.simclock import SimClock
from repro.hbase.client import Configuration, Connection, ConnectionFactory
from repro.hbase.security import UserGroupInformation

DEFAULT_CLOSE_DELAY_S = 600.0  # the paper's 10-minute default


def _cache_key(conf: Configuration) -> str:
    """Cache key: cluster + client host (one JVM-local cache per executor)."""
    host = conf.get(Configuration.CLIENT_HOST, "client")
    return f"{conf.cluster_key()}|{host}"


@dataclass
class _CacheEntry:
    connection: Connection
    refcount: int = 0
    idle_since: Optional[float] = None


class SHCConnectionCache:
    """A reference-counted connection pool with lazy eviction.

    Thread-safe: with the parallel stage runner, every executor-slot thread
    acquires and releases pooled connections concurrently, so the entry map
    and the per-entry refcounts mutate only under the cache lock.  The lock
    also closes the check-then-create race -- two tasks missing on the same
    key would otherwise both pay connection setup and leak one connection.
    """

    def __init__(self, close_delay_s: float = DEFAULT_CLOSE_DELAY_S) -> None:
        self.close_delay_s = close_delay_s
        self._lock = threading.RLock()
        self._entries: Dict[str, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def acquire(
        self,
        conf: Configuration,
        clock: SimClock,
        cost: CostModel,
        ledger: Optional[CostLedger] = None,
        ugi: Optional[UserGroupInformation] = None,
    ) -> Connection:
        """Get a pooled connection, creating (and charging for) one on miss."""
        key = _cache_key(conf)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not entry.connection.closed:
                self.hits += 1
                entry.refcount += 1
                entry.idle_since = None
                if ugi is not None:
                    entry.connection.ugi = ugi
                return entry.connection
            self.misses += 1
            if ledger is not None:
                ledger.charge(cost.connection_setup_s, "shc.connection_setups")
            connection = ConnectionFactory.create_connection(conf, ugi)
            self._entries[key] = _CacheEntry(connection, refcount=1)
            return connection

    def release(self, conf: Configuration, clock: SimClock) -> None:
        """Drop one reference; idle connections become eviction candidates."""
        with self._lock:
            entry = self._entries.get(_cache_key(conf))
            if entry is None:
                return
            entry.refcount = max(0, entry.refcount - 1)
            if entry.refcount == 0:
                entry.idle_since = clock.now()

    def housekeeping(self, clock: SimClock) -> int:
        """The lazy deletion pass; returns how many connections were closed."""
        now = clock.now()
        evicted = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                if (
                    entry.refcount == 0
                    and entry.idle_since is not None
                    and now - entry.idle_since >= self.close_delay_s
                ):
                    entry.connection.close()
                    del self._entries[key]
                    evicted += 1
        return evicted

    def size(self) -> int:
        with self._lock:
            return len(self._entries)

    def active_refcount(self) -> int:
        """Total outstanding references across all pooled connections."""
        with self._lock:
            return sum(entry.refcount for entry in self._entries.values())

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                entry.connection.close()
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: process-wide cache instance used by HBaseRelation (tests may swap it)
DEFAULT_CONNECTION_CACHE = SHCConnectionCache()

"""RDD-level HBase operations (the ``HBaseContext`` of the hbase-spark module).

Section III.C contrasts SHC's DataFrame-level design with the community
connector's "rich support at the RDD level"; this module provides that lower
level too: ``bulk_put`` / ``bulk_get`` / ``bulk_delete`` / ``foreach_partition``
run user functions against HBase with a pooled connection per executor, so
programs that don't fit the relational model can still use the same caching
and cost-metered client.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.core.conncache import DEFAULT_CONNECTION_CACHE
from repro.hbase.cell import Cell
from repro.hbase.client import Configuration, Delete, Get, Put, Result
from repro.hbase.cluster import get_cluster
from repro.hbase.hfile import StoreFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD
    from repro.sql.session import SparkSession

BULK_BATCH_SIZE = 500


class HBaseContext:
    """Executor-side HBase access for RDD programs."""

    def __init__(self, session: "SparkSession", quorum: str) -> None:
        self.session = session
        self.quorum = quorum
        self.cluster = get_cluster(quorum)
        self.connection_cache = DEFAULT_CONNECTION_CACHE

    # -- connection plumbing ------------------------------------------------
    def _acquire(self, task_ctx):
        conf = Configuration({
            Configuration.QUORUM: self.quorum,
            Configuration.CLIENT_HOST: task_ctx.host,
        })
        return self.connection_cache.acquire(
            conf, self.cluster.clock, self.session.cost, task_ctx.ledger
        ), conf

    def _release(self, conf) -> None:
        self.connection_cache.release(conf, self.cluster.clock)

    # -- bulk writes ------------------------------------------------------------
    def bulk_put(self, rdd: "RDD", table_name: str,
                 to_put: Callable[[object], Put]) -> int:
        """Apply ``to_put`` to every element and write the Puts; returns count."""
        def write_partition(rows, task_ctx):
            connection, conf = self._acquire(task_ctx)
            try:
                table = connection.get_table(table_name)
                batch: List[Put] = []
                written = 0
                for row in rows:
                    batch.append(to_put(row))
                    written += 1
                    if len(batch) >= BULK_BATCH_SIZE:
                        table.put(batch, task_ctx.ledger)
                        batch = []
                if batch:
                    table.put(batch, task_ctx.ledger)
                yield written
            finally:
                self._release(conf)

        scheduler = self.session.new_scheduler()
        return sum(scheduler.collect(rdd.map_partitions(write_partition)))

    def bulk_delete(self, rdd: "RDD", table_name: str,
                    to_delete: Callable[[object], Delete]) -> int:
        """Apply ``to_delete`` to every element; returns deletes issued."""
        def delete_partition(rows, task_ctx):
            connection, conf = self._acquire(task_ctx)
            try:
                table = connection.get_table(table_name)
                deleted = 0
                for row in rows:
                    table.delete(to_delete(row), task_ctx.ledger)
                    deleted += 1
                yield deleted
            finally:
                self._release(conf)

        scheduler = self.session.new_scheduler()
        return sum(scheduler.collect(rdd.map_partitions(delete_partition)))

    # -- bulk reads ----------------------------------------------------------------
    def bulk_get(self, rdd: "RDD", table_name: str,
                 to_get: Callable[[object], Get],
                 convert: Optional[Callable[[Result], object]] = None) -> "RDD":
        """Lazy: returns an RDD of (converted) Results, one per input element.

        Gets are batched per partition into multi-get RPCs, like the
        hbase-spark ``bulkGet``.
        """
        def get_partition(rows, task_ctx):
            connection, conf = self._acquire(task_ctx)
            try:
                table = connection.get_table(table_name)
                pending = [to_get(row) for row in rows]
                for start in range(0, len(pending), BULK_BATCH_SIZE):
                    chunk = pending[start:start + BULK_BATCH_SIZE]
                    for result in table.bulk_get(chunk, task_ctx.ledger):
                        yield convert(result) if convert is not None else result
            finally:
                self._release(conf)

        return rdd.map_partitions(get_partition)

    def bulk_load(self, rdd: "RDD", table_name: str,
                  to_cells: Callable[[object], Sequence[Cell]]) -> int:
        """HFile bulk load: write store files directly, bypassing WAL+memstore.

        Mirrors HBase's ``LoadIncrementalHFiles``: each task encodes its rows
        into cells, groups them by target region, and the completed store
        files are atomically adopted by the regions.  Much cheaper than Puts
        (no WAL sync, no memstore churn) but without their durability
        guarantees mid-flight -- exactly the real trade-off.
        """
        cluster = self.cluster
        locations = cluster.region_locations(table_name)

        def load_partition(rows, task_ctx):
            cells: List[Cell] = []
            for row in rows:
                cells.extend(to_cells(row))
            by_region: dict = {}
            for cell in cells:
                for location in locations:
                    region = cluster.get_region(location.region_name)
                    if region is not None and region.contains_row(cell.row):
                        by_region.setdefault(location.region_name, []).append(cell)
                        break
            loaded = 0
            for region_name, region_cells in by_region.items():
                region = cluster.get_region(region_name)
                by_family: dict = {}
                for cell in region_cells:
                    by_family.setdefault(cell.family, []).append(cell)
                for family, group in by_family.items():
                    store_file = StoreFile(group)
                    region.stores[family].files.append(store_file)
                    # sequential HFile write: no WAL sync, no memstore
                    task_ctx.ledger.charge(
                        store_file.size_bytes / self.session.cost.write_bytes_per_sec,
                        "hbase.bulkload_bytes", store_file.size_bytes,
                    )
                loaded += len(region_cells)
            yield loaded

        scheduler = self.session.new_scheduler()
        return sum(scheduler.collect(rdd.map_partitions(load_partition)))

    # -- arbitrary partition-level access -------------------------------------------
    def foreach_partition(self, rdd: "RDD",
                          fn: Callable[[Iterable[object], object], None]) -> None:
        """Run ``fn(rows, table_accessor)`` once per partition (side effects)."""
        def apply(rows, task_ctx):
            connection, conf = self._acquire(task_ctx)
            try:
                fn(rows, connection)
                return iter(())
            finally:
                self._release(conf)

        scheduler = self.session.new_scheduler()
        scheduler.collect(rdd.map_partitions(apply))

    def map_partitions(self, rdd: "RDD",
                       fn: Callable[[Iterable[object], object], Iterable[object]]) -> "RDD":
        """Lazy: transform each partition with connection access."""
        def apply(rows, task_ctx):
            connection, conf = self._acquire(task_ctx)
            try:
                yield from fn(rows, connection)
            finally:
                self._release(conf)

        return rdd.map_partitions(apply)

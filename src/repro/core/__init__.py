"""SHC -- the Spark-HBase Connector (the paper's primary contribution).

The public surface mirrors the open-source connector:

- :class:`HBaseTableCatalog` -- the JSON data model mapping an HBase table
  (row key, column families, qualifiers) to a relational schema (section IV);
- coders (``PrimitiveType``, ``Phoenix``, ``Avro``, plus custom registration)
  encoding typed values to HBase byte arrays (section IV.B);
- :class:`HBaseRelation` -- the Data Source API plug-in with partition
  pruning, column pruning, selective predicate pushdown, data locality and
  operator fusion (sections V-VI);
- :class:`SHCConnectionCache` and :class:`SHCCredentialsManager` -- the
  caching layer (section V.B).

Registering the provider happens on import: ``DEFAULT_FORMAT`` (the full
Spark class name from the paper's listings) and the ``"shc"`` shorthand.
"""

from repro.core.catalog import HBaseSparkConf, HBaseTableCatalog
from repro.core.coders import AvroCoder, PhoenixCoder, PrimitiveTypeCoder, get_coder, register_coder
from repro.core.conncache import SHCConnectionCache
from repro.core.credentials import SHCCredentialsManager
from repro.core.hbase_context import HBaseContext
from repro.core.relation import DEFAULT_FORMAT, HBaseRelation, HBaseRelationProvider

__all__ = [
    "HBaseTableCatalog",
    "HBaseSparkConf",
    "PrimitiveTypeCoder",
    "PhoenixCoder",
    "AvroCoder",
    "get_coder",
    "register_coder",
    "HBaseRelation",
    "HBaseRelationProvider",
    "DEFAULT_FORMAT",
    "SHCConnectionCache",
    "HBaseContext",
    "SHCCredentialsManager",
]

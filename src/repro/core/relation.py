"""HBaseRelation: the Data Source API plug-in (the paper's core design).

Implements the engine-facing contract -- ``schema``, ``size_in_bytes``,
``build_scan(required_columns, filters)``, ``unhandled_filters``, ``insert``
-- on top of the catalog, the coders, the range algebra, the pushdown
compiler, partition pruning/fusion, the connection cache and the credentials
manager.  Each optimization has an independent toggle so the ablation
benchmarks can isolate its contribution.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, TYPE_CHECKING

from repro.common.errors import CatalogError, HBaseError
from repro.core.catalog import HBaseSparkConf, HBaseTableCatalog
from repro.core.coders import get_coder
from repro.core.conncache import DEFAULT_CONNECTION_CACHE
from repro.core.credentials import DEFAULT_CREDENTIALS_MANAGER
from repro.core.partitions import build_partitions, build_replica_partitions
from repro.core.pushdown import PushdownCompiler
from repro.core.ranges import FULL_SCAN, RangeBuilder
from repro.core.scan_rdd import HBaseTableScanRDD
from repro.hbase.client import Configuration, ConnectionFactory
from repro.hbase.cluster import get_cluster
from repro.hbase.region import TimeRange
from repro.hbase.security import KeytabStore, UserGroupInformation
from repro.sql.sources import BaseRelation, Filter as SourceFilter, RelationProvider, register_provider
from repro.sql.types import StructType

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD
    from repro.engine.scheduler import TaskContext
    from repro.sql.physical import ExecContext

#: the full Spark format name from the paper's code listings
DEFAULT_FORMAT = "org.apache.spark.sql.execution.datasources.hbase"
QUORUM_OPTION = Configuration.QUORUM

_TRUE = ("true", "1", "yes", "on", True)


class HBaseRelation(BaseRelation):
    """One logical binding of a catalog to a physical HBase table."""

    def __init__(self, options: Dict[str, object], session) -> None:
        self.options = dict(options)
        self.session = session
        catalog_json = self.options.get(HBaseTableCatalog.tableCatalog)
        if not catalog_json:
            raise CatalogError(
                f'HBase relations need the {HBaseTableCatalog.tableCatalog!r} option'
            )
        self.catalog = HBaseTableCatalog.from_json(catalog_json)
        self.coder = get_coder(self.catalog.table_coder)
        self.field_coders = self._resolve_field_coders()
        quorum = self.options.get(QUORUM_OPTION)
        if not quorum:
            raise CatalogError(f"HBase relations need the {QUORUM_OPTION!r} option")
        self.quorum = str(quorum)
        self.cluster = get_cluster(self.quorum)
        self._schema = self._resolve_schema()
        self.connection_cache = DEFAULT_CONNECTION_CACHE
        self.credentials_manager = DEFAULT_CREDENTIALS_MANAGER

    def _resolve_field_coders(self):
        """Per-column coders: Avro-schema columns override the table coder.

        The catalog's ``"avro": "<ref>"`` names a read-option key holding the
        schema JSON (paper Code 3's ``avroSchema``); inline JSON also works.
        """
        from repro.core.coders.avro import AvroRecordCoder

        coders = {}
        for column in self.catalog.columns.values():
            if column.avro_schema is None:
                coders[column.name] = self.coder
                continue
            reference = column.avro_schema
            schema_json = self.options.get(reference, reference)
            coders[column.name] = AvroRecordCoder(str(schema_json))
        return coders

    def _resolve_schema(self) -> StructType:
        from repro.core.coders.avro import AvroRecordCoder

        schema = StructType()
        for field in self.catalog.sql_schema():
            coder = self.field_coders[field.name]
            if isinstance(coder, AvroRecordCoder):
                schema = schema.add(field.name, coder.sql_type())
            else:
                schema = schema.add(field.name, field.dtype)
        return schema

    def field_coder(self, column_name: str):
        """The coder for one column (Avro-schema columns differ)."""
        return self.field_coders[column_name]

    # -- feature toggles -------------------------------------------------------
    def _flag(self, key: str, default: bool = True) -> bool:
        value = self.options.get(key)
        if value is None:
            value = self.session.conf.get(key)
        if value is None:
            return default
        return str(value).lower() in ("true", "1", "yes", "on")

    @property
    def pushdown_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.PUSHDOWN)

    @property
    def pruning_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.PRUNING)

    @property
    def column_pruning_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.COLUMN_PRUNING)

    @property
    def locality_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.LOCALITY)

    @property
    def fusion_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.FUSION)

    @property
    def connection_cache_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.CONNECTION_CACHE)

    @property
    def prune_all_dimensions(self) -> bool:
        return self._flag(HBaseSparkConf.PRUNE_ALL_DIMENSIONS, default=False)

    @property
    def security_enabled(self) -> bool:
        return self._flag(HBaseSparkConf.CREDENTIALS_ENABLED, default=False)

    @property
    def replica_read_enabled(self) -> bool:
        """``hbase.read.replica``: timeline-consistent replica routing.

        Off by default; even when on, routing engages only if the cluster
        has a ReplicationManager attached, so the flag alone never changes
        a ledger.
        """
        return self._flag(HBaseSparkConf.READ_REPLICA, default=False)

    def replica_staleness_s(self) -> float:
        """Max replication lag (simulated s) a replica read may serve behind.

        Zero (or negative) forces every read back to the primary -- the
        strict-consistency end of the timeline knob.
        """
        value = self.options.get(HBaseSparkConf.REPLICA_STALENESS)
        if value is None:
            value = self.session.conf.get(HBaseSparkConf.REPLICA_STALENESS)
        return float(value) if value is not None else 5.0

    # -- BaseRelation contract ----------------------------------------------------
    @property
    def schema(self) -> StructType:
        return self._schema

    def size_in_bytes(self) -> Optional[int]:
        """SHC understands the storage: real region sizes from HBase meta."""
        try:
            return self.cluster.table_size_bytes(self.catalog.qualified_name)
        except HBaseError:
            return None

    def unhandled_filters(self, filters: Sequence[SourceFilter]) -> Sequence[SourceFilter]:
        if not self.pushdown_enabled:
            return list(filters)
        compiled = PushdownCompiler(self.catalog, self.coder,
                                    self.field_coders).compile(filters)
        unhandled = list(compiled.unhandled)
        if not self.pruning_enabled:
            # row-key predicates were only "handled" because pruning would
            # restrict the scan; with pruning off Spark must re-apply them
            unhandled.extend(compiled.handled_by_pruning or [])
        return unhandled

    def build_scan(self, required_columns: Sequence[str],
                   filters: Sequence[SourceFilter]) -> "RDD":
        if self.pruning_enabled:
            builder = RangeBuilder(self.catalog, self.coder,
                                   self.prune_all_dimensions)
            ranges = builder.ranges_for_filters(filters)
        else:
            ranges = list(FULL_SCAN)
        hbase_filter = None
        filter_columns = set()
        if self.pushdown_enabled:
            compiled = PushdownCompiler(self.catalog, self.coder,
                                        self.field_coders).compile(filters)
            hbase_filter = compiled.hbase_filter
            if hbase_filter is not None:
                filter_columns = _filter_columns(hbase_filter)
        locations = self.cluster.region_locations(self.catalog.qualified_name)
        routing = None
        replication = self.cluster.replication
        if self.replica_read_enabled and replication is not None:
            partitions, routing = self._build_replica_partitions(
                replication, locations, ranges)
        else:
            partitions = build_partitions(locations, ranges,
                                          self.fusion_enabled)
        rdd = HBaseTableScanRDD(self, required_columns, hbase_filter,
                                partitions, filter_columns)
        #: table-wide region count before pruning, so EXPLAIN ANALYZE can
        #: report scanned vs. pruned regions for this scan
        rdd.regions_total = len(locations)
        #: replica routing decisions (None when routing did not engage), so
        #: EXPLAIN ANALYZE and the metrics can report them per query
        rdd.replica_routing = routing
        return rdd

    def _build_replica_partitions(self, replication, locations, ranges):
        """Route scan work across replica hosts (docs/replication.md)."""
        staleness = self.replica_staleness_s()
        candidates = {}
        stale_excluded = 0
        primary_fallbacks = 0
        for location in locations:
            cands, excluded = replication.read_candidates(location, staleness)
            candidates[location.region_name] = cands
            stale_excluded += excluded
            if excluded and len(cands) == 1:
                # replicas exist but none qualified: this region's reads
                # fell back to the primary
                primary_fallbacks += 1
        partitions, routing = build_replica_partitions(
            locations, ranges, candidates,
            split_keys=self._split_keys, estimate_bytes=self._range_bytes)
        routing["stale_excluded"] = stale_excluded
        routing["primary_fallbacks"] = primary_fallbacks
        return partitions, routing

    def _split_keys(self, location, lo: bytes, hi):
        """Store-file block start keys strictly inside ``(lo, hi)``."""
        region = self.cluster.get_region(location.region_name)
        if region is None:
            return []
        keys = {
            key
            for store in region.stores.values()
            for store_file in store.files
            for key in store_file.block_start_keys()
            if key > lo and (hi is None or key < hi)
        }
        return sorted(keys)

    def _range_bytes(self, location, scan_range) -> int:
        """I/O bytes one clipped range touches (for piece balancing)."""
        region = self.cluster.get_region(location.region_name)
        if region is None:
            return 0
        return region.io_bytes_for_range(scan_range.start, scan_range.stop)

    def replica_failover_location(self, old_location, row: bytes):
        """Warm location a crashed-primary scan should resume at (or None)."""
        replication = self.cluster.replication
        if replication is None or not self.replica_read_enabled:
            return None
        return replication.failover_location(
            self.catalog.qualified_name, old_location, row)

    def insert(self, rdd: "RDD", schema: StructType, ctx: "ExecContext",
               overwrite: bool = False) -> int:
        from repro.core.writer import insert_into_hbase

        return insert_into_hbase(self, rdd, schema, ctx, overwrite)

    # -- query-context options (paper Code 5) --------------------------------------
    def time_range(self) -> Optional[TimeRange]:
        timestamp = self.options.get(HBaseSparkConf.TIMESTAMP)
        if timestamp is not None:
            ts = int(timestamp)
            return TimeRange(ts, ts + 1)
        min_ts = self.options.get(HBaseSparkConf.MIN_TIMESTAMP)
        max_ts = self.options.get(HBaseSparkConf.MAX_TIMESTAMP)
        if min_ts is None and max_ts is None:
            return None
        return TimeRange(
            int(min_ts) if min_ts is not None else 0,
            int(max_ts) if max_ts is not None else 2**63 - 1,
        )

    def max_versions(self) -> int:
        value = self.options.get(HBaseSparkConf.MAX_VERSIONS)
        return int(value) if value is not None else 1

    def scan_caching(self) -> Optional[int]:
        """Rows per scan RPC (``hbase.spark.query.cachedrows``); None = default."""
        value = self.options.get(HBaseSparkConf.CACHED_ROWS)
        if value is None:
            value = self.session.conf.get(HBaseSparkConf.CACHED_ROWS)
        return int(value) if value is not None else None

    # -- connections & security ------------------------------------------------------
    def decode_cell_cost(self) -> float:
        cost = self.session.cost
        return cost.decode_cell_s * cost.coder_factor(self.coder.name)

    def encode_cell_cost(self) -> float:
        cost = self.session.cost
        return cost.encode_cell_s * cost.coder_factor(self.coder.name)

    def _ugi(self, ledger) -> Optional[UserGroupInformation]:
        if not self.cluster.secure:
            return None
        if not self.security_enabled:
            raise HBaseError(
                f"cluster {self.cluster.name} is secure; set "
                f"{HBaseSparkConf.CREDENTIALS_ENABLED}=true and configure "
                f"principal/keytab"
            )
        principal = self.options.get(HBaseSparkConf.PRINCIPAL) \
            or self.session.conf.get(HBaseSparkConf.PRINCIPAL)
        keytab_path = self.options.get(HBaseSparkConf.KEYTAB) \
            or self.session.conf.get(HBaseSparkConf.KEYTAB)
        if not principal or not keytab_path:
            raise HBaseError("secure access needs spark.yarn.principal and .keytab")
        keytab = KeytabStore.load(str(keytab_path))
        ugi = UserGroupInformation(str(principal))
        token = self.credentials_manager.get_token_for_cluster(
            self.cluster, keytab, ledger
        )
        self.credentials_manager.apply_to_ugi(ugi, token)
        return ugi

    def connection_conf(self, host: str) -> Configuration:
        """The connection configuration for a task running on ``host``.

        The client host is part of the cache key (one JVM-local pool per
        executor), so acquire and release must build it identically --
        concurrent tasks on different hosts each hit their own pooled
        connection.
        """
        conf = Configuration({
            Configuration.QUORUM: self.quorum,
            Configuration.CLIENT_HOST: host,
        })
        # retry-policy knobs flow from read options / session conf into the
        # client, like hbase-site properties on an executor's classpath
        for key in (Configuration.RETRIES_NUMBER, Configuration.CLIENT_PAUSE,
                    Configuration.CLIENT_PAUSE_MAX,
                    Configuration.OPERATION_TIMEOUT):
            value = self.options.get(key)
            if value is None:
                value = self.session.conf.get(key)
            if value is not None:
                conf[key] = value
        return conf

    def acquire_connection(self, ctx: "TaskContext"):
        """Per-task connection acquisition (executor-local cache keying)."""
        conf = self.connection_conf(ctx.host)
        ugi = self._ugi(ctx.ledger)
        if self.connection_cache_enabled:
            delay = self.options.get(HBaseSparkConf.CONNECTION_CLOSE_DELAY) \
                or self.session.conf.get(HBaseSparkConf.CONNECTION_CLOSE_DELAY)
            if delay is not None:
                self.connection_cache.close_delay_s = float(delay)
            return self.connection_cache.acquire(
                conf, self.cluster.clock, self.session.cost, ctx.ledger, ugi
            )
        ctx.ledger.charge(self.session.cost.connection_setup_s,
                          "shc.connection_setups")
        return ConnectionFactory.create_connection(conf, ugi)

    def release_connection(self, ctx: "TaskContext") -> None:
        if self.connection_cache_enabled:
            self.connection_cache.release(
                self.connection_conf(ctx.host), self.cluster.clock
            )

    def __repr__(self) -> str:
        return f"HBaseRelation({self.catalog.name} @ {self.quorum})"


def _filter_columns(hbase_filter) -> set:
    """Every (family, qualifier) a server-side filter tree reads."""
    from repro.hbase.filters import FilterList, SingleColumnValueFilter

    out = set()
    stack = [hbase_filter]
    while stack:
        node = stack.pop()
        if isinstance(node, SingleColumnValueFilter):
            out.add((node.family, node.qualifier))
        elif isinstance(node, FilterList):
            stack.extend(node.filters)
    return out


class HBaseRelationProvider(RelationProvider):
    """The DataSource registration for SHC."""

    def create_relation(self, options: Dict[str, str], session) -> HBaseRelation:
        return HBaseRelation(options, session)


register_provider(DEFAULT_FORMAT, HBaseRelationProvider())
register_provider("shc", HBaseRelationProvider())

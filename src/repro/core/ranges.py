"""Row-key range algebra: predicates -> merged HBase scan ranges.

This is the partition-pruning engine of sections VI.A.1 and VI.A.5: source
filters over row-key dimensions are compiled into byte-space ranges (through
the table coder, which knows where its encoding's byte order diverges from
the value order), then conjunctions are *intersected* and disjunctions
*unioned*, with overlapping ranges merged over sorted bounds exactly as the
paper describes (``t in [a,b] ∩ [c,d] -> [c,b]``, ``[a,b] ∪ [c,d] -> [a,d]``).

Pruning is performed on the **first dimension** of composite keys (the
paper's shipping behaviour); the all-dimension extension the paper lists as
future work is implemented behind ``prune_all_dimensions=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.catalog import HBaseTableCatalog
from repro.core.coders.base import ByteRange, FieldCoder
from repro.core.keys import dimension_width, encode_key_dimension, prefix_successor
from repro.sql import sources as S


@dataclass(frozen=True)
class ScanRange:
    """A half-open row-key interval ``[start, stop)``.

    ``start=b""`` means "from the first row"; ``stop=None`` means "to the
    last".  ``point`` marks ranges that select exactly one *complete* row key
    -- those become ``Get``s instead of ``Scan``s (section VI.A.4).
    """

    start: bytes = b""
    stop: Optional[bytes] = None
    point: bool = False

    def is_empty(self) -> bool:
        return self.stop is not None and self.start >= self.stop

    def intersect(self, other: "ScanRange") -> Optional["ScanRange"]:
        start = max(self.start, other.start)
        if self.stop is None:
            stop = other.stop
        elif other.stop is None:
            stop = self.stop
        else:
            stop = min(self.stop, other.stop)
        merged = ScanRange(start, stop, self.point or other.point)
        return None if merged.is_empty() else merged

    def overlaps_region(self, region_start: bytes, region_end: bytes) -> bool:
        """Does this range touch region ``[region_start, region_end)``?"""
        if region_end and self.start >= region_end:
            return False
        if self.stop is not None and self.stop <= region_start:
            return False
        return True

    def clamp_to_region(self, region_start: bytes,
                        region_end: bytes) -> Optional["ScanRange"]:
        start = max(self.start, region_start)
        if region_end:
            stop = region_end if self.stop is None else min(self.stop, region_end)
        else:
            stop = self.stop
        clamped = ScanRange(start, stop, self.point)
        return None if clamped.is_empty() else clamped

    def __repr__(self) -> str:
        stop = "inf" if self.stop is None else self.stop.hex()
        marker = " point" if self.point else ""
        return f"ScanRange([{self.start.hex()}, {stop}){marker})"


FULL_SCAN: List[ScanRange] = [ScanRange()]


def merge_ranges(ranges: Sequence[ScanRange]) -> List[ScanRange]:
    """Union a set of ranges, merging overlaps/adjacency over sorted bounds."""
    live = [r for r in ranges if not r.is_empty()]
    if not live:
        return []
    live.sort(key=lambda r: r.start)
    merged: List[ScanRange] = [live[0]]
    for current in live[1:]:
        last = merged[-1]
        if last.stop is None or current.start <= last.stop:
            if last.stop is None:
                stop = None
            elif current.stop is None:
                stop = None
            else:
                stop = max(last.stop, current.stop)
            keep_point = last.point and current.point and last.start == current.start \
                and last.stop == current.stop
            merged[-1] = ScanRange(last.start, stop, keep_point)
        else:
            merged.append(current)
    return merged


def intersect_range_lists(a: Sequence[ScanRange],
                          b: Sequence[ScanRange]) -> List[ScanRange]:
    """Pairwise intersection of two unions of ranges."""
    out: List[ScanRange] = []
    for left in a:
        for right in b:
            hit = left.intersect(right)
            if hit is not None:
                out.append(hit)
    return merge_ranges(out)


def _byte_range_to_scan_range(br: ByteRange, complete_key: bool) -> Optional[ScanRange]:
    """Prefix semantics: a first-dimension bound covers every key under it."""
    if br.lo is None:
        start: Optional[bytes] = b""
    elif br.lo_inclusive:
        start = br.lo
    else:
        start = prefix_successor(br.lo)
        if start is None:
            return None
    if br.hi is None:
        stop: Optional[bytes] = None
    elif br.hi_inclusive:
        stop = prefix_successor(br.hi)
    else:
        stop = br.hi
    point = complete_key and br.is_point()
    out = ScanRange(start, stop, point)
    return None if out.is_empty() else out


class RangeBuilder:
    """Compiles source filters into scan ranges for one catalog + coder."""

    def __init__(self, catalog: HBaseTableCatalog, coder: FieldCoder,
                 prune_all_dimensions: bool = False) -> None:
        self.catalog = catalog
        self.coder = coder
        self.prune_all_dimensions = prune_all_dimensions
        self._first_dim = catalog.row_key[0]
        self._single_dim_key = len(catalog.row_key) == 1

    def ranges_for_filters(self, filters: Sequence[S.Filter]) -> List[ScanRange]:
        """AND-combine the scan ranges of the given (conjunctive) filters."""
        current = list(FULL_SCAN)
        for flt in filters:
            ranges = self._ranges_for(flt)
            if ranges is None:
                continue  # this filter does not constrain the key
            current = intersect_range_lists(current, ranges)
            if not current:
                return []
        if self.prune_all_dimensions and len(self.catalog.row_key) > 1:
            refined = self._refine_with_leading_equalities(filters)
            if refined is not None:
                current = intersect_range_lists(current, refined)
        return current

    # -- single filter -> ranges (None = unconstrained) ----------------------
    def _ranges_for(self, flt: S.Filter) -> Optional[List[ScanRange]]:
        if isinstance(flt, S.And):
            left = self._ranges_for(flt.left)
            right = self._ranges_for(flt.right)
            if left is None:
                return right
            if right is None:
                return left
            return intersect_range_lists(left, right)
        if isinstance(flt, S.Or):
            left = self._ranges_for(flt.left)
            right = self._ranges_for(flt.right)
            if left is None or right is None:
                # one side is unconstrained: the OR covers the whole key space
                # (the paper's full-scan example in section VI.A.1)
                return None
            return merge_ranges(left + right)
        if isinstance(flt, S.In) and flt.attribute == self._first_dim:
            points: List[ScanRange] = []
            for value in flt.values:
                converted = self._comparison_ranges("=", value)
                if converted is None:
                    return None
                points.extend(converted)
            return merge_ranges(points)
        if isinstance(flt, S.EqualTo) and flt.attribute == self._first_dim:
            return self._comparison_ranges("=", flt.value)
        if isinstance(flt, S.GreaterThan) and flt.attribute == self._first_dim:
            return self._comparison_ranges(">", flt.value)
        if isinstance(flt, S.GreaterThanOrEqual) and flt.attribute == self._first_dim:
            return self._comparison_ranges(">=", flt.value)
        if isinstance(flt, S.LessThan) and flt.attribute == self._first_dim:
            return self._comparison_ranges("<", flt.value)
        if isinstance(flt, S.LessThanOrEqual) and flt.attribute == self._first_dim:
            return self._comparison_ranges("<=", flt.value)
        if isinstance(flt, S.StringStartsWith) and flt.attribute == self._first_dim:
            column = self.catalog.column(self._first_dim)
            if not self.coder.order_preserving(column.dtype):
                return None
            prefix = self.coder.encode(flt.prefix, column.dtype)
            return [ScanRange(prefix, prefix_successor(prefix))]
        return None

    def _comparison_ranges(self, op: str, value: object) -> Optional[List[ScanRange]]:
        column = self.catalog.column(self._first_dim)
        byte_ranges = self.coder.byte_ranges(op, value, column.dtype)
        if byte_ranges is None:
            return None
        out: List[ScanRange] = []
        for br in byte_ranges:
            # pad fixed-width dimensions the same way the writer does
            br = self._pad(br)
            converted = _byte_range_to_scan_range(br, self._single_dim_key)
            if converted is not None:
                out.append(converted)
        return merge_ranges(out)

    def _pad(self, br: ByteRange) -> ByteRange:
        if self._single_dim_key and self.catalog.column(self._first_dim).length is None:
            return br
        width = dimension_width(self.catalog, self.coder, self._first_dim)
        if width is None:
            return br
        lo = br.lo.ljust(width, b"\x00") if br.lo is not None else None
        hi = br.hi.ljust(width, b"\x00") if br.hi is not None else None
        # padding preserves point-ness only if both ends padded identically
        return ByteRange(lo, br.lo_inclusive, hi, br.hi_inclusive)

    # -- all-dimension extension (the paper's future work) -----------------------
    def _refine_with_leading_equalities(
        self, filters: Sequence[S.Filter]
    ) -> Optional[List[ScanRange]]:
        """Build a composite prefix from equality chains on leading dims.

        ``k1 = a AND k2 = b AND k3 > c`` prunes to the byte range of
        ``enc(a) + enc(b) + (enc(c), ...)`` instead of just ``enc(a)``'s
        prefix.  Only top-level conjunctive equality filters participate.
        """
        equalities: Dict[str, object] = {}
        for flt in _flatten_and(filters):
            if isinstance(flt, S.EqualTo) and flt.attribute in self.catalog.row_key:
                equalities[flt.attribute] = flt.value
        prefix = b""
        consumed = 0
        for name in self.catalog.row_key:
            if name not in equalities:
                break
            try:
                prefix += encode_key_dimension(self.catalog, self.coder, name,
                                               equalities[name])
            except Exception:  # mistyped literal: skip the refinement
                break
            consumed += 1
        if consumed == 0:
            return None
        if consumed == len(self.catalog.row_key):
            stop = prefix_successor(prefix)
            return [ScanRange(prefix, stop, point=True)]
        # a leading-equality prefix plus an optional range on the next dim
        next_dim = self.catalog.row_key[consumed]
        next_ranges = self._next_dim_ranges(filters, next_dim)
        if next_ranges is None:
            if consumed == 1:
                return None  # first-dimension pruning already covers this
            return [ScanRange(prefix, prefix_successor(prefix))]
        out = []
        for br in next_ranges:
            lo = prefix + (br.lo or b"")
            if br.lo is not None and not br.lo_inclusive:
                successor = prefix_successor(lo)
                if successor is None:
                    continue
                lo = successor
            if br.hi is None:
                hi = prefix_successor(prefix)
            elif br.hi_inclusive:
                hi = prefix_successor(prefix + br.hi)
            else:
                hi = prefix + br.hi
            candidate = ScanRange(lo, hi)
            if not candidate.is_empty():
                out.append(candidate)
        return merge_ranges(out) if out else [ScanRange(prefix, prefix_successor(prefix))]

    def _next_dim_ranges(self, filters: Sequence[S.Filter],
                         dim: str) -> Optional[List[ByteRange]]:
        column = self.catalog.column(dim)
        collected: Optional[List[ByteRange]] = None
        for flt in _flatten_and(filters):
            op = _simple_op(flt, dim)
            if op is None:
                continue
            ranges = self.coder.byte_ranges(op, flt.value, column.dtype)
            if ranges is None:
                continue
            collected = ranges if collected is None else collected + ranges
        return collected


def _flatten_and(filters: Sequence[S.Filter]) -> List[S.Filter]:
    out: List[S.Filter] = []
    stack = list(filters)
    while stack:
        flt = stack.pop()
        if isinstance(flt, S.And):
            stack.extend((flt.left, flt.right))
        else:
            out.append(flt)
    return out


def _simple_op(flt: S.Filter, attribute: str) -> Optional[str]:
    if not isinstance(flt, S.AttributeFilter) or flt.attribute != attribute:
        return None
    if isinstance(flt, S.EqualTo):
        return "="
    if isinstance(flt, S.GreaterThan):
        return ">"
    if isinstance(flt, S.GreaterThanOrEqual):
        return ">="
    if isinstance(flt, S.LessThan):
        return "<"
    if isinstance(flt, S.LessThanOrEqual):
        return "<="
    return None

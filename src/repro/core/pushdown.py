"""Selective predicate pushdown: source filters -> HBase server-side filters.

Implements the *rule-based* policy of section VI.A.3: predicates HBase
evaluates well become ``SingleColumnValueFilter``s (wrapped in AND/OR filter
lists); predicates that would force expensive whole-table work inside HBase
-- ``NOT IN``, negations, large IN lists -- are deliberately left to Spark's
second filtering layer.  The compiler reports which offered filters it fully
handled, which is exactly what ``unhandledFilters`` tells the engine so it
can skip redundant re-filtering (and re-apply only what it must).

Non-order-preserving encodings are handled like the PrimitiveType read path
(section IV.B.1): a numeric comparison is pre-processed into byte-monotone
segments and pushed as an OR of range filter lists, so no data is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.catalog import HBaseTableCatalog
from repro.core.coders.base import ByteRange, FieldCoder
from repro.hbase.filters import (
    CompareOp,
    Filter as HFilter,
    FilterList,
    FilterListOp,
    SingleColumnValueFilter,
)
from repro.sql import sources as S

#: IN lists longer than this are not worth building server-side filters for
MAX_PUSHED_IN_VALUES = 10


@dataclass
class CompiledPushdown:
    """Outcome of compiling one conjunctive filter set."""

    hbase_filter: Optional[HFilter]
    handled: List[S.Filter]
    unhandled: List[S.Filter]
    #: the subset of ``handled`` that is only correct because range pruning
    #: restricts the scan (first-dimension row-key predicates); if pruning is
    #: disabled these must be re-applied by the engine
    handled_by_pruning: List[S.Filter] = None


class PushdownCompiler:
    """Compiles source filters for one catalog + coder."""

    def __init__(self, catalog: HBaseTableCatalog, coder: FieldCoder,
                 field_coders: "dict | None" = None) -> None:
        self.catalog = catalog
        self.coder = coder
        self._field_coders = field_coders or {}

    def _coder_for(self, column_name: str) -> FieldCoder:
        return self._field_coders.get(column_name, self.coder)

    def compile(self, filters: Sequence[S.Filter]) -> CompiledPushdown:
        handled: List[S.Filter] = []
        unhandled: List[S.Filter] = []
        via_pruning: List[S.Filter] = []
        pushed: List[HFilter] = []
        for flt in filters:
            hfilter, fully, needs_pruning = self._compile_one(flt)
            if hfilter is not None:
                pushed.append(hfilter)
            if fully:
                handled.append(flt)
                if needs_pruning:
                    via_pruning.append(flt)
            else:
                unhandled.append(flt)
        combined: Optional[HFilter] = None
        if len(pushed) == 1:
            combined = pushed[0]
        elif pushed:
            combined = FilterList(FilterListOp.MUST_PASS_ALL, pushed)
        return CompiledPushdown(combined, handled, unhandled, via_pruning)

    # -- one filter -> (hbase filter or None, fully handled?, via pruning?) ----
    #
    # The third element marks "fully handled" claims that are only correct
    # because range pruning restricts the scan (row-key atoms compiled to no
    # server-side filter).  It must propagate through ANDs -- the claim
    # survives even when the other conjunct produced a filter -- and it
    # poisons ORs: pruning unions the branch ranges, so a branch whose
    # row-key atom the *other* branch does not constrain is NOT enforced
    # (``tag = 'a' OR (ts = 0 AND tag = 'b')`` scans everything).  Such an
    # OR is still pushed as a weakened superset filter but reported
    # not-fully-handled so the engine re-applies the exact predicate.
    def _compile_one(self, flt: S.Filter) -> Tuple[Optional[HFilter], bool, bool]:
        if isinstance(flt, S.And):
            left_f, left_ok, left_np = self._compile_one(flt.left)
            right_f, right_ok, right_np = self._compile_one(flt.right)
            parts = [f for f in (left_f, right_f) if f is not None]
            # pushing a *subset* of an AND is always safe (superset of rows)
            combined = None
            if len(parts) == 1:
                combined = parts[0]
            elif parts:
                combined = FilterList(FilterListOp.MUST_PASS_ALL, parts)
            return combined, left_ok and right_ok, left_np or right_np
        if isinstance(flt, S.Or):
            left_f, left_ok, left_np = self._compile_one(flt.left)
            right_f, right_ok, right_np = self._compile_one(flt.right)
            # an OR may only be pushed when BOTH branches compiled
            if left_f is None or right_f is None:
                return None, False, False
            fully = left_ok and right_ok and not (left_np or right_np)
            return FilterList(FilterListOp.MUST_PASS_ONE, [left_f, right_f]), \
                fully, False
        if isinstance(flt, S.Not):
            # the paper's policy: negations (NOT IN, !=) stay in Spark
            return None, False, False
        if isinstance(flt, S.In):
            return self._compile_in(flt)
        if isinstance(flt, S.IsNotNull):
            # a relational NULL is an absent cell; rows lacking the column are
            # dropped by any filter_if_missing SCVF, but standalone existence
            # checks stay in Spark (no native HBase filter for it).  Row-key
            # columns are present in every row, so the check is a tautology
            # there -- handled without pruning's help.
            return None, self._is_rowkey(flt.attribute), False
        if isinstance(flt, S.IsNull):
            return None, False, False
        if isinstance(flt, S.StringStartsWith):
            ok = self._is_first_dim_ordered(flt.attribute)
            return None, ok, ok
        if isinstance(flt, (S.EqualTo, S.GreaterThan, S.GreaterThanOrEqual,
                            S.LessThan, S.LessThanOrEqual)):
            return self._compile_comparison(flt)
        return None, False, False

    def _compile_comparison(self, flt: S.AttributeFilter) -> Tuple[Optional[HFilter], bool, bool]:
        name = flt.attribute
        op = _OP_FOR[type(flt)]
        if self._is_rowkey(name):
            # first-dimension predicates are fully handled by range pruning
            # (the scan never visits excluded rows); other dimensions are
            # re-applied by Spark
            if name == self.catalog.row_key[0]:
                column = self.catalog.column(name)
                exact = self.coder.byte_ranges(op, flt.value, column.dtype) is not None
                return None, exact, exact
            return None, False, False
        column = self.catalog.column(name)
        ranges = self._coder_for(name).byte_ranges(op, flt.value, column.dtype)
        if ranges is None:
            return None, False, False
        branches: List[HFilter] = []
        for br in ranges:
            branch = self._range_filter(column.family, column.qualifier, br)
            if branch is None:
                return None, False, False
            branches.append(branch)
        if not branches:
            return None, False, False
        if len(branches) == 1:
            return branches[0], True, False
        return FilterList(FilterListOp.MUST_PASS_ONE, branches), True, False

    def _compile_in(self, flt: S.In) -> Tuple[Optional[HFilter], bool, bool]:
        name = flt.attribute
        if self._is_rowkey(name):
            first = name == self.catalog.row_key[0]
            return None, first, first
        if len(flt.values) > MAX_PUSHED_IN_VALUES:
            # expensive point filters are not worth building server-side
            return None, False, False
        column = self.catalog.column(name)
        in_coder = self._coder_for(name)
        equals: List[HFilter] = []
        for v in flt.values:
            ranges = in_coder.byte_ranges("=", v, column.dtype)
            if ranges is None:
                return None, False, False  # mistyped literal: engine filters
            if not ranges:
                continue  # provably-empty option (e.g. 1.5 in an int column)
            equals.append(SingleColumnValueFilter(
                column.family, column.qualifier, CompareOp.EQUAL, ranges[0].lo,
            ))
        if not equals:
            # every option is unsatisfiable: nothing can match
            from repro.hbase.filters import RowFilter

            return RowFilter(CompareOp.LESS, b""), True, False
        if len(equals) == 1:
            return equals[0], True, False
        return FilterList(FilterListOp.MUST_PASS_ONE, equals), True, False

    def _range_filter(self, family: str, qualifier: str,
                      br: ByteRange) -> Optional[HFilter]:
        if br.is_point():
            return SingleColumnValueFilter(family, qualifier, CompareOp.EQUAL, br.lo)
        parts: List[HFilter] = []
        if br.lo is not None:
            op = CompareOp.GREATER_OR_EQUAL if br.lo_inclusive else CompareOp.GREATER
            parts.append(SingleColumnValueFilter(family, qualifier, op, br.lo))
        if br.hi is not None:
            op = CompareOp.LESS_OR_EQUAL if br.hi_inclusive else CompareOp.LESS
            parts.append(SingleColumnValueFilter(family, qualifier, op, br.hi))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return FilterList(FilterListOp.MUST_PASS_ALL, parts)

    def _is_rowkey(self, name: str) -> bool:
        column = self.catalog.columns.get(name)
        return column is not None and column.is_rowkey()

    def _is_first_dim_ordered(self, name: str) -> bool:
        if name != self.catalog.row_key[0]:
            return False
        return self.coder.order_preserving(self.catalog.column(name).dtype)


_OP_FOR = {
    S.EqualTo: "=",
    S.GreaterThan: ">",
    S.GreaterThanOrEqual: ">=",
    S.LessThan: "<",
    S.LessThanOrEqual: "<=",
}

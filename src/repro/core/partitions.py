"""Region-aligned RDD partitions with pruning and operator fusion.

Section VI.A: the driver intersects the query's scan ranges with the
regions' ``[start, end)`` boundaries -- regions overlapping no range get *no
task* (partition pruning) -- then packs all the Scans/Gets destined for one
Region Server into a single partition (operator fusion), so the number of
tasks equals the number of involved servers, not the number of ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.ranges import ScanRange
from repro.hbase.master import RegionLocation


@dataclass(frozen=True)
class RegionWork:
    """Scans/Gets to run against one region."""

    location: RegionLocation
    ranges: Tuple[ScanRange, ...]


@dataclass(frozen=True)
class HBaseScanPartition:
    """The payload of one HBaseTableScanRDD partition."""

    index: int
    server_id: str
    host: str
    work: Tuple[RegionWork, ...]

    def num_scans(self) -> int:
        return sum(1 for w in self.work for r in w.ranges if not r.point)

    def num_gets(self) -> int:
        return sum(1 for w in self.work for r in w.ranges if r.point)


def build_partitions(
    locations: Sequence[RegionLocation],
    ranges: Sequence[ScanRange],
    fusion_enabled: bool = True,
) -> List[HBaseScanPartition]:
    """Prune regions against ranges and group the survivors into partitions."""
    work_per_region: List[RegionWork] = []
    for location in locations:
        clamped = []
        for scan_range in ranges:
            if scan_range.overlaps_region(location.start_row, location.end_row):
                clipped = scan_range.clamp_to_region(location.start_row, location.end_row)
                if clipped is not None:
                    clamped.append(clipped)
        if clamped:  # regions with no overlapping range get no task at all
            work_per_region.append(RegionWork(location, tuple(clamped)))

    partitions: List[HBaseScanPartition] = []
    if fusion_enabled:
        by_server: Dict[str, List[RegionWork]] = {}
        for work in work_per_region:
            by_server.setdefault(work.location.server_id, []).append(work)
        for index, (server_id, works) in enumerate(sorted(by_server.items())):
            partitions.append(
                HBaseScanPartition(index, server_id, works[0].location.host,
                                   tuple(works))
            )
    else:
        # one task per Scan/Get, the unfused baseline of section VI.A.4
        index = 0
        for work in work_per_region:
            for scan_range in work.ranges:
                partitions.append(
                    HBaseScanPartition(
                        index, work.location.server_id, work.location.host,
                        (RegionWork(work.location, (scan_range,)),),
                    )
                )
                index += 1
    return partitions


def build_replica_partitions(
    locations: Sequence[RegionLocation],
    ranges: Sequence[ScanRange],
    candidates: Dict[str, List[RegionLocation]],
    split_keys: Callable[[RegionLocation, bytes, Optional[bytes]], List[bytes]],
    estimate_bytes: Callable[[RegionLocation, ScanRange], int],
) -> Tuple[List[HBaseScanPartition], Dict[str, int]]:
    """Replica-aware variant of :func:`build_partitions` (always fused).

    ``candidates`` maps each region name to the locations eligible to serve
    it, primary first (see ``ReplicationManager.read_candidates``).  A region
    with more than one candidate has its clamped ranges *split* at store-file
    block boundaries (``split_keys``) into one piece per candidate, then the
    pieces are spread greedily -- largest first onto the least-loaded
    candidate server -- so a hot region's scan parallelises across its
    replica hosts instead of serialising on the primary.  Regions with a
    single candidate behave exactly like the fused baseline.

    Returns ``(partitions, routing)`` where ``routing`` counts
    ``replica_scans`` (pieces routed to a secondary) and ``split_regions``
    (regions actually split).
    """
    routing = {"replica_scans": 0, "split_regions": 0}
    #: bytes of scan work assigned per server, across all regions
    load: Dict[str, int] = {}
    assigned: List[RegionWork] = []

    for location in locations:
        clamped = []
        for scan_range in ranges:
            if scan_range.overlaps_region(location.start_row, location.end_row):
                clipped = scan_range.clamp_to_region(location.start_row,
                                                     location.end_row)
                if clipped is not None:
                    clamped.append(clipped)
        if not clamped:
            continue
        cands = candidates.get(location.region_name) or [location]
        for cand in cands:
            load.setdefault(cand.server_id, 0)
        if len(cands) == 1:
            assigned.append(RegionWork(location, tuple(clamped)))
            load[location.server_id] += sum(
                estimate_bytes(location, r) for r in clamped)
            continue

        # split the region's ranges into up to len(cands) block-aligned
        # pieces: repeatedly halve the largest splittable piece
        pieces = [(r, estimate_bytes(location, r)) for r in clamped]
        exhausted: set = set()
        while len(pieces) < len(cands):
            splittable = [p for p in pieces
                          if not p[0].point and id(p[0]) not in exhausted]
            if not splittable:
                break
            rng, nbytes = min(splittable, key=lambda p: (-p[1], p[0].start))
            inside = [k for k in split_keys(location, rng.start, rng.stop)
                      if k > rng.start and (rng.stop is None or k < rng.stop)]
            if not inside:
                exhausted.add(id(rng))
                continue
            mid = inside[len(inside) // 2]
            pieces.remove((rng, nbytes))
            for part in (ScanRange(rng.start, mid), ScanRange(mid, rng.stop)):
                pieces.append((part, estimate_bytes(location, part)))
        if len(pieces) > len(clamped):
            routing["split_regions"] += 1

        # greedy LPT: biggest piece onto the least-loaded candidate server
        for rng, nbytes in sorted(pieces, key=lambda p: (-p[1], p[0].start)):
            target = min(cands, key=lambda c: (load[c.server_id],
                                               c.replica_id, c.server_id))
            load[target.server_id] += nbytes
            if target.replica_id:
                routing["replica_scans"] += 1
            assigned.append(RegionWork(target, (rng,)))

    by_server: Dict[str, List[RegionWork]] = {}
    for work in assigned:
        by_server.setdefault(work.location.server_id, []).append(work)
    partitions = [
        HBaseScanPartition(index, server_id, works[0].location.host,
                           tuple(works))
        for index, (server_id, works) in enumerate(sorted(by_server.items()))
    ]
    return partitions, routing

"""Region-aligned RDD partitions with pruning and operator fusion.

Section VI.A: the driver intersects the query's scan ranges with the
regions' ``[start, end)`` boundaries -- regions overlapping no range get *no
task* (partition pruning) -- then packs all the Scans/Gets destined for one
Region Server into a single partition (operator fusion), so the number of
tasks equals the number of involved servers, not the number of ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.ranges import ScanRange
from repro.hbase.master import RegionLocation


@dataclass(frozen=True)
class RegionWork:
    """Scans/Gets to run against one region."""

    location: RegionLocation
    ranges: Tuple[ScanRange, ...]


@dataclass(frozen=True)
class HBaseScanPartition:
    """The payload of one HBaseTableScanRDD partition."""

    index: int
    server_id: str
    host: str
    work: Tuple[RegionWork, ...]

    def num_scans(self) -> int:
        return sum(1 for w in self.work for r in w.ranges if not r.point)

    def num_gets(self) -> int:
        return sum(1 for w in self.work for r in w.ranges if r.point)


def build_partitions(
    locations: Sequence[RegionLocation],
    ranges: Sequence[ScanRange],
    fusion_enabled: bool = True,
) -> List[HBaseScanPartition]:
    """Prune regions against ranges and group the survivors into partitions."""
    work_per_region: List[RegionWork] = []
    for location in locations:
        clamped = []
        for scan_range in ranges:
            if scan_range.overlaps_region(location.start_row, location.end_row):
                clipped = scan_range.clamp_to_region(location.start_row, location.end_row)
                if clipped is not None:
                    clamped.append(clipped)
        if clamped:  # regions with no overlapping range get no task at all
            work_per_region.append(RegionWork(location, tuple(clamped)))

    partitions: List[HBaseScanPartition] = []
    if fusion_enabled:
        by_server: Dict[str, List[RegionWork]] = {}
        for work in work_per_region:
            by_server.setdefault(work.location.server_id, []).append(work)
        for index, (server_id, works) in enumerate(sorted(by_server.items())):
            partitions.append(
                HBaseScanPartition(index, server_id, works[0].location.host,
                                   tuple(works))
            )
    else:
        # one task per Scan/Get, the unfused baseline of section VI.A.4
        index = 0
        for work in work_per_region:
            for scan_range in work.ranges:
                partitions.append(
                    HBaseScanPartition(
                        index, work.location.server_id, work.location.host,
                        (RegionWork(work.location, (scan_range,)),),
                    )
                )
                index += 1
    return partitions

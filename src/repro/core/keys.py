"""Composite row-key encoding and decoding.

A catalog's row key is the concatenation of its key dimensions' encodings.
Every dimension but the last must be fixed-width (a native width or an
explicit catalog ``length``); variable-width values in non-terminal
dimensions are padded with ``0x00`` up to the declared length so the key can
be sliced apart again on read.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import CoderError
from repro.core.catalog import HBaseTableCatalog
from repro.core.coders.base import FieldCoder


def prefix_successor(prefix: bytes) -> Optional[bytes]:
    """Smallest byte string greater than *every* string with ``prefix``.

    Returns None when no such string exists (prefix is all ``0xff``), which
    callers treat as "unbounded above".
    """
    out = bytearray(prefix)
    while out and out[-1] == 0xFF:
        out.pop()
    if not out:
        return None
    out[-1] += 1
    return bytes(out)


def dimension_width(catalog: HBaseTableCatalog, coder: FieldCoder,
                    column_name: str) -> "Optional[int]":
    """Encoded width of one key dimension under ``coder`` (None = variable)."""
    column = catalog.column(column_name)
    if column.length is not None:
        return column.length
    return coder.encoded_width(column.dtype)


def encode_key_dimension(catalog: HBaseTableCatalog, coder: FieldCoder,
                         column_name: str, value: object) -> bytes:
    """Encode one key dimension, padding to its declared width if needed."""
    column = catalog.column(column_name)
    encoded = coder.encode(value, column.dtype)
    is_last = column_name == catalog.row_key[-1]
    if is_last and column.length is None:
        return encoded
    width = dimension_width(catalog, coder, column_name)
    if width is None:
        raise CoderError(
            f"key dimension {column_name!r} has no fixed width under "
            f"coder {coder.name!r}; declare \"length\" in the catalog"
        )
    if len(encoded) > width:
        raise CoderError(
            f"value for key dimension {column_name!r} encodes to "
            f"{len(encoded)} bytes, over the declared width {width}"
        )
    return encoded.ljust(width, b"\x00")


def encode_rowkey(catalog: HBaseTableCatalog, coder: FieldCoder,
                  values: Dict[str, object]) -> bytes:
    """Build the full composite row key from per-dimension values."""
    parts: List[bytes] = []
    for name in catalog.row_key:
        if name not in values or values[name] is None:
            raise CoderError(f"row-key dimension {name!r} must not be NULL")
        parts.append(encode_key_dimension(catalog, coder, name, values[name]))
    return b"".join(parts)


def decode_rowkey(catalog: HBaseTableCatalog, coder: FieldCoder,
                  key: bytes) -> Dict[str, object]:
    """Slice a composite row key back into per-dimension values."""
    values: Dict[str, object] = {}
    pos = 0
    for i, name in enumerate(catalog.row_key):
        column = catalog.column(name)
        is_last = i == len(catalog.row_key) - 1
        if is_last and column.length is None:
            chunk = key[pos:]
            pos = len(key)
        else:
            width = dimension_width(catalog, coder, name)
            if width is None:
                raise CoderError(
                    f"cannot slice variable-width key dimension {name!r}"
                )
            chunk = key[pos:pos + width]
            pos += width
        padded = column.length is not None or (
            not is_last and coder.encoded_width(column.dtype) is None
        )
        if padded and not coder.self_delimiting(column.dtype):
            chunk = chunk.rstrip(b"\x00")
        values[name] = coder.decode(chunk, column.dtype)
    return values

"""SHCCredentialsManager (section V.B.2).

Spark acquires delegation tokens statically at launch; SHC's credentials
manager instead fetches tokens *on demand*, caches them per cluster, and
refreshes them before expiry -- which is what lets one application join data
across multiple secure HBase clusters.  The refresh policy is configurable
through ``expireTimeFraction`` / ``refreshTimeFraction`` /
``refreshDurationMins``, mirroring the paper's knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.common.errors import SecurityError, TokenExpiredError
from repro.common.metrics import CostLedger
from repro.hbase.security import DelegationToken, Keytab, UserGroupInformation

if TYPE_CHECKING:  # pragma: no cover
    from repro.hbase.cluster import HBaseCluster


@dataclass(frozen=True)
class CredentialsConf:
    """Refresh policy knobs."""

    #: treat a token as unusable once this fraction of its life has passed
    expire_time_fraction: float = 0.95
    #: proactively refresh once this fraction of its life has passed
    refresh_time_fraction: float = 0.60
    #: periodic refresh executor interval (informational; the simulation
    #: refreshes lazily on access, which is equivalent under a SimClock)
    refresh_duration_mins: float = 10.0


class SHCCredentialsManager:
    """Token fetching, caching, renewal and serialization for SHC."""

    def __init__(self, conf: Optional[CredentialsConf] = None) -> None:
        self.conf = conf if conf is not None else CredentialsConf()
        self._tokens: Dict[str, DelegationToken] = {}
        self.fetches = 0
        self.renewals = 0
        self.cache_hits = 0

    def get_token_for_cluster(
        self,
        cluster: "HBaseCluster",
        keytab: Keytab,
        ledger: Optional[CostLedger] = None,
    ) -> DelegationToken:
        """A valid token for ``cluster``, from cache when possible.

        The paper's ``getTokenForCluster``: check the token cache first;
        refresh when the refresh fraction has elapsed; fetch a brand-new
        token (full Kerberos round trip) otherwise.
        """
        if not cluster.secure or cluster.token_authority is None:
            raise SecurityError(f"cluster {cluster.name} is not a secure service")
        now = cluster.clock.now()
        cached = self._tokens.get(cluster.service_name)
        if cached is not None and self._is_fresh(cached, now):
            self.cache_hits += 1
            return cached
        if cached is not None and not cached.is_expired(now):
            try:
                renewed = cluster.token_authority.renew_token(cached)
                self.renewals += 1
                self._tokens[cluster.service_name] = renewed
                if ledger is not None:
                    ledger.charge(cluster.cost.rpc_latency_s, "shc.token_renewals")
                return renewed
            except TokenExpiredError:
                pass  # past max lifetime: fall through to a fresh fetch
        token = cluster.token_authority.issue_token(keytab)
        self.fetches += 1
        self._tokens[cluster.service_name] = token
        if ledger is not None:
            ledger.charge(cluster.cost.token_fetch_s, "shc.token_fetches")
        return token

    def apply_to_ugi(self, ugi: UserGroupInformation,
                     token: DelegationToken) -> None:
        """Add the token to the current UserGroupInformation (paper V.B.2)."""
        ugi.add_token(token)

    def _is_fresh(self, token: DelegationToken, now: float) -> bool:
        lifetime = token.expiry_time - token.issue_time
        if lifetime <= 0:
            return False
        elapsed_fraction = (now - token.issue_time) / lifetime
        return elapsed_fraction < self.conf.refresh_time_fraction

    def is_usable(self, token: DelegationToken, now: float) -> bool:
        """Usable = under the expireTimeFraction threshold."""
        lifetime = token.expiry_time - token.issue_time
        if lifetime <= 0:
            return False
        return (now - token.issue_time) / lifetime < self.conf.expire_time_fraction

    # -- wire format -------------------------------------------------------
    @staticmethod
    def serialize_token(token: DelegationToken) -> bytes:
        return token.serialize()

    @staticmethod
    def deserialize_token(data: bytes) -> DelegationToken:
        return DelegationToken.deserialize(data)

    def cached_services(self) -> list:
        return sorted(self._tokens)

    def clear(self) -> None:
        self._tokens.clear()
        self.fetches = 0
        self.renewals = 0
        self.cache_hits = 0


#: process-wide manager used by HBaseRelation in secure mode
DEFAULT_CREDENTIALS_MANAGER = SHCCredentialsManager()

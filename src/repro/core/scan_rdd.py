"""HBaseTableScanRDD -- the customized RDD of section V.A.

The paper: "we propose HBaseTableScanRDD to scan the underlying HBase data
... We re-implement getPartitions, getPreferredLocations and compute".
Partitions are region-server-aligned (pruned + fused), preferred locations
are the Region Server hosts (data locality), and ``compute`` turns each
partition's ranges into HBase ``Scan``s and batched ``Get``s, decoding cells
through the catalog's coder straight out of HBase's byte arrays.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.common.errors import (
    FilterEvalError,
    RegionOfflineError,
    RetriesExhaustedError,
    TransientRpcError,
)
from repro.core.catalog import ColumnDef
from repro.core.keys import decode_rowkey
from repro.core.partitions import HBaseScanPartition
from repro.engine.rdd import Partition, RDD
from repro.hbase.client import Get, Result, Scan
from repro.hbase.filters import Filter as HFilter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.relation import HBaseRelation
    from repro.engine.scheduler import TaskContext


class HBaseTableScanRDD(RDD):
    """One partition per involved Region Server (post-pruning, fused)."""

    def __init__(
        self,
        relation: "HBaseRelation",
        required_columns: Sequence[str],
        hbase_filter: Optional[HFilter],
        scan_partitions: Sequence[HBaseScanPartition],
        filter_columns: Optional[Set[Tuple[str, str]]] = None,
    ) -> None:
        super().__init__()
        self.relation = relation
        self.required_columns = list(required_columns)
        self.hbase_filter = hbase_filter
        self.scan_partitions = list(scan_partitions)
        #: columns the pushed filter reads; they must be fetched even when
        #: the query does not project them, or the server-side filter would
        #: see "missing" cells and drop every row (the classic HBase SCVF
        #: gotcha SHC works around by widening the scan)
        self.filter_columns = set(filter_columns or ())
        catalog = relation.catalog
        self._key_columns = [c for c in required_columns if catalog.column(c).is_rowkey()]
        self._data_columns: List[ColumnDef] = [
            catalog.column(c) for c in required_columns
            if not catalog.column(c).is_rowkey()
        ]
        #: per-column decode plan, resolved once per RDD instead of per row:
        #: (key_name, (family, qualifier), decode_fn, dtype) -- key columns
        #: carry only key_name, data columns carry the other three
        self._decode_plan: List[tuple] = []
        for name in required_columns:
            column = catalog.column(name)
            if column.is_rowkey():
                self._decode_plan.append((name, None, None, None))
            else:
                coder = relation.field_coder(name)
                self._decode_plan.append(
                    (None, (column.family, column.qualifier), coder.decode,
                     column.dtype)
                )

    # -- the three overridden methods ------------------------------------------
    def partitions(self) -> List[Partition]:
        return [Partition(p.index, payload=p) for p in self.scan_partitions]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        if not self.relation.locality_enabled:
            return ()
        return (partition.payload.host,)

    def compute(self, partition: Partition,
                ctx: "TaskContext") -> Iterator[tuple]:
        """Stream decoded tuples straight out of the region scans.

        No intermediate ``List[Result]`` is materialised: each region scan's
        results are decoded and yielded as they are produced, through the
        per-column decode plan resolved at RDD construction.  Decode cost is
        charged for exactly the cells actually decoded -- a downstream
        consumer that stops early (a LIMIT) never pays for rows it did not
        pull -- via the ``finally`` block that runs when the generator
        finishes or is closed.
        """
        scan_partition: HBaseScanPartition = partition.payload
        relation = self.relation
        connection = relation.acquire_connection(ctx)
        decode_cost = relation.decode_cell_cost()
        decoded_cells = 0
        # replica provenance rides on the span only when routing engaged, so
        # replica-off traces keep their exact historical shape
        replica_work = sum(
            1 for w in scan_partition.work if w.location.replica_id)
        extra = {"replica_regions": replica_work} if replica_work else {}
        span = ctx.span.child(
            f"scan-p{partition.index}", "scan", order=partition.index,
            host=scan_partition.host, regions=len(scan_partition.work),
            **extra,
        )
        sim_start = ctx.ledger.seconds if span.enabled else 0.0
        try:
            table = connection.get_table(relation.catalog.qualified_name)
            hbase_columns = self._hbase_columns()
            time_range = relation.time_range()
            max_versions = relation.max_versions()
            caching = relation.scan_caching()
            gets: List[Get] = []
            for work in scan_partition.work:
                for scan_range in work.ranges:
                    if scan_range.point:
                        get = Get(scan_range.start)
                        self._configure_get(get, hbase_columns, time_range, max_versions)
                        gets.append(get)
                    else:
                        for result in self._scan_range(
                            table, connection, work.location, scan_range,
                            hbase_columns, time_range, max_versions, caching,
                            ctx, span,
                        ):
                            values, ncells = self._decode_result(result)
                            decoded_cells += ncells
                            yield values
            if gets:
                for result in table.bulk_get(gets, ctx.ledger):
                    if result.is_empty():
                        continue
                    values, ncells = self._decode_result(result)
                    decoded_cells += ncells
                    yield values
        finally:
            ctx.ledger.charge(decode_cost * decoded_cells,
                              "shc.cells_decoded", decoded_cells)
            relation.release_connection(ctx)
            if span.enabled:
                span.set(cells_decoded=decoded_cells)
                span.finish(sim_seconds=ctx.ledger.seconds - sim_start)

    # -- fault-tolerant range scanning -------------------------------------------
    def _scan_range(self, table, connection, location, scan_range,
                    columns, time_range, max_versions,
                    caching: Optional[int],
                    ctx: "TaskContext", span=None) -> Iterator[Result]:
        """Scan one clipped range, surviving crashes and filter failures.

        Exactly-once resumption: ``resume`` tracks the successor of the last
        row key *yielded*, so when the serving region server crashes mid-scan
        (or meta goes stale) the generator backs off per the connection's
        retry policy, re-locates the region -- by then the master has
        reassigned it and WAL replay restored unflushed cells -- and re-issues
        the scan from ``resume``: no row is lost or duplicated.  A pushed-down
        filter that fails server-side degrades gracefully: the scan is
        re-issued unfiltered from the same position and the predicate is
        applied client-side (the scan already fetches the filter's columns).
        Fault-free this makes exactly the one ``scan_region`` call per range
        it always made.
        """
        relation = self.relation
        policy = connection.retry_policy
        table_name = relation.catalog.qualified_name
        resume = scan_range.start
        stop = scan_range.stop
        client_filter: Optional[HFilter] = None
        failures = 0
        while True:
            scan = Scan(resume, stop)
            self._configure_scan(scan, columns, time_range, max_versions)
            if client_filter is not None:
                scan.filter = None
            if caching is not None:
                scan.set_caching(caching)
            try:
                for result in table.scan_region(location, scan, ctx.ledger):
                    if client_filter is not None and not client_filter.filter_row(
                            result.row, result.cells):
                        resume = result.row + b"\x00"
                        continue
                    yield result
                    resume = result.row + b"\x00"
            except FilterEvalError:
                # graceful degradation: rerun the scan without the pushed
                # filter and evaluate the predicate as a client-side residual
                client_filter = self.hbase_filter
                ctx.ledger.count("shc.filter_fallbacks")
                if span is not None and span.enabled:
                    span.event("filter-fallback", region=location.region_name)
                continue
            except (RegionOfflineError, TransientRpcError) as exc:
                failures += 1
                if not policy.allows_retry(failures):
                    raise RetriesExhaustedError(
                        f"scan of {table_name} gave up after {failures} "
                        f"failures: {exc}"
                    ) from exc
                # warm failover (docs/replication.md): when the master has
                # already promoted a replica, resume there immediately --
                # the resume key is preserved, so no row repeats, and the
                # retry backoff is never paid
                failover = relation.replica_failover_location(location, resume)
                if failover is not None:
                    ctx.ledger.count("hbase.replica.failovers")
                    ctx.ledger.count("shc.scan_resumes")
                    if span is not None and span.enabled:
                        span.event("replica-failover",
                                   region=location.region_name,
                                   server=failover.server_id,
                                   failures=failures)
                    connection.invalidate_location_cache(table_name)
                    location = failover
                    continue
                backoff = policy.backoff_s(failures, key=location.region_name)
                ctx.ledger.charge(backoff, "hbase.backoff_s", backoff)
                ctx.ledger.count("hbase.retries")
                ctx.ledger.count("shc.scan_resumes")
                if span is not None and span.enabled:
                    span.event("scan-resume", region=location.region_name,
                               failures=failures, backoff_s=backoff)
                connection.invalidate_location_cache(table_name)
                location = self._relocate(connection, table_name, resume)
                continue
            # this region is exhausted; a range extending past its end (the
            # region split since the partition was planned) continues in the
            # next region -- otherwise the range is done
            end = location.end_row
            if not end or (stop is not None and end >= stop):
                return
            resume = max(resume, end)
            location = self._relocate(connection, table_name, resume)

    @staticmethod
    def _relocate(connection, table_name: str, row: bytes):
        """Fresh meta lookup: the region currently serving ``row``."""
        for location in connection.region_locations(table_name):
            if row < location.start_row:
                continue
            if not location.end_row or row < location.end_row:
                return location
        raise RegionOfflineError(
            f"no region of {table_name} covers row {row!r} after relocation"
        )

    # -- request shaping ---------------------------------------------------------
    def _hbase_columns(self) -> Optional[Set[Tuple[str, str]]]:
        """Which (family, qualifier) pairs to fetch -- column pruning.

        When only row-key columns are requested we still must fetch *some*
        cells to enumerate rows, so every data family stays in (a row is
        visible iff it has at least one cell).
        """
        if not self.relation.column_pruning_enabled:
            return None  # fetch everything
        if self._data_columns or self.filter_columns:
            fetched = {(c.family, c.qualifier) for c in self._data_columns}
            fetched |= self.filter_columns
            return fetched
        return None

    def _configure_scan(self, scan: Scan, columns, time_range, max_versions) -> None:
        if columns is not None:
            for family, qualifier in columns:
                scan.add_column(family, qualifier)
        if self.hbase_filter is not None:
            scan.set_filter(self.hbase_filter)
        if time_range is not None:
            scan.set_time_range(time_range.min_ts, time_range.max_ts)
        if max_versions != 1:
            scan.set_max_versions(max_versions)

    def _configure_get(self, get: Get, columns, time_range, max_versions) -> None:
        if columns is not None:
            for family, qualifier in columns:
                get.add_column(family, qualifier)
        if time_range is not None:
            get.set_time_range(time_range.min_ts, time_range.max_ts)
        if max_versions != 1:
            get.set_max_versions(max_versions)

    # -- decoding ------------------------------------------------------------------
    def _decode_result(self, result: Result) -> Tuple[tuple, int]:
        """Decode one HBase row through the precomputed column plan.

        Returns the positional tuple plus the number of cells decoded (for
        the decode-cost charge the streaming ``compute`` accumulates).
        """
        relation = self.relation
        catalog = relation.catalog
        decoded_cells = 0
        key_values = None
        if self._key_columns:
            key_values = decode_rowkey(catalog, relation.coder, result.row)
            decoded_cells += len(catalog.row_key)
        cells = result.cells_map()
        values = []
        for key_name, fq, decode, dtype in self._decode_plan:
            if key_name is not None:
                values.append(key_values[key_name])
            else:
                raw = cells.get(fq)
                if raw is None:
                    values.append(None)
                else:
                    values.append(decode(raw, dtype))
                    decoded_cells += 1
        return tuple(values), decoded_cells

"""HBaseTableScanRDD -- the customized RDD of section V.A.

The paper: "we propose HBaseTableScanRDD to scan the underlying HBase data
... We re-implement getPartitions, getPreferredLocations and compute".
Partitions are region-server-aligned (pruned + fused), preferred locations
are the Region Server hosts (data locality), and ``compute`` turns each
partition's ranges into HBase ``Scan``s and batched ``Get``s, decoding cells
through the catalog's coder straight out of HBase's byte arrays.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.common.errors import CatalogError
from repro.core.catalog import ColumnDef
from repro.core.keys import decode_rowkey
from repro.core.partitions import HBaseScanPartition
from repro.engine.rdd import Partition, RDD
from repro.hbase.client import Get, Result, Scan
from repro.hbase.filters import Filter as HFilter
from repro.hbase.region import TimeRange

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.relation import HBaseRelation
    from repro.engine.scheduler import TaskContext


class HBaseTableScanRDD(RDD):
    """One partition per involved Region Server (post-pruning, fused)."""

    def __init__(
        self,
        relation: "HBaseRelation",
        required_columns: Sequence[str],
        hbase_filter: Optional[HFilter],
        scan_partitions: Sequence[HBaseScanPartition],
        filter_columns: Optional[Set[Tuple[str, str]]] = None,
    ) -> None:
        super().__init__()
        self.relation = relation
        self.required_columns = list(required_columns)
        self.hbase_filter = hbase_filter
        self.scan_partitions = list(scan_partitions)
        #: columns the pushed filter reads; they must be fetched even when
        #: the query does not project them, or the server-side filter would
        #: see "missing" cells and drop every row (the classic HBase SCVF
        #: gotcha SHC works around by widening the scan)
        self.filter_columns = set(filter_columns or ())
        catalog = relation.catalog
        self._key_columns = [c for c in required_columns if catalog.column(c).is_rowkey()]
        self._data_columns: List[ColumnDef] = [
            catalog.column(c) for c in required_columns
            if not catalog.column(c).is_rowkey()
        ]

    # -- the three overridden methods ------------------------------------------
    def partitions(self) -> List[Partition]:
        return [Partition(p.index, payload=p) for p in self.scan_partitions]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        if not self.relation.locality_enabled:
            return ()
        return (partition.payload.host,)

    def compute(self, partition: Partition,
                ctx: "TaskContext") -> Iterator[tuple]:
        scan_partition: HBaseScanPartition = partition.payload
        relation = self.relation
        connection = relation.acquire_connection(ctx)
        try:
            table = connection.get_table(relation.catalog.qualified_name)
            hbase_columns = self._hbase_columns()
            time_range = relation.time_range()
            max_versions = relation.max_versions()
            results: List[Result] = []
            gets: List[Get] = []
            for work in scan_partition.work:
                for scan_range in work.ranges:
                    if scan_range.point:
                        get = Get(scan_range.start)
                        self._configure_get(get, hbase_columns, time_range, max_versions)
                        gets.append(get)
                    else:
                        scan = Scan(scan_range.start, scan_range.stop)
                        self._configure_scan(scan, hbase_columns, time_range, max_versions)
                        results.extend(
                            table.scan_region(work.location, scan, ctx.ledger)
                        )
            if gets:
                results.extend(
                    r for r in table.bulk_get(gets, ctx.ledger) if not r.is_empty()
                )
            yield from self._decode(results, ctx)
        finally:
            relation.release_connection(ctx)

    # -- request shaping ---------------------------------------------------------
    def _hbase_columns(self) -> Optional[Set[Tuple[str, str]]]:
        """Which (family, qualifier) pairs to fetch -- column pruning.

        When only row-key columns are requested we still must fetch *some*
        cells to enumerate rows, so every data family stays in (a row is
        visible iff it has at least one cell).
        """
        if not self.relation.column_pruning_enabled:
            return None  # fetch everything
        if self._data_columns or self.filter_columns:
            fetched = {(c.family, c.qualifier) for c in self._data_columns}
            fetched |= self.filter_columns
            return fetched
        return None

    def _configure_scan(self, scan: Scan, columns, time_range, max_versions) -> None:
        if columns is not None:
            for family, qualifier in columns:
                scan.add_column(family, qualifier)
        if self.hbase_filter is not None:
            scan.set_filter(self.hbase_filter)
        if time_range is not None:
            scan.set_time_range(time_range.min_ts, time_range.max_ts)
        if max_versions != 1:
            scan.set_max_versions(max_versions)

    def _configure_get(self, get: Get, columns, time_range, max_versions) -> None:
        if columns is not None:
            for family, qualifier in columns:
                get.add_column(family, qualifier)
        if time_range is not None:
            get.set_time_range(time_range.min_ts, time_range.max_ts)
        if max_versions != 1:
            get.set_max_versions(max_versions)

    # -- decoding ------------------------------------------------------------------
    def _decode(self, results: List[Result], ctx: "TaskContext") -> Iterator[tuple]:
        relation = self.relation
        catalog = relation.catalog
        key_coder = relation.coder
        decode_cost = relation.decode_cell_cost()
        column_coders = {
            name: relation.field_coder(name) for name in self.required_columns
        }
        decoded_cells = 0
        for result in results:
            values = []
            key_values = None
            if self._key_columns:
                key_values = decode_rowkey(catalog, key_coder, result.row)
                decoded_cells += len(catalog.row_key)
            cells = result.cells_map()
            for name in self.required_columns:
                column = catalog.column(name)
                if column.is_rowkey():
                    values.append(key_values[name])
                else:
                    raw = cells.get((column.family, column.qualifier))
                    if raw is None:
                        values.append(None)
                    else:
                        values.append(column_coders[name].decode(raw, column.dtype))
                        decoded_cells += 1
            yield tuple(values)
        ctx.ledger.charge(decode_cost * decoded_cells, "shc.cells_decoded", decoded_cells)

"""SHC's DataFrame write path (sections IV.B and VII's write benchmark).

``df.write.format(...).options(catalog, newtable=N).save()`` lands here:
optionally create the target table pre-split into N regions (split keys are
data-derived quantiles of the encoded row keys, like the connector's
``HBaseTableCatalog.newTable`` path), then run a distributed job where each
partition encodes its rows straight into HBase byte arrays and issues
batched ``Put``s against the region servers.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.common.errors import CatalogError
from repro.core.catalog import HBaseTableCatalog
from repro.core.keys import encode_rowkey
from repro.hbase.client import Put
from repro.sql.types import StructType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.relation import HBaseRelation
    from repro.engine.rdd import RDD
    from repro.sql.physical import ExecContext

PUT_BATCH_SIZE = 500


def insert_into_hbase(relation: "HBaseRelation", rdd: "RDD", schema: StructType,
                      ctx: "ExecContext", overwrite: bool = False) -> int:
    """Write an RDD of tuples into the relation's HBase table."""
    catalog = relation.catalog
    _check_schema(catalog, schema)
    cluster = relation.cluster

    if overwrite and cluster.has_table(catalog.qualified_name):
        cluster.drop_table(catalog.qualified_name)

    if not cluster.has_table(catalog.qualified_name):
        num_regions = int(relation.options.get(HBaseTableCatalog.newTable, 1))
        split_keys = _sample_split_keys(relation, rdd, schema, ctx, num_regions)
        cluster.create_table(catalog.qualified_name, catalog.families(), split_keys)

    column_index = {name: i for i, name in enumerate(schema.names)}
    key_names = list(catalog.row_key)
    data_columns = [c for c in catalog.data_columns() if c.name in column_index]
    coder = relation.coder
    encode_cost = relation.encode_cell_cost()

    def write_partition(rows, task_ctx):
        connection = relation.acquire_connection(task_ctx)
        try:
            table = connection.get_table(catalog.qualified_name)
            batch: List[Put] = []
            written = 0
            encoded_cells = 0
            for row in rows:
                key_values = {name: row[column_index[name]] for name in key_names}
                put = Put(encode_rowkey(catalog, coder, key_values))
                encoded_cells += len(key_names)
                for column in data_columns:
                    value = row[column_index[column.name]]
                    if value is None:
                        continue  # NULL means "no cell" in HBase
                    put.add_column(
                        column.family, column.qualifier,
                        relation.field_coder(column.name).encode(
                            value, column.dtype),
                    )
                    encoded_cells += 1
                batch.append(put)
                written += 1
                if len(batch) >= PUT_BATCH_SIZE:
                    table.put(batch, task_ctx.ledger)
                    batch = []
            if batch:
                table.put(batch, task_ctx.ledger)
            task_ctx.ledger.charge(
                encode_cost * encoded_cells, "shc.cells_encoded", encoded_cells
            )
            yield written
        finally:
            relation.release_connection(task_ctx)

    counts = ctx.run_job(rdd.map_partitions(write_partition)).rows()
    cluster.flush_table(catalog.qualified_name)
    cluster.run_maintenance()
    return sum(counts)


def _check_schema(catalog: HBaseTableCatalog, schema: StructType) -> None:
    names = set(schema.names)
    for key_name in catalog.row_key:
        if key_name not in names:
            raise CatalogError(
                f"write schema is missing row-key column {key_name!r}"
            )
    for name in schema.names:
        if name not in catalog.columns:
            raise CatalogError(
                f"write schema column {name!r} is not in the catalog for "
                f"{catalog.name}"
            )


def _sample_split_keys(relation: "HBaseRelation", rdd: "RDD", schema: StructType,
                       ctx: "ExecContext", num_regions: int) -> List[bytes]:
    """Quantile split keys so the new table's regions are balanced."""
    if num_regions <= 1:
        return []
    catalog = relation.catalog
    coder = relation.coder
    column_index = {name: i for i, name in enumerate(schema.names)}
    key_names = list(catalog.row_key)

    def encode_keys(rows, task_ctx):
        for row in rows:
            values = {name: row[column_index[name]] for name in key_names}
            yield encode_rowkey(catalog, coder, values)

    keys = sorted(ctx.run_job(rdd.map_partitions(encode_keys)).rows())
    if not keys:
        return []
    splits: List[bytes] = []
    for i in range(1, num_regions):
        idx = (i * len(keys)) // num_regions
        candidate = keys[min(idx, len(keys) - 1)]
        if candidate and (not splits or candidate != splits[-1]):
            splits.append(candidate)
    return splits

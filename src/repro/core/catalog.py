"""The SHC catalog: the JSON data model of section IV (Code 1).

A catalog maps a relational schema onto HBase's four coordinates: every
relational column is either part of the **row key** (family ``"rowkey"``) or
a ``(column family, column qualifier)`` pair; ``tableCoder`` picks how typed
values become byte arrays.  Composite row keys are colon-joined column names
-- all dimensions except the last must be fixed-width so the key can be
sliced back apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import CatalogError
from repro.sql.types import DataType, StructType, type_from_name

ROWKEY_FAMILY = "rowkey"


class HBaseSparkConf:
    """Option keys understood by SHC (paper sections IV.C and V.B)."""

    TIMESTAMP = "hbase.spark.query.timestamp"
    MIN_TIMESTAMP = "hbase.spark.query.timerange.start"
    MAX_TIMESTAMP = "hbase.spark.query.timerange.end"
    MAX_VERSIONS = "hbase.spark.query.maxVersions"
    CACHED_ROWS = "hbase.spark.query.cachedrows"
    CREDENTIALS_ENABLED = "spark.hbase.connector.security.credentials.enabled"
    PRINCIPAL = "spark.yarn.principal"
    KEYTAB = "spark.yarn.keytab"
    CONNECTION_CLOSE_DELAY = "spark.hbase.connector.connectionCloseDelay"
    # SHC feature toggles (defaults on; benchmarks ablate them)
    PUSHDOWN = "shc.pushdown.enabled"
    PRUNING = "shc.partition.pruning.enabled"
    COLUMN_PRUNING = "shc.column.pruning.enabled"
    LOCALITY = "shc.locality.enabled"
    FUSION = "shc.operator.fusion.enabled"
    CONNECTION_CACHE = "shc.connection.cache.enabled"
    PRUNE_ALL_DIMENSIONS = "shc.partition.pruning.allDimensions"
    # region read replicas (docs/replication.md; off by default -- routing
    # only engages when the cluster also has replication enabled)
    READ_REPLICA = "hbase.read.replica"
    REPLICA_STALENESS = "hbase.read.replica.staleness"


@dataclass(frozen=True)
class ColumnDef:
    """One relational column's HBase coordinates."""

    name: str
    family: str
    qualifier: str
    dtype: DataType
    #: Avro schema JSON for per-column Avro encoding (catalog key "avro")
    avro_schema: Optional[str] = None
    #: explicit encoded byte length (needed for variable-width key dimensions)
    length: Optional[int] = None

    def is_rowkey(self) -> bool:
        return self.family == ROWKEY_FAMILY


class HBaseTableCatalog:
    """A parsed catalog."""

    #: option key carrying the catalog JSON (paper Code 2/3)
    tableCatalog = "catalog"
    #: option key asking the writer to create a new table with N regions
    newTable = "newtable"

    def __init__(
        self,
        namespace: str,
        name: str,
        row_key: List[str],
        columns: Dict[str, ColumnDef],
        table_coder: str = "PrimitiveType",
        version: str = "2.0",
    ) -> None:
        self.namespace = namespace
        self.name = name
        self.row_key = row_key
        self.columns = columns
        self.table_coder = table_coder
        self.version = version
        self._validate()

    # -- parsing ----------------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "HBaseTableCatalog":
        """Parse a catalog string like the paper's Code 1."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CatalogError(f"catalog is not valid JSON: {exc}") from exc
        table = raw.get("table")
        if not isinstance(table, dict) or "name" not in table:
            raise CatalogError('catalog needs "table": {"name": ...}')
        rowkey_spec = raw.get("rowkey")
        if not rowkey_spec:
            raise CatalogError('catalog needs a "rowkey" entry')
        columns_raw = raw.get("columns")
        if not isinstance(columns_raw, dict) or not columns_raw:
            raise CatalogError('catalog needs a non-empty "columns" map')

        columns: Dict[str, ColumnDef] = {}
        for col_name, spec in columns_raw.items():
            if "cf" not in spec or "col" not in spec:
                raise CatalogError(f'column {col_name!r} needs "cf" and "col"')
            avro_schema = spec.get("avro")
            type_name = spec.get("type")
            if type_name is None and avro_schema is None:
                raise CatalogError(f'column {col_name!r} needs "type" or "avro"')
            dtype = type_from_name(type_name) if type_name else type_from_name("binary")
            length = spec.get("length")
            columns[col_name] = ColumnDef(
                name=col_name,
                family=spec["cf"],
                qualifier=spec["col"],
                dtype=dtype,
                avro_schema=avro_schema,
                length=int(length) if length is not None else None,
            )

        key_parts = [part.strip() for part in rowkey_spec.split(":") if part.strip()]
        # the rowkey spec names *qualifiers*; map them back to column names
        key_columns: List[str] = []
        for part in key_parts:
            match = [
                c.name for c in columns.values()
                if c.is_rowkey() and c.qualifier == part
            ]
            if not match:
                raise CatalogError(
                    f'rowkey part {part!r} has no column with cf "rowkey" '
                    f"and col {part!r}"
                )
            key_columns.append(match[0])

        return cls(
            namespace=table.get("namespace", "default"),
            name=table["name"],
            row_key=key_columns,
            columns=columns,
            table_coder=table.get("tableCoder", "PrimitiveType"),
            version=str(table.get("Version", table.get("version", "2.0"))),
        )

    # -- validation ----------------------------------------------------------
    def _validate(self) -> None:
        if not self.row_key:
            raise CatalogError("a catalog needs at least one row-key column")
        for key_col in self.row_key:
            if key_col not in self.columns:
                raise CatalogError(f"row-key column {key_col!r} is not defined")
            if not self.columns[key_col].is_rowkey():
                raise CatalogError(
                    f'row-key column {key_col!r} must use cf "rowkey"'
                )
        for column in self.columns.values():
            if column.is_rowkey() and column.name not in self.row_key:
                raise CatalogError(
                    f'column {column.name!r} uses cf "rowkey" but is not part '
                    f"of the rowkey spec"
                )
        # composite keys: every dimension but the last needs a known width
        for key_col in self.row_key[:-1]:
            column = self.columns[key_col]
            if column.dtype.fixed_width is None and column.length is None:
                raise CatalogError(
                    f"composite-key dimension {key_col!r} has variable width; "
                    f'declare "length" in the catalog'
                )

    # -- views -------------------------------------------------------------------
    def sql_schema(self) -> StructType:
        """The relational schema, row-key columns first (stable order)."""
        schema = StructType()
        for name in self.row_key:
            schema = schema.add(name, self.columns[name].dtype)
        for name, column in self.columns.items():
            if not column.is_rowkey():
                schema = schema.add(name, column.dtype)
        return schema

    def data_columns(self) -> List[ColumnDef]:
        return [c for c in self.columns.values() if not c.is_rowkey()]

    def key_columns(self) -> List[ColumnDef]:
        return [self.columns[name] for name in self.row_key]

    def column(self, name: str) -> ColumnDef:
        column = self.columns.get(name)
        if column is None:
            raise CatalogError(f"no column {name!r} in catalog for {self.name}")
        return column

    def families(self) -> List[str]:
        """Column families the HBase table needs (rowkey is not a family)."""
        return sorted({c.family for c in self.columns.values() if not c.is_rowkey()})

    def key_width(self, column_name: str) -> Optional[int]:
        column = self.column(column_name)
        if column.length is not None:
            return column.length
        return column.dtype.fixed_width

    @property
    def qualified_name(self) -> str:
        """The physical HBase table name, namespace-qualified.

        The ``default`` namespace is elided, matching HBase's own display
        convention; other namespaces render as ``ns:table`` so two catalogs
        with the same table name in different namespaces never collide.
        """
        if self.namespace in ("", "default"):
            return self.name
        return f"{self.namespace}:{self.name}"

    def __repr__(self) -> str:
        return (
            f"HBaseTableCatalog({self.namespace}:{self.name}, "
            f"key={self.row_key}, coder={self.table_coder})"
        )

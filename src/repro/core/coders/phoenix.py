"""The Phoenix coder: Apache Phoenix's order-preserving encodings.

Allows SHC to read tables written by Phoenix and vice versa (section
IV.B.3).  Integers are sign-flipped, floats use the IEEE total-order trick,
so every comparison predicate translates directly into a single byte range.
"""

from __future__ import annotations

from repro.common.errors import CoderError
from repro.core.coders.base import FieldCoder
from repro.hbase.hbytes import Bytes, OrderedBytes
from repro.sql.types import (
    BinaryType,
    BooleanType,
    ByteType,
    DataType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    TimestampType,
)


class PhoenixCoder(FieldCoder):
    """``tableCoder: Phoenix``."""

    name = "Phoenix"

    def encode(self, value: object, dtype: DataType) -> bytes:
        if value is None:
            raise CoderError("cannot encode NULL; HBase omits the cell instead")
        if isinstance(value, float) and value == 0.0:
            value = 0.0  # canonicalise -0.0: SQL equality must stay injective
        if dtype is StringType:
            return Bytes.from_string(value)
        if dtype is BinaryType:
            return bytes(value)
        if dtype is BooleanType:
            return b"\x01" if value else b"\x00"
        if dtype is ByteType:
            return OrderedBytes.from_byte(value)
        if dtype is ShortType:
            return OrderedBytes.from_short(value)
        if dtype is IntegerType:
            return OrderedBytes.from_int(value)
        if dtype in (LongType, TimestampType):
            return OrderedBytes.from_long(value)
        if dtype is FloatType:
            return OrderedBytes.from_float(value)
        if dtype is DoubleType:
            return OrderedBytes.from_double(value)
        raise CoderError(f"Phoenix cannot encode {dtype}")

    def decode(self, data: bytes, dtype: DataType) -> object:
        if dtype is StringType:
            return Bytes.to_string(data)
        if dtype is BinaryType:
            return bytes(data)
        if dtype is BooleanType:
            return data != b"\x00"
        if dtype is ByteType:
            return OrderedBytes.to_byte(data)
        if dtype is ShortType:
            return OrderedBytes.to_short(data)
        if dtype is IntegerType:
            return OrderedBytes.to_int(data)
        if dtype in (LongType, TimestampType):
            return OrderedBytes.to_long(data)
        if dtype is FloatType:
            return OrderedBytes.to_float(data)
        if dtype is DoubleType:
            return OrderedBytes.to_double(data)
        raise CoderError(f"Phoenix cannot decode {dtype}")

    def order_preserving(self, dtype: DataType) -> bool:
        return True

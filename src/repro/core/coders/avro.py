"""The Avro coder: a from-scratch subset of Avro binary encoding.

SHC supports persisting Avro records in HBase cells (section IV.B.2); this
module implements the slice of the Avro specification the connector needs --
schema JSON parsing, zig-zag varint ints/longs, little-endian floats,
length-prefixed strings/bytes, nullable unions and records -- with no
external library.  Cell values are single-field nullable records, so every
value carries record + union framing, which is why Avro costs more CPU and
space than the native coders (Table II) and why nothing about the encoding
is order-preserving (varints reorder magnitudes, strings gain length
prefixes): only equality predicates can be pushed down.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

from repro.common.errors import CoderError
from repro.core.coders.base import FieldCoder
from repro.sql.types import (
    BinaryType,
    BooleanType,
    ByteType,
    DataType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    TimestampType,
)

# -- low-level Avro primitives ----------------------------------------------------

def zigzag_encode(value: int) -> int:
    """Map a signed int to the unsigned zig-zag domain (Avro spec)."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def write_varint(value: int) -> bytes:
    """Little-endian base-128 varint encoding."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode a varint; returns ``(value, next_position)``."""
    shift = 0
    result = 0
    while True:
        if pos >= len(data):
            raise CoderError("truncated Avro varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def write_long(value: int) -> bytes:
    """Avro long: zig-zag then varint."""
    return write_varint(zigzag_encode(value))


def read_long(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode an Avro long; returns ``(value, next_position)``."""
    raw, pos = read_varint(data, pos)
    return zigzag_decode(raw), pos


def write_string(value: str) -> bytes:
    """Avro string: length prefix + UTF-8 payload."""
    payload = value.encode("utf-8")
    return write_long(len(payload)) + payload


def read_string(data: bytes, pos: int) -> Tuple[str, int]:
    """Decode an Avro string; returns ``(value, next_position)``."""
    length, pos = read_long(data, pos)
    if pos + length > len(data):
        raise CoderError("truncated Avro string")
    return data[pos:pos + length].decode("utf-8"), pos + length


def write_bytes(value: bytes) -> bytes:
    """Avro bytes: length prefix + raw payload."""
    return write_long(len(value)) + bytes(value)


def read_bytes(data: bytes, pos: int) -> Tuple[bytes, int]:
    """Decode Avro bytes; returns ``(value, next_position)``."""
    length, pos = read_long(data, pos)
    if pos + length > len(data):
        raise CoderError("truncated Avro bytes")
    return data[pos:pos + length], pos + length


# -- schemas --------------------------------------------------------------------------

class AvroSchema:
    """A parsed Avro schema (primitives, nullable unions, flat records)."""

    PRIMITIVES = ("null", "boolean", "int", "long", "float", "double",
                  "string", "bytes")

    def __init__(self, kind: str, fields: Optional[List[Tuple[str, "AvroSchema"]]] = None,
                 union: Optional[List["AvroSchema"]] = None, name: str = "") -> None:
        self.kind = kind
        self.fields = fields or []
        self.union = union or []
        self.name = name

    @classmethod
    def parse(cls, text: "str | dict | list") -> "AvroSchema":
        raw = json.loads(text) if isinstance(text, str) else text
        return cls._build(raw)

    @classmethod
    def _build(cls, raw) -> "AvroSchema":
        if isinstance(raw, str):
            if raw not in cls.PRIMITIVES:
                raise CoderError(f"unsupported Avro type {raw!r}")
            return cls(raw)
        if isinstance(raw, list):
            return cls("union", union=[cls._build(r) for r in raw])
        if isinstance(raw, dict):
            kind = raw.get("type")
            if kind == "record":
                fields = [
                    (f["name"], cls._build(f["type"]))
                    for f in raw.get("fields", [])
                ]
                return cls("record", fields=fields, name=raw.get("name", ""))
            if isinstance(kind, (str, list, dict)):
                return cls._build(kind)
        raise CoderError(f"unsupported Avro schema {raw!r}")

    # -- binary encoding --------------------------------------------------------
    def write(self, value: object) -> bytes:
        if self.kind == "null":
            if value is not None:
                raise CoderError("null schema cannot hold a value")
            return b""
        if self.kind == "boolean":
            return b"\x01" if value else b"\x00"
        if self.kind in ("int", "long"):
            return write_long(int(value))
        if self.kind == "float":
            return struct.pack("<f", float(value))
        if self.kind == "double":
            return struct.pack("<d", float(value))
        if self.kind == "string":
            return write_string(str(value))
        if self.kind == "bytes":
            return write_bytes(bytes(value))
        if self.kind == "union":
            for index, branch in enumerate(self.union):
                if branch.accepts(value):
                    return write_long(index) + branch.write(value)
            raise CoderError(f"no union branch accepts {value!r}")
        if self.kind == "record":
            if not isinstance(value, dict):
                raise CoderError("record schema expects a dict")
            out = bytearray()
            for field_name, field_schema in self.fields:
                out.extend(field_schema.write(value.get(field_name)))
            return bytes(out)
        raise CoderError(f"cannot write Avro kind {self.kind!r}")

    def read(self, data: bytes, pos: int = 0) -> Tuple[object, int]:
        if self.kind == "null":
            return None, pos
        if self.kind == "boolean":
            return data[pos] != 0, pos + 1
        if self.kind in ("int", "long"):
            return read_long(data, pos)
        if self.kind == "float":
            return struct.unpack_from("<f", data, pos)[0], pos + 4
        if self.kind == "double":
            return struct.unpack_from("<d", data, pos)[0], pos + 8
        if self.kind == "string":
            return read_string(data, pos)
        if self.kind == "bytes":
            return read_bytes(data, pos)
        if self.kind == "union":
            index, pos = read_long(data, pos)
            if not 0 <= index < len(self.union):
                raise CoderError(f"bad union branch {index}")
            return self.union[index].read(data, pos)
        if self.kind == "record":
            record = {}
            for field_name, field_schema in self.fields:
                record[field_name], pos = field_schema.read(data, pos)
            return record, pos
        raise CoderError(f"cannot read Avro kind {self.kind!r}")

    def accepts(self, value: object) -> bool:
        if self.kind == "null":
            return value is None
        if self.kind == "boolean":
            return isinstance(value, bool)
        if self.kind in ("int", "long"):
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind in ("float", "double"):
            return isinstance(value, float)
        if self.kind == "string":
            return isinstance(value, str)
        if self.kind == "bytes":
            return isinstance(value, (bytes, bytearray))
        if self.kind == "record":
            return isinstance(value, dict)
        if self.kind == "union":
            return any(b.accepts(value) for b in self.union)
        return False


_AVRO_TYPE_FOR = {
    BooleanType: "boolean",
    ByteType: "int",
    ShortType: "int",
    IntegerType: "int",
    LongType: "long",
    TimestampType: "long",
    FloatType: "float",
    DoubleType: "double",
    StringType: "string",
    BinaryType: "bytes",
}


class AvroCoder(FieldCoder):
    """``tableCoder: Avro`` -- every cell is a one-field nullable record."""

    name = "Avro"

    def _schema_for(self, dtype: DataType) -> AvroSchema:
        avro_type = _AVRO_TYPE_FOR.get(dtype)
        if avro_type is None:
            raise CoderError(f"Avro cannot encode {dtype}")
        return AvroSchema.parse({
            "type": "record",
            "name": "cell",
            "fields": [{"name": "value", "type": ["null", avro_type]}],
        })

    def encode(self, value: object, dtype: DataType) -> bytes:
        if value is None:
            raise CoderError("cannot encode NULL; HBase omits the cell instead")
        if dtype in (FloatType, DoubleType):
            value = float(value)
            if value == 0.0:
                value = 0.0  # canonicalise -0.0 for injective equality
        return self._schema_for(dtype).write({"value": value})

    def decode(self, data: bytes, dtype: DataType) -> object:
        record, __ = self._schema_for(dtype).read(data)
        value = record["value"]
        if dtype.python_type is int and value is not None:
            return int(value)
        return value

    def order_preserving(self, dtype: DataType) -> bool:
        return False  # varints and length prefixes scramble byte order

    def encoded_width(self, dtype: DataType) -> Optional[int]:
        return None  # varint encodings are variable width

    def self_delimiting(self, dtype: DataType) -> bool:
        return True  # the record reader stops at the record's end


class AvroRecordCoder(FieldCoder):
    """Per-column Avro coder bound to a user-declared schema.

    This is the paper's Code 2/3 path: a catalog column carries
    ``"avro": "avroSchema"`` and the schema JSON arrives through the read
    options under that key; the cell then stores the Avro-encoded value of
    *that schema* (a full record, an array, or a primitive), which SHC
    converts to an engine value on scan.
    """

    def __init__(self, schema_json: str) -> None:
        self.schema = AvroSchema.parse(schema_json)
        self.name = f"Avro[{self.schema.name or self.schema.kind}]"

    def encode(self, value: object, dtype: DataType) -> bytes:
        if value is None:
            raise CoderError("cannot encode NULL; HBase omits the cell instead")
        return self.schema.write(value)

    def decode(self, data: bytes, dtype: DataType) -> object:
        value, __ = self.schema.read(data)
        return value

    def order_preserving(self, dtype: DataType) -> bool:
        return False

    def encoded_width(self, dtype: DataType) -> Optional[int]:
        return None

    def self_delimiting(self, dtype: DataType) -> bool:
        return True

    def sql_type(self) -> DataType:
        """The engine-facing type this schema decodes to."""
        from repro.sql.types import (
            BinaryType as B,
            BooleanType as Bo,
            DoubleType as D,
            FloatType as F,
            LongType as L,
            RecordType,
            StringType as S,
        )

        kind = self.schema.kind
        if kind == "union":
            non_null = [b for b in self.schema.union if b.kind != "null"]
            kind = non_null[0].kind if len(non_null) == 1 else "record"
        return {
            "boolean": Bo, "int": L, "long": L, "float": F, "double": D,
            "string": S, "bytes": B,
        }.get(kind, RecordType)

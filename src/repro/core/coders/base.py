"""Coder interface and registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import CoderError
from repro.sql.types import (
    BooleanType,
    ByteType,
    DataType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    TimestampType,
)

_INT_DTYPES = (ByteType, ShortType, IntegerType, LongType, TimestampType)

#: sentinel: the predicate is provably empty (e.g. int_col = 1.5)
EMPTY_PREDICATE = object()


def normalize_bound(op: str, value: object, dtype: DataType):
    """Coerce a literal to the column's domain before byte translation.

    Returns ``(op, value)`` with the bound adjusted (a float bound against an
    integer column floors/shifts to the equivalent integer predicate),
    :data:`EMPTY_PREDICATE` when no value can satisfy it, or None when the
    literal's type makes byte translation unsafe (the engine filters instead).
    """
    import math

    if isinstance(value, bool):
        return (op, value) if dtype is BooleanType else None
    if dtype in _INT_DTYPES:
        if isinstance(value, float):
            if math.isnan(value) or math.isinf(value):
                return None
            if value.is_integer():
                return op, int(value)
            # int_col <op> 1.5 rewrites to an integer bound
            if op == "=":
                return EMPTY_PREDICATE
            if op in (">", ">="):
                return ">", math.floor(value)
            if op in ("<", "<="):
                return "<=", math.floor(value)
            return None
        return (op, value) if isinstance(value, int) else None
    if dtype in (FloatType, DoubleType):
        if isinstance(value, int):
            return op, float(value)
        return (op, value) if isinstance(value, float) else None
    if dtype is StringType:
        return (op, value) if isinstance(value, str) else None
    return op, value


@dataclass(frozen=True)
class ByteRange:
    """One byte-space interval ``lo..hi`` with inclusivity flags.

    ``lo=None`` means "from the beginning of the keyspace", ``hi=None`` means
    "to the end".  These are *value-encoding* ranges over a single key
    dimension; the range algebra turns them into full-rowkey scan bounds.
    """

    lo: Optional[bytes]
    lo_inclusive: bool
    hi: Optional[bytes]
    hi_inclusive: bool

    def is_point(self) -> bool:
        return (
            self.lo is not None and self.lo == self.hi
            and self.lo_inclusive and self.hi_inclusive
        )


class FieldCoder:
    """Encodes/decodes one column value; knows its ordering properties."""

    #: registry / catalog name ("tableCoder" value)
    name: str = "abstract"

    def encode(self, value: object, dtype: DataType) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, dtype: DataType) -> object:
        raise NotImplementedError

    def order_preserving(self, dtype: DataType) -> bool:
        """True when byte order equals value order for ``dtype``."""
        return False

    def byte_ranges(self, op: str, value: object,
                    dtype: DataType) -> Optional[List[ByteRange]]:
        """Byte intervals equivalent to ``column <op> value``.

        Returns None when the predicate cannot be expressed byte-wise under
        this encoding (the engine then keeps the filter).  Equality always
        works for an injective encoding; inequalities need order preservation
        or an explicit sign-split (PrimitiveType numerics).
        """
        normalized = normalize_bound(op, value, dtype)
        if normalized is None:
            return None
        if normalized is EMPTY_PREDICATE:
            return []
        op, value = normalized
        if op == "=":
            point = self.encode(value, dtype)
            return [ByteRange(point, True, point, True)]
        if not self.order_preserving(dtype):
            return None
        encoded = self.encode(value, dtype)
        return _ordered_ranges(op, encoded)

    def encoded_width(self, dtype: DataType) -> Optional[int]:
        """Fixed encoded width for ``dtype`` under this coder, if any."""
        return dtype.fixed_width

    def self_delimiting(self, dtype: DataType) -> bool:
        """True when the decoder finds its own end (padding can stay)."""
        return False


def _ordered_ranges(op: str, encoded: bytes) -> List[ByteRange]:
    """Ranges for an order-preserving encoding."""
    if op == ">":
        return [ByteRange(encoded, False, None, False)]
    if op == ">=":
        return [ByteRange(encoded, True, None, False)]
    if op == "<":
        return [ByteRange(None, False, encoded, False)]
    if op == "<=":
        return [ByteRange(None, False, encoded, True)]
    raise CoderError(f"unsupported range operator {op!r}")


_REGISTRY: Dict[str, FieldCoder] = {}


def register_coder(coder: FieldCoder) -> None:
    """Register a coder under its name (custom coders welcome -- section IV.B)."""
    _REGISTRY[coder.name] = coder


def get_coder(name: str) -> FieldCoder:
    """Look a coder up by its catalog name (``tableCoder`` value)."""
    coder = _REGISTRY.get(name)
    if coder is None:
        raise CoderError(f"unknown coder {name!r}; registered: {sorted(_REGISTRY)}")
    return coder

"""The PrimitiveType coder: HBase's native Java-primitive byte encoding.

Integers are big-endian two's complement and floats raw IEEE-754 -- neither
is order-preserving across the sign boundary, which is the "order
inconsistency between Java primitive types and the byte array" of section
IV.B.1.  The coder resolves it exactly as the paper describes: range
predicates are *pre-processed* into byte-monotone segments (split at zero)
before they are pushed into HBase, so no data is lost to misordered scans.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.common.errors import CoderError
from repro.core.coders.base import (
    ByteRange,
    EMPTY_PREDICATE,
    FieldCoder,
    _ordered_ranges,
    normalize_bound,
)
from repro.hbase.hbytes import Bytes
from repro.sql.types import (
    BinaryType,
    BooleanType,
    ByteType,
    DataType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    TimestampType,
)

_INT_BOUNDS = {
    ByteType: (-(2**7), 2**7 - 1),
    ShortType: (-(2**15), 2**15 - 1),
    IntegerType: (-(2**31), 2**31 - 1),
    LongType: (-(2**63), 2**63 - 1),
    TimestampType: (-(2**63), 2**63 - 1),
}

_FLOAT_INF = {FloatType: float("inf"), DoubleType: float("inf")}


class PrimitiveTypeCoder(FieldCoder):
    """``tableCoder: PrimitiveType`` (the default)."""

    name = "PrimitiveType"

    def encode(self, value: object, dtype: DataType) -> bytes:
        if value is None:
            raise CoderError("cannot encode NULL; HBase omits the cell instead")
        if isinstance(value, float) and value == 0.0:
            value = 0.0  # canonicalise -0.0: SQL equality must stay injective
        if dtype is StringType:
            return Bytes.from_string(value)
        if dtype is BinaryType:
            return bytes(value)
        if dtype is BooleanType:
            return Bytes.from_bool(value)
        if dtype is ByteType:
            return Bytes.from_byte(value)
        if dtype is ShortType:
            return Bytes.from_short(value)
        if dtype is IntegerType:
            return Bytes.from_int(value)
        if dtype in (LongType, TimestampType):
            return Bytes.from_long(value)
        if dtype is FloatType:
            return Bytes.from_float(value)
        if dtype is DoubleType:
            return Bytes.from_double(value)
        raise CoderError(f"PrimitiveType cannot encode {dtype}")

    def decode(self, data: bytes, dtype: DataType) -> object:
        if dtype is StringType:
            return Bytes.to_string(data)
        if dtype is BinaryType:
            return bytes(data)
        if dtype is BooleanType:
            return Bytes.to_bool(data)
        if dtype is ByteType:
            return Bytes.to_byte(data)
        if dtype is ShortType:
            return Bytes.to_short(data)
        if dtype is IntegerType:
            return Bytes.to_int(data)
        if dtype in (LongType, TimestampType):
            return Bytes.to_long(data)
        if dtype is FloatType:
            return Bytes.to_float(data)
        if dtype is DoubleType:
            return Bytes.to_double(data)
        raise CoderError(f"PrimitiveType cannot decode {dtype}")

    def order_preserving(self, dtype: DataType) -> bool:
        # UTF-8 preserves code-point order; booleans and raw binary compare
        # fine; every numeric encoding breaks at the sign boundary.
        return dtype in (StringType, BinaryType, BooleanType)

    def byte_ranges(self, op: str, value: object,
                    dtype: DataType) -> Optional[List[ByteRange]]:
        normalized = normalize_bound(op, value, dtype)
        if normalized is None:
            return None
        if normalized is EMPTY_PREDICATE:
            return []
        op, value = normalized
        if op == "=":
            point = self.encode(value, dtype)
            return [ByteRange(point, True, point, True)]
        if self.order_preserving(dtype):
            return _ordered_ranges(op, self.encode(value, dtype))
        if dtype in _INT_BOUNDS:
            return self._int_ranges(op, int(value), dtype)
        if dtype in (FloatType, DoubleType):
            return self._float_ranges(op, float(value), dtype)
        return None

    # -- sign-split machinery ------------------------------------------------
    def _int_ranges(self, op: str, value: int, dtype: DataType) -> List[ByteRange]:
        """Two's-complement byte order: [0..MAX] then [MIN..-1]."""
        lo, hi = _INT_BOUNDS[dtype]
        enc = lambda v: self.encode(v, dtype)  # noqa: E731 - local shorthand
        if op in (">", ">="):
            inclusive = op == ">="
            if value >= 0:
                return [ByteRange(enc(value), inclusive, enc(hi), True)]
            return [
                ByteRange(enc(value), inclusive, enc(-1), True),
                ByteRange(enc(0), True, enc(hi), True),
            ]
        if op in ("<", "<="):
            inclusive = op == "<="
            if value >= 0:
                return [
                    ByteRange(enc(0), True, enc(value), inclusive),
                    ByteRange(enc(lo), True, enc(-1), True),
                ]
            return [ByteRange(enc(lo), True, enc(value), inclusive)]
        raise CoderError(f"unsupported range operator {op!r}")

    def _float_ranges(self, op: str, value: float, dtype: DataType) -> List[ByteRange]:
        """Raw IEEE-754: positives byte-ascend with value, negatives descend."""
        if math.isnan(value):
            return []
        if value == 0.0:
            value = 0.0  # canonicalise -0.0
        inf = _FLOAT_INF[dtype]
        enc = lambda v: self.encode(v, dtype)  # noqa: E731 - local shorthand
        # the smallest byte pattern of the negative half is the raw -0.0
        # image; stored values are canonicalised so nothing sits exactly
        # there, making the inclusive bound safe
        width = 8 if dtype is DoubleType else 4
        neg_floor = b"\x80" + b"\x00" * (width - 1)
        pos_all = ByteRange(enc(0.0), True, enc(inf), True)
        neg_all = ByteRange(neg_floor, True, enc(-inf), True)
        if op in (">", ">="):
            inclusive = op == ">="
            if value >= 0:
                return [ByteRange(enc(value), inclusive, enc(inf), True)]
            # negatives with v' > value sit at *smaller* byte offsets
            return [ByteRange(neg_floor, True, enc(value), inclusive), pos_all]
        if op in ("<", "<="):
            inclusive = op == "<="
            if value >= 0:
                return [ByteRange(enc(0.0), True, enc(value), inclusive), neg_all]
            return [ByteRange(enc(value), inclusive, enc(-inf), True)]
        raise CoderError(f"unsupported range operator {op!r}")

"""SHC field coders: typed values <-> HBase byte arrays (section IV.B).

Three built-in coders (``PrimitiveType``, ``Phoenix``, ``Avro``) plus a
registry for custom ones -- the plug-in design the paper highlights.  Coders
also answer the question pushdown depends on: *is the encoding
order-preserving for this type?* -- and produce the byte-space ranges a
predicate corresponds to, splitting at sign boundaries where the encoding's
byte order disagrees with the numeric order.
"""

from repro.core.coders.avro import AvroCoder
from repro.core.coders.base import ByteRange, FieldCoder, get_coder, register_coder
from repro.core.coders.phoenix import PhoenixCoder
from repro.core.coders.primitive import PrimitiveTypeCoder

register_coder(PrimitiveTypeCoder())
register_coder(PhoenixCoder())
register_coder(AvroCoder())

__all__ = [
    "FieldCoder",
    "ByteRange",
    "PrimitiveTypeCoder",
    "PhoenixCoder",
    "AvroCoder",
    "get_coder",
    "register_coder",
]

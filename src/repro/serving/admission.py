"""Admission primitives: per-tenant token buckets and weighted fair queuing.

Both primitives run on *simulated* time and contain no wall clock and no
``random`` source, so every throttle and dequeue decision is a pure function
of the request sequence -- the property the chaos suite pins (byte-identical
admit/shed sets for a given seed).

:class:`TokenBucket` is the classic throttling pattern: a tenant may burst up
to ``burst`` queries and sustain ``rate`` queries per simulated second; a
request finding no token is shed with a deterministic ``retry_after_s`` hint
rather than queued (queueing throttled work would defeat the rate limit).

:class:`FairQueue` is weighted fair queuing by virtual time: each enqueued
request gets a virtual finish time ``max(V, tenant_last) + 1/weight`` and
requests dequeue in virtual-finish order, so a tenant with weight 4 drains
four requests for every one of a weight-1 tenant regardless of arrival
bursts -- one tenant's scan storm cannot monopolise the queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TokenBucket:
    """A per-tenant rate limiter over simulated seconds.

    ``rate`` is tokens (queries) replenished per simulated second and
    ``burst`` caps how many may accumulate.  The bucket starts full so a
    tenant's first ``burst`` requests always pass.
    """

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    last_refill_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        if self.tokens < 0:
            self.tokens = self.burst

    def try_acquire(self, now_s: float) -> Tuple[bool, float]:
        """Take one token at simulated time ``now_s``.

        Returns ``(admitted, retry_after_s)``: on refusal ``retry_after_s``
        is how long until one full token will have accumulated -- the
        structured hint the front door passes back to the client.
        """
        elapsed = max(0.0, now_s - self.last_refill_s)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_refill_s = now_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class FairQueue:
    """A bounded, weighted-fair admission queue (virtual-time WFQ).

    Entries are arbitrary items tagged with a tenant and that tenant's
    weight.  ``pop_dispatchable`` walks the queue in virtual-finish order
    and hands back the first entry the caller's predicate accepts, which
    keeps the queue work-conserving under bulkheads: a request whose slot
    partition is busy does not block a request whose partition is free.
    Ties break on the enqueue sequence number, never on thread timing.
    """

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("admission queue depth must be at least 1")
        self.max_depth = max_depth
        self._heap: List[Tuple[float, int, str, object]] = []
        self._virtual_time = 0.0
        self._tenant_finish: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """Whether the bounded queue is at capacity (next enqueue sheds)."""
        return len(self._heap) >= self.max_depth

    def push(self, tenant: str, weight: float, seq: int, item: object) -> None:
        """Enqueue ``item``; the caller has already checked :attr:`full`."""
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        start = max(self._virtual_time, self._tenant_finish.get(tenant, 0.0))
        finish = start + 1.0 / weight
        self._tenant_finish[tenant] = finish
        heapq.heappush(self._heap, (finish, seq, tenant, item))

    def pop_dispatchable(self, can_dispatch) -> Optional[object]:
        """The first entry in WFQ order that ``can_dispatch(item)`` accepts.

        Skipped entries keep their virtual finish times (their turn is not
        forfeited by someone else's free bulkhead).  Returns ``None`` when
        nothing currently dispatches.
        """
        skipped: List[Tuple[float, int, str, object]] = []
        found: Optional[object] = None
        while self._heap:
            finish, seq, tenant, item = heapq.heappop(self._heap)
            if can_dispatch(item):
                self._virtual_time = max(self._virtual_time, finish)
                found = item
                break
            skipped.append((finish, seq, tenant, item))
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return found

    def drain(self) -> List[object]:
        """Remove and return every queued item in WFQ order (shutdown path)."""
        out = []
        while self._heap:
            __, __, __, item = heapq.heappop(self._heap)
            out.append(item)
        return out

"""Multi-tenant serving front door for the SQL session (docs/serving.md).

The subsystem between clients and the engine: a bounded weighted-fair
admission queue, per-tenant token-bucket throttling, bulkhead executor-slot
partitions and a circuit breaker over region-server health -- all running on
simulated time so every admit/shed decision is deterministic and replayable
under a pinned chaos seed.
"""

from repro.serving.admission import FairQueue, TokenBucket
from repro.serving.breaker import (CLOSED, HALF_OPEN, OPEN, BreakerConfig,
                                   CircuitBreaker)
from repro.serving.server import (COMPLETED, FAILED, PENDING, SHED,
                                  QueryServer, ServingConfig, TenantSpec,
                                  Ticket)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "COMPLETED",
    "FAILED",
    "FairQueue",
    "HALF_OPEN",
    "OPEN",
    "PENDING",
    "QueryServer",
    "SHED",
    "ServingConfig",
    "TenantSpec",
    "Ticket",
    "TokenBucket",
]

"""Circuit breaker over region-server fault and latency signals.

The classic closed -> open -> half-open state machine, driven entirely by
simulated time and per-query outcome signals so every transition is
deterministic and replayable under a pinned seed:

* **closed** -- outcomes feed a sliding window; when at least
  ``min_samples`` of the last ``window`` queries are degraded (injected
  faults forced retries/resumes, a region server died mid-query, or latency
  blew past the threshold) at ratio >= ``failure_threshold``, the breaker
  opens.
* **open** -- every arrival is shed immediately with a structured
  ``retry_after_s`` (the remaining cooldown) instead of queueing against a
  degraded cluster -- queue-based load leveling must not become queue
  collapse.
* **half-open** -- after ``cooldown_s`` the next ``probe_count`` arrivals
  are admitted as *probes* (everyone else still sheds).  All probes healthy
  closes the breaker and resets the window; any degraded probe re-opens it
  with the cooldown doubled up to ``max_cooldown_s``.

Transitions are recorded in :attr:`CircuitBreaker.transitions` for the
trace/EXPLAIN ANALYZE plumbing and asserted byte-identical by the chaos
suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker` (see docs/serving.md)."""

    window: int = 8                  #: sliding window of recent outcomes
    min_samples: int = 4             #: outcomes required before tripping
    failure_threshold: float = 0.5   #: degraded ratio that opens the breaker
    cooldown_s: float = 30.0         #: open -> half-open wait (simulated)
    max_cooldown_s: float = 240.0    #: cap for the doubling re-open cooldown
    probe_count: int = 2             #: arrivals admitted while half-open
    latency_threshold_s: Optional[float] = None  #: degraded when exceeded


class CircuitBreaker:
    """Deterministic breaker guarding the front door against a sick cluster."""

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.open_until_s = 0.0
        self._cooldown_s = self.config.cooldown_s
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._probes_launched = 0
        self._probes_pending = 0
        self._probe_failed = False
        #: every state change, in order: {at_s, from, to, reason}
        self.transitions: List[Dict[str, object]] = []

    # -- arrivals ----------------------------------------------------------
    def admit(self, now_s: float) -> Dict[str, object]:
        """Decide one arrival at simulated time ``now_s``.

        Returns ``{"admit": bool, "probe": bool, "retry_after_s": float,
        "state": str}``.  Open -> shed with the remaining cooldown;
        half-open -> the first ``probe_count`` arrivals become probes.
        """
        if self.state == OPEN and now_s >= self.open_until_s:
            self._transition(now_s, HALF_OPEN, "cooldown elapsed")
            self._probes_launched = 0
            self._probes_pending = 0
            self._probe_failed = False
        if self.state == CLOSED:
            return {"admit": True, "probe": False,
                    "retry_after_s": 0.0, "state": self.state}
        if self.state == OPEN:
            return {"admit": False, "probe": False,
                    "retry_after_s": max(0.0, self.open_until_s - now_s),
                    "state": self.state}
        # half-open: a bounded number of deterministic probes
        if self._probes_launched < self.config.probe_count:
            self._probes_launched += 1
            self._probes_pending += 1
            return {"admit": True, "probe": True,
                    "retry_after_s": 0.0, "state": self.state}
        return {"admit": False, "probe": False,
                "retry_after_s": max(0.0, self._cooldown_s), "state": self.state}

    # -- outcomes ----------------------------------------------------------
    def record(self, now_s: float, degraded: bool, probe: bool = False) -> None:
        """Feed one completed query's health signal back into the breaker."""
        if probe and self.state == HALF_OPEN:
            self._probes_pending -= 1
            if degraded:
                self._probe_failed = True
            if self._probe_failed:
                self._cooldown_s = min(self.config.max_cooldown_s,
                                       self._cooldown_s * 2.0)
                self.open_until_s = now_s + self._cooldown_s
                self._transition(now_s, OPEN, "probe degraded")
            elif self._probes_pending == 0 and \
                    self._probes_launched >= self.config.probe_count:
                self._outcomes.clear()
                self._cooldown_s = self.config.cooldown_s
                self._transition(now_s, CLOSED, "probes healthy")
            return
        self._outcomes.append(degraded)
        if self.state != CLOSED:
            return
        if len(self._outcomes) < self.config.min_samples:
            return
        ratio = sum(self._outcomes) / len(self._outcomes)
        if ratio >= self.config.failure_threshold:
            self.open_until_s = now_s + self._cooldown_s
            self._transition(
                now_s, OPEN,
                f"degraded ratio {ratio:.2f} over last {len(self._outcomes)}")

    def is_degraded_latency(self, seconds: float) -> bool:
        """Whether a query's simulated latency counts as a degradation signal."""
        threshold = self.config.latency_threshold_s
        return threshold is not None and seconds >= threshold

    # -- plumbing ----------------------------------------------------------
    def _transition(self, now_s: float, to_state: str, reason: str) -> None:
        self.transitions.append({
            "at_s": now_s, "from": self.state, "to": to_state,
            "reason": reason,
        })
        self.state = to_state

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state}, "
                f"transitions={len(self.transitions)})")

"""The multi-tenant query front door: a ``QueryServer`` over the session.

Today every ``SparkSession.sql()`` call owns the whole simulated cluster; a
system serving many concurrent tenants needs the four classic guardrails
between the client and the engine (docs/serving.md):

* **queue-based load leveling** -- a bounded admission queue absorbs bursts;
  wait time is charged to the simulated ledger and counted against client
  operation deadlines (``CostLedger.queued_s``).
* **throttling** -- per-tenant token buckets shed sustained overload with a
  structured ``retry_after_s`` instead of queueing it.
* **weighted fair sharing + bulkheads** -- queued queries drain in
  weighted-fair order and execute on *leased* executor-slot partitions, so
  one tenant's scan storm cannot starve another tenant's reserved slots.
* **circuit breaking** -- region-server fault/latency signals open a breaker
  that sheds queries during degradation rather than letting the queue
  collapse into timeouts (:mod:`repro.serving.breaker`).

The server is a deterministic discrete-event simulation over *simulated*
time: requests carry explicit arrival times, every admit/shed/throttle/
breaker decision is a pure function of ``(config, request sequence, seed)``,
and the chaos suite asserts the decisions byte-identical across runs.
Queries themselves still execute through the real session (each one runs
its stages on the thread-pool runner), so served results are the same rows
a direct ``session.sql().run()`` would produce.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import OverloadedError, ReproError
from repro.common.faults import FAULT_ADMISSION
from repro.common.metrics import MetricsRegistry
from repro.common.tracing import NOOP_SPAN, Span
from repro.serving.admission import FairQueue, TokenBucket
from repro.serving.breaker import BreakerConfig, CircuitBreaker

#: ticket states
PENDING = "pending"
COMPLETED = "completed"
FAILED = "failed"
SHED = "shed"

#: simulated cost assigned to a failed execution with no deadline to infer
#: it from (slot-occupancy bookkeeping only; successes use real seconds)
DEFAULT_FAILED_COST_S = 1.0


@dataclass
class TenantSpec:
    """One tenant's serving contract.

    ``weight`` drives weighted fair queuing (a weight-4 tenant drains four
    queued queries for each one of a weight-1 tenant).  ``rate``/``burst``
    configure the tenant's token bucket (``None`` rate = unthrottled).
    ``reserved_slots`` is the tenant's bulkhead: executor slots only this
    tenant's queries may lease; everything unreserved forms the shared pool.
    """

    name: str
    weight: float = 1.0
    rate: Optional[float] = None
    burst: float = 4.0
    reserved_slots: int = 0


@dataclass
class ServingConfig:
    """Front-door tuning knobs, read from ``serving.*`` session conf keys."""

    enabled: bool = True
    max_queue_depth: int = 16
    slots_per_query: int = 2
    deadline_s: Optional[float] = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: a completed query counts as a degradation signal when it needed at
    #: least this many hbase client retries (or any mid-scan resume)
    breaker_retry_signal: int = 2

    @classmethod
    def from_conf(cls, conf: Dict[str, object]) -> "ServingConfig":
        """Build a config from a session conf dict (``serving.*`` keys)."""
        def _opt_float(key: str) -> Optional[float]:
            value = conf.get(key)
            return None if value is None else float(value)

        breaker = BreakerConfig(
            window=int(conf.get("serving.breaker.window", 8)),
            min_samples=int(conf.get("serving.breaker.min.samples", 4)),
            failure_threshold=float(
                conf.get("serving.breaker.failure.threshold", 0.5)),
            cooldown_s=float(conf.get("serving.breaker.cooldown.s", 30.0)),
            max_cooldown_s=float(
                conf.get("serving.breaker.max.cooldown.s", 240.0)),
            probe_count=int(conf.get("serving.breaker.probe.count", 2)),
            latency_threshold_s=_opt_float(
                "serving.breaker.latency.threshold.s"),
        )
        return cls(
            enabled=bool(conf.get("serving.enabled", True)),
            max_queue_depth=int(conf.get("serving.queue.max.depth", 16)),
            slots_per_query=int(conf.get("serving.slots.per.query", 2)),
            deadline_s=_opt_float("serving.deadline.s"),
            breaker=breaker,
            breaker_retry_signal=int(
                conf.get("serving.breaker.retry.signal", 2)),
        )


@dataclass
class Ticket:
    """One submitted request plus everything the front door decided about it.

    ``status`` moves from ``pending`` to exactly one of ``completed``
    (rows available via :meth:`result`), ``failed`` (admitted but execution
    raised) or ``shed`` (refused with a structured
    :class:`~repro.common.errors.OverloadedError`).
    """

    seq: int
    tenant: str
    sql: str
    at_s: float
    deadline_s: Optional[float] = None
    analyze: bool = False
    status: str = PENDING
    probe: bool = False
    wait_s: float = 0.0
    start_s: float = 0.0
    finish_s: float = 0.0
    reason: Optional[str] = None
    retry_after_s: float = 0.0
    degraded: bool = False
    query_result: Optional[object] = None
    error: Optional[BaseException] = None
    report: Optional[str] = None
    trace: Optional[Span] = None
    leased_slots: Tuple[int, ...] = ()

    @property
    def latency_s(self) -> float:
        """Simulated end-to-end latency: admission-queue wait + execution."""
        return self.finish_s - self.at_s

    def result(self):
        """The executed :class:`QueryResult`, or raise the shed/failure error."""
        if self.status == COMPLETED:
            return self.query_result
        if self.error is not None:
            raise self.error
        raise ReproError(f"request #{self.seq} has not completed "
                         f"(status={self.status})")


class QueryServer:
    """Admission control, fair scheduling and load shedding for one session.

    Submit requests with :meth:`submit` (thread-safe; deterministic when
    arrival times are pinned), then :meth:`drain` runs the discrete-event
    loop to completion.  ``enabled=False`` is the invariance escape hatch:
    every request executes directly through the session with zero serving
    bookkeeping, byte-identical to calling ``session.sql().run()`` yourself.
    """

    def __init__(self, session, config: Optional[ServingConfig] = None,
                 enabled: Optional[bool] = None, faults=None,
                 hbase_cluster=None) -> None:
        self.session = session
        self.config = config if config is not None \
            else ServingConfig.from_conf(session.conf)
        self.enabled = self.config.enabled if enabled is None else enabled
        #: optional FaultInjector checked at the FAULT_ADMISSION point
        self.faults = faults
        #: optional HBaseCluster whose region-server deaths feed the breaker
        self.hbase_cluster = hbase_cluster
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(self.config.breaker)
        self.queue = FairQueue(self.config.max_queue_depth)
        self._tenants: Dict[str, TenantSpec] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(0)
        self._pending: List[Ticket] = []
        self._last_arrival_s = 0.0
        self._slot_free: List[float] = []
        self._reserved_idx: Dict[str, Tuple[int, ...]] = {}
        self._shared_idx: Tuple[int, ...] = ()
        self._partitioned = False
        self._events: List[Tuple[float, int, int, str, Ticket]] = []
        self._event_seq = itertools.count(0)
        self._seen_transitions = 0
        self._dead_servers_seen = 0

    # -- tenants -----------------------------------------------------------
    def register_tenant(self, name: str, weight: float = 1.0,
                        rate: Optional[float] = None, burst: float = 4.0,
                        reserved_slots: int = 0) -> TenantSpec:
        """Declare a tenant's weight, rate limit and bulkhead reservation.

        Must happen before the first :meth:`drain` (slot partitions are
        frozen then).  Unregistered tenants get weight 1, no rate limit and
        no reserved slots.
        """
        if self._partitioned:
            raise ReproError("tenants must be registered before drain()")
        spec = TenantSpec(name, weight=weight, rate=rate, burst=burst,
                          reserved_slots=reserved_slots)
        self._tenants[name] = spec
        if rate is not None:
            self._buckets[name] = TokenBucket(rate=rate, burst=burst)
        return spec

    def _tenant(self, name: str) -> TenantSpec:
        spec = self._tenants.get(name)
        if spec is None:
            spec = TenantSpec(name)
            self._tenants[name] = spec
        return spec

    # -- submission --------------------------------------------------------
    def submit(self, sql: str, tenant: str = "default",
               at: Optional[float] = None,
               deadline_s: Optional[float] = None,
               analyze: bool = False) -> Ticket:
        """Buffer one request for the next :meth:`drain`.

        ``at`` is the request's *simulated* arrival time; omitted, it
        reuses the latest arrival seen (same instant, later sequence), so a
        plain burst of submits stays deterministic.  ``deadline_s``
        overrides ``serving.deadline.s`` for this request.
        """
        with self._lock:
            at_s = self._last_arrival_s if at is None else float(at)
            if at_s < self._last_arrival_s:
                raise ReproError(
                    f"arrival times must be non-decreasing: got {at_s} "
                    f"after {self._last_arrival_s}")
            self._last_arrival_s = at_s
            ticket = Ticket(seq=next(self._seq), tenant=tenant, sql=sql,
                            at_s=at_s, deadline_s=deadline_s, analyze=analyze)
            self._pending.append(ticket)
        return ticket

    # -- the event loop ----------------------------------------------------
    def drain(self) -> List[Ticket]:
        """Run every buffered request to a final state; returns the tickets.

        The discrete-event loop processes arrivals and completions in
        ``(simulated time, completions-first, sequence)`` order, so the
        whole admit/shed/throttle/breaker schedule is a deterministic
        function of the submitted workload -- thread interleaving never
        participates.
        """
        with self._lock:
            tickets, self._pending = self._pending, []
        if not tickets:
            return tickets
        if not self.enabled:
            for ticket in tickets:
                self._run_direct(ticket)
            return tickets
        self._ensure_partitions()
        for ticket in tickets:
            heapq.heappush(
                self._events,
                (ticket.at_s, 1, next(self._event_seq), "arrival", ticket))
        while self._events:
            now, __, __, kind, ticket = heapq.heappop(self._events)
            if kind == "completion":
                self._on_completion(now, ticket)
            else:
                self._on_arrival(now, ticket)
            self._dispatch(now)
        return tickets

    def _run_direct(self, ticket: Ticket) -> None:
        """The disabled front door: a bare session run, nothing recorded."""
        df = self.session.sql(ticket.sql)
        try:
            ticket.query_result = self.session.execute_plan(df.plan)
            ticket.status = COMPLETED
        except ReproError as exc:
            ticket.error = exc
            ticket.status = FAILED

    # -- bulkhead partitions -----------------------------------------------
    def _ensure_partitions(self) -> None:
        """Freeze the executor-slot partitions on first drain."""
        if self._partitioned:
            return
        slots = self.session.cluster.slots()
        total = len(slots)
        per_query = self.config.slots_per_query
        if per_query < 1 or per_query > total:
            raise ReproError(
                f"serving.slots.per.query={per_query} must be in "
                f"[1, {total}] for this cluster")
        reserved_total = sum(
            t.reserved_slots for t in self._tenants.values())
        if reserved_total > total:
            raise ReproError(
                f"bulkhead reservations ({reserved_total} slots) exceed the "
                f"cluster's {total} slots")
        cursor = 0
        for name in sorted(self._tenants):
            count = self._tenants[name].reserved_slots
            if count:
                self._reserved_idx[name] = tuple(range(cursor, cursor + count))
                cursor += count
        self._shared_idx = tuple(range(cursor, total))
        for name, spec in sorted(self._tenants.items()):
            eligible = len(self._reserved_idx.get(name, ())) + \
                len(self._shared_idx)
            if eligible < per_query:
                raise ReproError(
                    f"tenant {name!r} can never lease {per_query} slots "
                    f"(bulkhead {spec.reserved_slots} + shared "
                    f"{len(self._shared_idx)})")
        self._slot_free = [0.0] * total
        self._partitioned = True

    def _eligible_idx(self, tenant: str) -> Tuple[int, ...]:
        return self._reserved_idx.get(tenant, ()) + self._shared_idx

    def _free_idx(self, tenant: str, now_s: float) -> List[int]:
        return [i for i in self._eligible_idx(tenant)
                if self._slot_free[i] <= now_s]

    # -- arrivals ----------------------------------------------------------
    def _on_arrival(self, now_s: float, ticket: Ticket) -> None:
        self.metrics.incr("serving.submitted")
        if self.faults is not None:
            try:
                self.faults.check(FAULT_ADMISSION, key=ticket.tenant)
            except OverloadedError as exc:
                self._shed(ticket, now_s, exc.reason, exc.retry_after_s)
                return
        decision = self.breaker.admit(now_s)
        self._note_transitions(now_s, ticket)
        if not decision["admit"]:
            self._shed(ticket, now_s, "breaker_open",
                       float(decision["retry_after_s"]))
            return
        ticket.probe = bool(decision["probe"])
        bucket = self._buckets.get(ticket.tenant)
        if bucket is not None:
            admitted, retry_after = bucket.try_acquire(now_s)
            if not admitted:
                self._shed(ticket, now_s, "throttled", retry_after)
                return
        if self.queue.full:
            self._shed(ticket, now_s, "queue_full",
                       self._queue_full_hint(ticket.tenant, now_s))
            return
        spec = self._tenant(ticket.tenant)
        self.queue.push(ticket.tenant, spec.weight, ticket.seq, ticket)
        self.metrics.record_peak("serving.queue_depth", float(len(self.queue)))

    def _queue_full_hint(self, tenant: str, now_s: float) -> float:
        busy = [self._slot_free[i] for i in self._eligible_idx(tenant)
                if self._slot_free[i] > now_s]
        if not busy:
            return 1.0
        return max(0.0, min(busy) - now_s)

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, now_s: float) -> None:
        while True:
            ticket = self.queue.pop_dispatchable(
                lambda t: len(self._free_idx(t.tenant, now_s))
                >= self.config.slots_per_query)
            if ticket is None:
                return
            self._start(now_s, ticket)

    def _start(self, now_s: float, ticket: Ticket) -> None:
        wait = now_s - ticket.at_s
        deadline = ticket.deadline_s if ticket.deadline_s is not None \
            else self.config.deadline_s
        if deadline is not None and wait >= deadline:
            # the whole operation budget drained in the queue: deterministic
            # load shedding instead of dispatching doomed work
            self._shed(ticket, now_s, "deadline", 0.0)
            return
        per_query = self.config.slots_per_query
        reserved = [i for i in self._reserved_idx.get(ticket.tenant, ())
                    if self._slot_free[i] <= now_s]
        shared = [i for i in self._shared_idx if self._slot_free[i] <= now_s]
        leased = tuple((reserved + shared)[:per_query])
        ticket.leased_slots = leased
        ticket.wait_s = wait
        ticket.start_s = now_s
        self.metrics.incr("serving.admitted")
        if wait > 0:
            self.metrics.incr("serving.queued")
            self.metrics.incr("serving.queue_wait_s", wait)
        if ticket.probe:
            self.metrics.incr("serving.probes")
        duration = self._execute(ticket, wait, leased, deadline)
        for idx in leased:
            self._slot_free[idx] = now_s + duration
        self.metrics.incr("serving.slot_busy_s", duration * len(leased))
        ticket.finish_s = now_s + duration
        heapq.heappush(
            self._events,
            (ticket.finish_s, 0, next(self._event_seq), "completion", ticket))

    def _execute(self, ticket: Ticket, wait: float,
                 leased: Tuple[int, ...], deadline: Optional[float]) -> float:
        """Run the query on its leased slots; returns its simulated seconds."""
        cluster_slots = self.session.cluster.slots()
        lease = [cluster_slots[i] for i in leased]
        trace = self.session.query_trace()
        if trace.enabled:
            trace.event("admission", tenant=ticket.tenant, wait_s=wait,
                        probe=ticket.probe, slots=len(lease),
                        breaker_state=self.breaker.state)
        ticket.trace = trace if trace.enabled else None
        df = self.session.sql(ticket.sql)
        try:
            if ticket.analyze:
                from repro.sql.explain import explain_analyze_report
                from repro.sql.optimizer import optimize
                from repro.sql.planner import Planner

                optimized = optimize(df.plan)
                physical = Planner(
                    self.session.conf,
                    cache=self.session.cache_manager).plan_query(optimized)
                result = self.session.execute_physical(
                    physical, trace=trace, slots=lease, queued_s=wait)
                self._stamp(ticket, result, wait, lease)
                ticket.report = explain_analyze_report(physical, result)
            else:
                result = self.session.execute_plan(
                    df.plan, trace=trace, slots=lease, queued_s=wait)
                self._stamp(ticket, result, wait, lease)
        except ReproError as exc:
            ticket.error = exc
            ticket.status = FAILED
            if deadline is not None:
                return max(0.0, deadline - wait)
            return DEFAULT_FAILED_COST_S
        ticket.query_result = result
        ticket.status = COMPLETED
        return result.seconds

    def _stamp(self, ticket: Ticket, result, wait: float, lease) -> None:
        """Attach the admission record to the executed result."""
        result.serving = {
            "tenant": ticket.tenant,
            "wait_s": wait,
            "arrival_s": ticket.at_s,
            "start_s": ticket.start_s,
            "slots": len(lease),
            "probe": ticket.probe,
            "breaker_state": self.breaker.state,
        }
        if wait > 0:
            result.metrics.incr("serving.queue_wait_s", wait)

    # -- completions -------------------------------------------------------
    def _on_completion(self, now_s: float, ticket: Ticket) -> None:
        degraded = ticket.error is not None
        result = ticket.query_result
        if not degraded and result is not None:
            m = result.metrics
            degraded = (
                m.get("hbase.retries") >= self.config.breaker_retry_signal
                or m.get("shc.scan_resumes") >= 1
                or self.breaker.is_degraded_latency(result.seconds)
            )
        if self.hbase_cluster is not None:
            dead = 0
            for s in self.hbase_cluster.region_servers.values():
                if not s.alive:
                    dead += 1
                    # feed replica-aware read routing: dead servers stay out
                    # of the candidate set until reported healthy again
                    self.hbase_cluster.report_server_health(
                        s.server_id, healthy=False)
            if dead > self._dead_servers_seen:
                self._dead_servers_seen = dead
                degraded = True
        ticket.degraded = degraded
        self.breaker.record(now_s, degraded, probe=ticket.probe)
        self._note_transitions(now_s, ticket)
        if ticket.status == COMPLETED:
            self.metrics.incr("serving.completed")
        else:
            self.metrics.incr("serving.failed")

    def _note_transitions(self, now_s: float, ticket: Ticket) -> None:
        """Fold any new breaker transitions into metrics and the trace."""
        new = self.breaker.transitions[self._seen_transitions:]
        self._seen_transitions = len(self.breaker.transitions)
        for tr in new:
            if tr["to"] == "open":
                self.metrics.incr("serving.breaker.opened")
            elif tr["to"] == "half-open":
                self.metrics.incr("serving.breaker.half_opened")
            else:
                self.metrics.incr("serving.breaker.closed")
            span = ticket.trace if ticket.trace is not None else NOOP_SPAN
            if span.enabled:
                span.event("breaker", at_s=tr["at_s"],
                           from_state=tr["from"], to_state=tr["to"],
                           reason=tr["reason"])

    # -- shedding ----------------------------------------------------------
    def _shed(self, ticket: Ticket, now_s: float, reason: str,
              retry_after_s: float) -> None:
        ticket.status = SHED
        ticket.reason = reason
        ticket.retry_after_s = retry_after_s
        ticket.finish_s = now_s
        ticket.error = OverloadedError(
            f"request #{ticket.seq} ({ticket.tenant}) shed: {reason}, "
            f"retry after {retry_after_s:.3f}s",
            reason=reason, retry_after_s=retry_after_s, tenant=ticket.tenant)
        self.metrics.incr("serving.shed")
        if reason == "queue_full":
            self.metrics.incr("serving.shed.queue_full")
        elif reason == "throttled":
            self.metrics.incr("serving.shed.throttled")
        elif reason == "breaker_open":
            self.metrics.incr("serving.shed.breaker_open")
        elif reason == "deadline":
            self.metrics.incr("serving.shed.deadline")
        else:
            self.metrics.incr("serving.shed.injected")
        if bool(self.session.conf.get("tracing.enabled", False)):
            span = Span("query", "query", tenant=ticket.tenant)
            span.event("shed", tenant=ticket.tenant, reason=reason,
                       retry_after_s=retry_after_s,
                       breaker_state=self.breaker.state)
            span.finish(sim_seconds=0.0)
            ticket.trace = span

    # -- inspection --------------------------------------------------------
    def shed_set(self, tickets: List[Ticket]) -> List[Tuple[int, str]]:
        """The ``(seq, reason)`` pairs of every shed request, in order --
        what the chaos suite pins byte-identical across runs."""
        return [(t.seq, t.reason or "?") for t in tickets if t.status == SHED]

    def __repr__(self) -> str:
        return (f"QueryServer(enabled={self.enabled}, "
                f"tenants={sorted(self._tenants)}, "
                f"breaker={self.breaker.state})")

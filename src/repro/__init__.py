"""Reproduction of *SHC: Distributed Query Processing for Non-Relational Data Store*.

The package is organised as the paper's stack:

- :mod:`repro.hbase`   -- an HBase-like distributed column-oriented key-value store
  (regions, region servers, HMaster, ZooKeeper, WAL, store files, filters, security).
- :mod:`repro.engine`  -- a Spark-like cluster compute engine (RDDs, DAG scheduler,
  executors with data locality, shuffle accounting).
- :mod:`repro.sql`     -- a Spark-SQL / Catalyst-like relational layer (parser,
  analyzer, rule-based optimizer, physical planner, DataFrame API, Data Source API).
- :mod:`repro.core`    -- **SHC itself**: catalog data model, byte coders, range
  algebra, partition pruning, predicate pushdown, the HBase scan RDD, write path,
  connection cache and the credentials manager.
- :mod:`repro.baselines` -- the vanilla "Spark SQL over HBase" comparator.
- :mod:`repro.workloads` -- TPC-DS-like generators and the q38/q39 queries.
- :mod:`repro.bench`   -- the experiment harness regenerating the paper's tables
  and figures.
"""

from repro._version import __version__

__all__ = ["__version__"]

"""Stage runners: serial and thread-pool task execution with event-driven placement.

The scheduler used to run every task of a stage serially on the driver
thread, so real wall-clock time was single-threaded no matter how many
executor slots the cluster had.  This module makes execution genuinely
parallel while keeping the simulated cost ledger intact:

* :class:`SerialStageRunner` is the deterministic baseline.  It fixes the
  old placement bug (least-loaded by task *count* while makespan was
  tracked in *time*) by placing each task on the slot that frees earliest
  in simulated time, preferring locality.

* :class:`ThreadPoolStageRunner` runs one worker per executor slot and
  dispatches tasks **event-driven**: whenever a slot frees up, the
  dispatcher picks the next task for it, preferring tasks local to that
  slot's host.  A task whose preferred hosts are all busy waits briefly
  (delay scheduling, counted in scheduling events rather than seconds so
  runs stay reproducible) before accepting a non-local slot.

Both runners account simulated time per slot -- a task's simulated start is
the moment its slot frees -- so the stage's simulated makespan is consistent
with the placement that actually happened, even when task durations are
heavily skewed.  Wall-clock time is measured around the whole stage and
reported separately; ``realtime_scale`` optionally sleeps each worker for
``simulated_seconds * scale`` to emulate the I/O wait a real scan would
spend off-CPU, which is what makes thread-level overlap visible to a
wall-clock benchmark.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.metrics import CostLedger
from repro.engine.cluster import Executor

#: scheduling events a task waits for a preferred slot before going remote
DEFAULT_LOCALITY_WAIT_SKIPS = 2


@dataclass
class TaskSpec:
    """One schedulable unit: a task body plus its locality preferences."""

    index: int
    body: Callable[..., object]          # Callable[[TaskContext], object]
    preferred: Tuple[str, ...] = ()
    skips: int = 0                       # delay-scheduling bookkeeping
    #: True for a duplicate launched by speculative execution
    speculative: bool = False
    #: set by the task executor while an attempt runs, so the dispatcher can
    #: observe a straggler's accrued simulated cost and where it is running
    live_ledger: Optional[CostLedger] = None
    live_host: Optional[str] = None


@dataclass
class TaskOutcome:
    """Everything one finished task reports back to the scheduler."""

    index: int
    value: object
    ledger: CostLedger
    placed_host: str
    ran_on_host: str
    failures: int = 0
    slot_index: int = -1
    sim_start_s: float = 0.0
    sim_end_s: float = 0.0

    @property
    def rehosted(self) -> bool:
        """True when retries moved the task off its original placement."""
        return self.ran_on_host != self.placed_host


@dataclass
class StageExecution:
    """A completed stage: per-task outcomes plus both timing views."""

    outcomes: List[TaskOutcome]          # in task-index order
    sim_makespan_s: float                # event-simulated stage duration
    wall_clock_s: float                  # measured on the driver
    speculative_launched: int = 0        # duplicates launched for stragglers
    speculative_won: int = 0             # duplicates that beat the original
    #: ledgers of race losers: their results were discarded but their
    #: simulated work still happened and must be counted by the scheduler
    wasted: List[CostLedger] = field(default_factory=list)


#: the scheduler-provided task executor: (spec, host, slot_index) -> outcome
RunTaskFn = Callable[[TaskSpec, str, int], TaskOutcome]


class StageRunner:
    """Shared placement machinery for the serial and thread-pool runners."""

    def __init__(
        self,
        slots: Sequence[Executor],
        task_launch_s: float,
        locality_enabled: bool = True,
        locality_wait_skips: int = DEFAULT_LOCALITY_WAIT_SKIPS,
        realtime_scale: float = 0.0,
        speculation_enabled: bool = False,
        speculation_multiplier: float = 1.5,
        speculation_quantile: float = 0.5,
    ) -> None:
        if not slots:
            raise ValueError("a stage runner needs at least one slot")
        self.slots = list(slots)
        self._slot_hosts = frozenset(s.host for s in self.slots)
        self.task_launch_s = task_launch_s
        self.locality_enabled = locality_enabled
        self.locality_wait_skips = max(0, locality_wait_skips)
        self.realtime_scale = realtime_scale
        self.speculation_enabled = speculation_enabled
        self.speculation_multiplier = speculation_multiplier
        self.speculation_quantile = speculation_quantile

    # -- helpers -----------------------------------------------------------
    def _least_loaded(self, candidates: Sequence[int],
                      sim_free_at: Sequence[float]) -> int:
        """The candidate slot that frees earliest in *simulated* time."""
        return min(candidates, key=lambda i: (sim_free_at[i], i))

    def _emulate_io(self, ledger: CostLedger) -> None:
        if self.realtime_scale > 0.0 and ledger.seconds > 0.0:
            time.sleep(ledger.seconds * self.realtime_scale)

    def _account(self, outcome: TaskOutcome, slot_idx: int,
                 sim_free_at: List[float]) -> None:
        """Charge a finished task to its slot's simulated timeline."""
        start = sim_free_at[slot_idx]
        outcome.slot_index = slot_idx
        outcome.sim_start_s = start
        outcome.sim_end_s = start + self.task_launch_s + outcome.ledger.seconds
        sim_free_at[slot_idx] = outcome.sim_end_s

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        """Execute one stage: place and run every task, return the outcomes.

        ``run_task`` is the scheduler's task executor (it owns retries and
        ledgers); the runner owns *placement* -- which slot each task gets,
        in which order, and how the slots' simulated timelines advance.
        Implementations must return outcomes sorted by task index and a
        simulated makespan consistent with the placement they chose.
        """
        raise NotImplementedError


class SerialStageRunner(StageRunner):
    """Runs tasks one at a time on the driver thread (the measured baseline).

    Placement is locality-first with a least-loaded-*by-time* fallback: the
    slot whose simulated timeline frees earliest gets the task, which keeps
    the simulated makespan honest when task durations are skewed.
    """

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        sim_free_at = [0.0] * len(self.slots)
        outcomes: List[TaskOutcome] = []
        wall_start = time.perf_counter()
        for spec in tasks:
            slot_idx = self._place(spec, sim_free_at)
            outcome = run_task(spec, self.slots[slot_idx].host, slot_idx)
            self._account(outcome, slot_idx, sim_free_at)
            self._emulate_io(outcome.ledger)
            outcomes.append(outcome)
        wall = time.perf_counter() - wall_start
        outcomes.sort(key=lambda o: o.index)
        return StageExecution(outcomes, max(sim_free_at, default=0.0), wall)

    def _place(self, spec: TaskSpec, sim_free_at: Sequence[float]) -> int:
        every = range(len(self.slots))
        if self.locality_enabled and spec.preferred:
            on_pref = [i for i in every if self.slots[i].host in spec.preferred]
            if on_pref:
                return self._least_loaded(on_pref, sim_free_at)
        return self._least_loaded(every, sim_free_at)


class ThreadPoolStageRunner(StageRunner):
    """One worker thread per executor slot; event-driven, locality-aware.

    The dispatcher keeps every slot busy when it can: each time a slot
    frees up it is offered (1) a pending task that prefers its host, then
    (2) a task with no preference, then (3) a task that has already waited
    ``locality_wait_skips`` scheduling events for a preferred slot (delay
    scheduling).  If nothing is running and nothing could be dispatched,
    the head task is forced onto the least-loaded slot so the stage always
    makes progress.
    """

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        pending: Deque[TaskSpec] = deque(tasks)
        total = len(tasks)
        sim_free_at = [0.0] * len(self.slots)
        free_slots: List[int] = list(range(len(self.slots)))
        in_flight: Dict[Future, Tuple[TaskSpec, int]] = {}
        outcomes: List[TaskOutcome] = []
        done_indices: Set[int] = set()
        speculated: Set[int] = set()
        wasted: List[CostLedger] = []
        spec_launched = 0
        spec_won = 0
        failure: Optional[BaseException] = None
        wall_start = time.perf_counter()

        with ThreadPoolExecutor(
            max_workers=len(self.slots), thread_name_prefix="shc-task"
        ) as pool:
            while pending or in_flight:
                if failure is None:
                    dispatched = self._dispatch_round(
                        pending, free_slots, sim_free_at, in_flight, pool, run_task
                    )
                    if not in_flight and not dispatched and pending:
                        # every slot is free yet all pending tasks are still
                        # waiting for locality: force the head task through
                        spec = pending.popleft()
                        slot_idx = self._least_loaded(free_slots, sim_free_at)
                        free_slots.remove(slot_idx)
                        self._submit(spec, slot_idx, in_flight, pool, run_task)
                    if (self.speculation_enabled and not pending
                            and free_slots and in_flight):
                        spec_launched += self._speculate(
                            outcomes, done_indices, speculated, total,
                            free_slots, sim_free_at, in_flight, pool, run_task
                        )
                elif not in_flight:
                    break  # a task aborted and everything running has drained
                done, __ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    spec, slot_idx = in_flight.pop(future)
                    free_slots.append(slot_idx)
                    try:
                        outcome = future.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        if spec.index in done_indices:
                            continue  # its twin already delivered the result
                        if any(s.index == spec.index
                               for s, __s in in_flight.values()):
                            continue  # the surviving twin may still win
                        if failure is None:
                            failure = exc
                            pending.clear()
                        continue
                    if outcome.index in done_indices:
                        # lost the speculation race: the duplicate's result is
                        # discarded but its simulated work still gets counted
                        wasted.append(outcome.ledger)
                        continue
                    done_indices.add(outcome.index)
                    if spec.speculative:
                        spec_won += 1
                    self._account(outcome, slot_idx, sim_free_at)
                    outcomes.append(outcome)
        if failure is not None:
            raise failure
        wall = time.perf_counter() - wall_start
        outcomes.sort(key=lambda o: o.index)
        return StageExecution(outcomes, max(sim_free_at, default=0.0), wall,
                              speculative_launched=spec_launched,
                              speculative_won=spec_won, wasted=wasted)

    # -- speculative execution ---------------------------------------------
    def _speculate(
        self,
        outcomes: List[TaskOutcome],
        done_indices: Set[int],
        speculated: Set[int],
        total: int,
        free_slots: List[int],
        sim_free_at: Sequence[float],
        in_flight: Dict[Future, Tuple[TaskSpec, int]],
        pool: ThreadPoolExecutor,
        run_task: RunTaskFn,
    ) -> int:
        """Duplicate straggling in-flight tasks onto free slots (tail mitigation).

        Spark-style: once a quantile of the stage has finished, any still
        running task whose live simulated cost exceeds ``multiplier x median``
        of the completed durations gets one duplicate on a *different* host.
        First finisher wins; the loser's ledger lands in ``wasted``.  The
        winner alone advances its slot's simulated timeline -- in the
        simulated cluster the loser is killed the moment the winner reports,
        which is exactly the tail-latency cut speculation exists to buy.
        """
        needed = max(1, int(self.speculation_quantile * total))
        if len(outcomes) < needed:
            return 0
        durations = sorted(o.ledger.seconds for o in outcomes)
        median = durations[len(durations) // 2]
        if median <= 0.0:
            return 0
        threshold = self.speculation_multiplier * median
        launched = 0
        for spec, __slot in list(in_flight.values()):
            if not free_slots:
                break
            if (spec.speculative or spec.index in speculated
                    or spec.index in done_indices):
                continue
            live = spec.live_ledger
            if live is None or live.seconds < threshold:
                continue
            candidates = [i for i in free_slots
                          if self.slots[i].host != spec.live_host]
            if not candidates:
                continue
            slot_idx = self._least_loaded(candidates, sim_free_at)
            free_slots.remove(slot_idx)
            copy = TaskSpec(index=spec.index, body=spec.body, speculative=True)
            speculated.add(spec.index)
            self._submit(copy, slot_idx, in_flight, pool, run_task)
            launched += 1
        return launched

    # -- dispatch ----------------------------------------------------------
    def _dispatch_round(
        self,
        pending: Deque[TaskSpec],
        free_slots: List[int],
        sim_free_at: Sequence[float],
        in_flight: Dict[Future, Tuple[TaskSpec, int]],
        pool: ThreadPoolExecutor,
        run_task: RunTaskFn,
    ) -> int:
        """Offer every free slot a task; returns how many were dispatched."""
        dispatched = 0
        # offer the slot that frees earliest (in simulated time) first
        for slot_idx in sorted(list(free_slots),
                               key=lambda i: (sim_free_at[i], i)):
            if not pending:
                break
            spec = self._pick_for_slot(self.slots[slot_idx].host, pending)
            if spec is None:
                continue
            free_slots.remove(slot_idx)
            self._submit(spec, slot_idx, in_flight, pool, run_task)
            dispatched += 1
        if free_slots and pending:
            # at least one slot went idle waiting on locality: that is one
            # scheduling event each passed-over task has now waited through
            for spec in pending:
                spec.skips += 1
        return dispatched

    def _pick_for_slot(self, host: str,
                       pending: Deque[TaskSpec]) -> Optional[TaskSpec]:
        """The best pending task for a freed slot, honouring delay scheduling.

        A task with a preferred host *somewhere* in the cluster waits up to
        ``locality_wait_skips`` scheduling events (dispatch rounds in which
        a slot sat idle) for that host to free before accepting a non-local
        slot -- counting events rather than wall time keeps runs
        reproducible.  A task whose preferred hosts have no slot at all is
        treated as unconstrained: it must run remote anyway, so waiting
        would only serialise the stage behind slots it can never use.
        """
        if not self.locality_enabled:
            return pending.popleft()
        fallback: Optional[TaskSpec] = None
        for spec in pending:
            if (not spec.preferred or host in spec.preferred
                    or not self._locality_possible(spec)):
                pending.remove(spec)
                return spec
            if fallback is None and spec.skips >= self.locality_wait_skips:
                fallback = spec
        if fallback is not None:
            pending.remove(fallback)
        return fallback

    def _locality_possible(self, spec: TaskSpec) -> bool:
        """Does any slot in the cluster live on one of the preferred hosts?"""
        return any(host in self._slot_hosts for host in spec.preferred)

    def _submit(
        self,
        spec: TaskSpec,
        slot_idx: int,
        in_flight: Dict[Future, Tuple[TaskSpec, int]],
        pool: ThreadPoolExecutor,
        run_task: RunTaskFn,
    ) -> None:
        host = self.slots[slot_idx].host

        def work() -> TaskOutcome:
            outcome = run_task(spec, host, slot_idx)
            self._emulate_io(outcome.ledger)
            return outcome

        in_flight[pool.submit(work)] = (spec, slot_idx)

"""Stage runners: serial and thread-pool task execution with event-driven placement.

The scheduler used to run every task of a stage serially on the driver
thread, so real wall-clock time was single-threaded no matter how many
executor slots the cluster had.  This module makes execution genuinely
parallel while keeping the simulated cost ledger intact:

* :class:`SerialStageRunner` is the deterministic baseline.  It fixes the
  old placement bug (least-loaded by task *count* while makespan was
  tracked in *time*) by placing each task on the slot that frees earliest
  in simulated time, preferring locality.

* :class:`ThreadPoolStageRunner` runs one worker per executor slot and
  dispatches tasks **event-driven**: whenever a slot frees up, the
  dispatcher picks the next task for it, preferring tasks local to that
  slot's host.  A task whose preferred hosts are all busy waits briefly
  (delay scheduling, counted in scheduling events rather than seconds so
  runs stay reproducible) before accepting a non-local slot.

Both runners account simulated time per slot -- a task's simulated start is
the moment its slot frees -- so the stage's simulated makespan is consistent
with the placement that actually happened, even when task durations are
heavily skewed.  Wall-clock time is measured around the whole stage and
reported separately; ``realtime_scale`` optionally sleeps each worker for
``simulated_seconds * scale`` to emulate the I/O wait a real scan would
spend off-CPU, which is what makes thread-level overlap visible to a
wall-clock benchmark.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.metrics import CostLedger
from repro.engine.cluster import Executor

#: scheduling events a task waits for a preferred slot before going remote
DEFAULT_LOCALITY_WAIT_SKIPS = 2


@dataclass
class TaskSpec:
    """One schedulable unit: a task body plus its locality preferences."""

    index: int
    body: Callable[..., object]          # Callable[[TaskContext], object]
    preferred: Tuple[str, ...] = ()
    skips: int = 0                       # delay-scheduling bookkeeping


@dataclass
class TaskOutcome:
    """Everything one finished task reports back to the scheduler."""

    index: int
    value: object
    ledger: CostLedger
    placed_host: str
    ran_on_host: str
    failures: int = 0
    slot_index: int = -1
    sim_start_s: float = 0.0
    sim_end_s: float = 0.0

    @property
    def rehosted(self) -> bool:
        """True when retries moved the task off its original placement."""
        return self.ran_on_host != self.placed_host


@dataclass
class StageExecution:
    """A completed stage: per-task outcomes plus both timing views."""

    outcomes: List[TaskOutcome]          # in task-index order
    sim_makespan_s: float                # event-simulated stage duration
    wall_clock_s: float                  # measured on the driver


#: the scheduler-provided task executor: (spec, host, slot_index) -> outcome
RunTaskFn = Callable[[TaskSpec, str, int], TaskOutcome]


class StageRunner:
    """Shared placement machinery for the serial and thread-pool runners."""

    def __init__(
        self,
        slots: Sequence[Executor],
        task_launch_s: float,
        locality_enabled: bool = True,
        locality_wait_skips: int = DEFAULT_LOCALITY_WAIT_SKIPS,
        realtime_scale: float = 0.0,
    ) -> None:
        if not slots:
            raise ValueError("a stage runner needs at least one slot")
        self.slots = list(slots)
        self._slot_hosts = frozenset(s.host for s in self.slots)
        self.task_launch_s = task_launch_s
        self.locality_enabled = locality_enabled
        self.locality_wait_skips = max(0, locality_wait_skips)
        self.realtime_scale = realtime_scale

    # -- helpers -----------------------------------------------------------
    def _least_loaded(self, candidates: Sequence[int],
                      sim_free_at: Sequence[float]) -> int:
        """The candidate slot that frees earliest in *simulated* time."""
        return min(candidates, key=lambda i: (sim_free_at[i], i))

    def _emulate_io(self, ledger: CostLedger) -> None:
        if self.realtime_scale > 0.0 and ledger.seconds > 0.0:
            time.sleep(ledger.seconds * self.realtime_scale)

    def _account(self, outcome: TaskOutcome, slot_idx: int,
                 sim_free_at: List[float]) -> None:
        """Charge a finished task to its slot's simulated timeline."""
        start = sim_free_at[slot_idx]
        outcome.slot_index = slot_idx
        outcome.sim_start_s = start
        outcome.sim_end_s = start + self.task_launch_s + outcome.ledger.seconds
        sim_free_at[slot_idx] = outcome.sim_end_s

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        raise NotImplementedError


class SerialStageRunner(StageRunner):
    """Runs tasks one at a time on the driver thread (the measured baseline).

    Placement is locality-first with a least-loaded-*by-time* fallback: the
    slot whose simulated timeline frees earliest gets the task, which keeps
    the simulated makespan honest when task durations are skewed.
    """

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        sim_free_at = [0.0] * len(self.slots)
        outcomes: List[TaskOutcome] = []
        wall_start = time.perf_counter()
        for spec in tasks:
            slot_idx = self._place(spec, sim_free_at)
            outcome = run_task(spec, self.slots[slot_idx].host, slot_idx)
            self._account(outcome, slot_idx, sim_free_at)
            self._emulate_io(outcome.ledger)
            outcomes.append(outcome)
        wall = time.perf_counter() - wall_start
        outcomes.sort(key=lambda o: o.index)
        return StageExecution(outcomes, max(sim_free_at, default=0.0), wall)

    def _place(self, spec: TaskSpec, sim_free_at: Sequence[float]) -> int:
        every = range(len(self.slots))
        if self.locality_enabled and spec.preferred:
            on_pref = [i for i in every if self.slots[i].host in spec.preferred]
            if on_pref:
                return self._least_loaded(on_pref, sim_free_at)
        return self._least_loaded(every, sim_free_at)


class ThreadPoolStageRunner(StageRunner):
    """One worker thread per executor slot; event-driven, locality-aware.

    The dispatcher keeps every slot busy when it can: each time a slot
    frees up it is offered (1) a pending task that prefers its host, then
    (2) a task with no preference, then (3) a task that has already waited
    ``locality_wait_skips`` scheduling events for a preferred slot (delay
    scheduling).  If nothing is running and nothing could be dispatched,
    the head task is forced onto the least-loaded slot so the stage always
    makes progress.
    """

    def run(self, tasks: Sequence[TaskSpec], run_task: RunTaskFn) -> StageExecution:
        pending: Deque[TaskSpec] = deque(tasks)
        sim_free_at = [0.0] * len(self.slots)
        free_slots: List[int] = list(range(len(self.slots)))
        in_flight: Dict[Future, Tuple[TaskSpec, int]] = {}
        outcomes: List[TaskOutcome] = []
        failure: Optional[BaseException] = None
        wall_start = time.perf_counter()

        with ThreadPoolExecutor(
            max_workers=len(self.slots), thread_name_prefix="shc-task"
        ) as pool:
            while pending or in_flight:
                if failure is None:
                    dispatched = self._dispatch_round(
                        pending, free_slots, sim_free_at, in_flight, pool, run_task
                    )
                    if not in_flight and not dispatched and pending:
                        # every slot is free yet all pending tasks are still
                        # waiting for locality: force the head task through
                        spec = pending.popleft()
                        slot_idx = self._least_loaded(free_slots, sim_free_at)
                        free_slots.remove(slot_idx)
                        self._submit(spec, slot_idx, in_flight, pool, run_task)
                elif not in_flight:
                    break  # a task aborted and everything running has drained
                done, __ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    spec, slot_idx = in_flight.pop(future)
                    free_slots.append(slot_idx)
                    try:
                        outcome = future.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        if failure is None:
                            failure = exc
                            pending.clear()
                        continue
                    self._account(outcome, slot_idx, sim_free_at)
                    outcomes.append(outcome)
        if failure is not None:
            raise failure
        wall = time.perf_counter() - wall_start
        outcomes.sort(key=lambda o: o.index)
        return StageExecution(outcomes, max(sim_free_at, default=0.0), wall)

    # -- dispatch ----------------------------------------------------------
    def _dispatch_round(
        self,
        pending: Deque[TaskSpec],
        free_slots: List[int],
        sim_free_at: Sequence[float],
        in_flight: Dict[Future, Tuple[TaskSpec, int]],
        pool: ThreadPoolExecutor,
        run_task: RunTaskFn,
    ) -> int:
        """Offer every free slot a task; returns how many were dispatched."""
        dispatched = 0
        # offer the slot that frees earliest (in simulated time) first
        for slot_idx in sorted(list(free_slots),
                               key=lambda i: (sim_free_at[i], i)):
            if not pending:
                break
            spec = self._pick_for_slot(self.slots[slot_idx].host, pending)
            if spec is None:
                continue
            free_slots.remove(slot_idx)
            self._submit(spec, slot_idx, in_flight, pool, run_task)
            dispatched += 1
        if free_slots and pending:
            # at least one slot went idle waiting on locality: that is one
            # scheduling event each passed-over task has now waited through
            for spec in pending:
                spec.skips += 1
        return dispatched

    def _pick_for_slot(self, host: str,
                       pending: Deque[TaskSpec]) -> Optional[TaskSpec]:
        """The best pending task for a freed slot, honouring delay scheduling.

        A task with a preferred host *somewhere* in the cluster waits up to
        ``locality_wait_skips`` scheduling events (dispatch rounds in which
        a slot sat idle) for that host to free before accepting a non-local
        slot -- counting events rather than wall time keeps runs
        reproducible.  A task whose preferred hosts have no slot at all is
        treated as unconstrained: it must run remote anyway, so waiting
        would only serialise the stage behind slots it can never use.
        """
        if not self.locality_enabled:
            return pending.popleft()
        fallback: Optional[TaskSpec] = None
        for spec in pending:
            if (not spec.preferred or host in spec.preferred
                    or not self._locality_possible(spec)):
                pending.remove(spec)
                return spec
            if fallback is None and spec.skips >= self.locality_wait_skips:
                fallback = spec
        if fallback is not None:
            pending.remove(fallback)
        return fallback

    def _locality_possible(self, spec: TaskSpec) -> bool:
        """Does any slot in the cluster live on one of the preferred hosts?"""
        return any(host in self._slot_hosts for host in spec.preferred)

    def _submit(
        self,
        spec: TaskSpec,
        slot_idx: int,
        in_flight: Dict[Future, Tuple[TaskSpec, int]],
        pool: ThreadPoolExecutor,
        run_task: RunTaskFn,
    ) -> None:
        host = self.slots[slot_idx].host

        def work() -> TaskOutcome:
            outcome = run_task(spec, host, slot_idx)
            self._emulate_io(outcome.ledger)
            return outcome

        in_flight[pool.submit(work)] = (spec, slot_idx)

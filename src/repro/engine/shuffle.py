"""Shuffle bookkeeping: size estimation, the block store, runtime statistics.

Shuffle volume is a first-class paper metric (Figure 5 reports KB shuffled
per query), so map tasks serialise their output buckets through
:func:`estimate_size` and the scheduler charges both the write and the read
side against the shuffle bandwidth of the cost model.

Adaptive query execution (docs/adaptive.md) additionally collects
:class:`ShuffleRuntimeStats` at map-write time: per-reduce-partition row and
byte counts, per-``(map, reduce)`` block sizes (the split plan for skewed
partitions), and a byte-weighted :class:`KeySketch` of the hottest join
keys.  Collection is opt-in per stage so the non-adaptive path stays
byte-identical.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_OBJ_OVERHEAD = 16


def estimate_size(value: object) -> int:
    """Approximate serialized size of a row/value in bytes.

    Deterministic and cheap; mirrors the flat binary encoding an engine's
    row serializer would produce (fixed 8 bytes for numbers, payload length
    for strings/bytes, recursive for tuples/lists/dicts).
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    if isinstance(value, (bytes, bytearray)):
        return len(value) + 4
    if isinstance(value, (tuple, list)):
        return _OBJ_OVERHEAD + sum(estimate_size(v) for v in value)
    if isinstance(value, dict):
        return _OBJ_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    # Row-like objects expose .values
    values = getattr(value, "values", None)
    if values is not None and not callable(values):
        return estimate_size(values)
    return _OBJ_OVERHEAD


class ShuffleBlockStore:
    """Holds map-task output buckets between the two sides of an exchange.

    Thread-safe: concurrent map tasks register blocks while reduce tasks of
    an earlier shuffle stream theirs.  Blocks are indexed by
    ``(shuffle_id, reduce_partition)`` so a fetch touches only its own
    bucket instead of scanning every block in the store, and reads take a
    snapshot under the lock so iteration never races a concurrent writer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (shuffle_id, reduce_partition) -> {map_partition: rows}
        self._buckets: Dict[Tuple[int, int], Dict[int, List[object]]] = {}

    def put_block(self, shuffle_id: int, map_partition: int,
                  reduce_partition: int, rows: List[object]) -> None:
        with self._lock:
            bucket = self._buckets.setdefault((shuffle_id, reduce_partition), {})
            bucket[map_partition] = rows

    def blocks_for(self, shuffle_id: int,
                   reduce_partition: int) -> List[Tuple[int, List[object]]]:
        """One ``(map_partition, rows)`` entry per upstream map output.

        Deterministically ordered by map partition; the list is a snapshot,
        so callers may consume it lazily without holding the lock.
        """
        with self._lock:
            bucket = self._buckets.get((shuffle_id, reduce_partition), {})
            return sorted(bucket.items())

    def fetch(self, shuffle_id: int, reduce_partition: int) -> Iterable[object]:
        """All rows destined for one reduce partition, across map outputs."""
        for __, rows in self.blocks_for(shuffle_id, reduce_partition):
            yield from rows

    def clear(self, shuffle_id: int) -> None:
        with self._lock:
            doomed = [k for k in self._buckets if k[0] == shuffle_id]
            for key in doomed:
                del self._buckets[key]


class KeySketch:
    """Byte-weighted heavy-hitter sketch over shuffle keys (space-saving).

    Tracks the approximately-heaviest ``capacity`` keys by serialized bytes.
    When a new key arrives at a full sketch it inherits the weight of the
    lightest tracked key (the classic space-saving overestimate), which is
    exactly what skew diagnosis needs: a genuinely hot key can never be
    missing from the sketch.  Deterministic: eviction ties resolve by
    insertion order, and merges are applied in map-task order.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._weights: Dict[object, float] = {}

    def add(self, key: object, weight: float) -> None:
        """Fold one key occurrence of ``weight`` bytes into the sketch."""
        weights = self._weights
        if key in weights:
            weights[key] += weight
        elif len(weights) < self.capacity:
            weights[key] = weight
        else:
            victim = min(weights, key=weights.__getitem__)
            floor = weights.pop(victim)
            weights[key] = floor + weight

    def merge(self, other: "KeySketch") -> None:
        """Fold another sketch into this one (map-output combination)."""
        for key, weight in other._weights.items():
            self.add(key, weight)

    def top(self, n: Optional[int] = None) -> List[Tuple[object, float]]:
        """Tracked ``(key, bytes)`` pairs, heaviest first (ties by repr)."""
        ranked = sorted(self._weights.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked if n is None else ranked[:n]


class ShuffleRuntimeStats:
    """What one shuffle's map stage actually wrote, per reduce partition.

    The raw material for adaptive re-optimization (docs/adaptive.md):
    ``partition_bytes``/``partition_rows`` drive broadcast conversion and
    partition coalescing, ``block_bytes[map][reduce]`` is the split plan for
    skewed partitions, and ``sketch`` names the hot keys for EXPLAIN
    ANALYZE's reoptimization events.
    """

    def __init__(self, shuffle_id: int, num_partitions: int) -> None:
        self.shuffle_id = shuffle_id
        self.num_partitions = num_partitions
        self.partition_rows: List[int] = [0] * num_partitions
        self.partition_bytes: List[int] = [0] * num_partitions
        #: per map task, the bytes it wrote to each reduce partition
        self.block_bytes: List[List[int]] = []
        self.sketch = KeySketch()

    def add_map_output(self, reduce_rows: Sequence[int],
                       reduce_bytes: Sequence[int],
                       sketch: "KeySketch") -> None:
        """Fold one map task's per-reduce write counts into the totals."""
        for p in range(self.num_partitions):
            self.partition_rows[p] += reduce_rows[p]
            self.partition_bytes[p] += reduce_bytes[p]
        self.block_bytes.append(list(reduce_bytes))
        self.sketch.merge(sketch)

    @property
    def total_rows(self) -> int:
        """Rows written across every reduce partition."""
        return sum(self.partition_rows)

    @property
    def total_bytes(self) -> int:
        """Bytes written across every reduce partition."""
        return sum(self.partition_bytes)

    def hot_key(self, partition: int) -> Optional[Tuple[object, float]]:
        """The sketch's heaviest key hashing to ``partition``, if any."""
        for key, weight in self.sketch.top():
            if stable_hash(key) % self.num_partitions == partition:
                return key, weight
        return None


def stable_hash(value: object) -> int:
    """Deterministic hash for shuffle partitioning.

    Python's built-in ``hash`` is salted per process for strings, which would
    make shuffle placement (and therefore per-partition metrics) vary between
    runs; this one is stable across processes.
    """
    import zlib

    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 1
        for item in value:
            acc = (acc * 31 + stable_hash(item)) & 0x7FFFFFFF
        return acc
    return zlib.crc32(repr(value).encode("utf-8"))

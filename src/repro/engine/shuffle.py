"""Shuffle bookkeeping: size estimation and the in-memory block store.

Shuffle volume is a first-class paper metric (Figure 5 reports KB shuffled
per query), so map tasks serialise their output buckets through
:func:`estimate_size` and the scheduler charges both the write and the read
side against the shuffle bandwidth of the cost model.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Tuple

_OBJ_OVERHEAD = 16


def estimate_size(value: object) -> int:
    """Approximate serialized size of a row/value in bytes.

    Deterministic and cheap; mirrors the flat binary encoding an engine's
    row serializer would produce (fixed 8 bytes for numbers, payload length
    for strings/bytes, recursive for tuples/lists/dicts).
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    if isinstance(value, (bytes, bytearray)):
        return len(value) + 4
    if isinstance(value, (tuple, list)):
        return _OBJ_OVERHEAD + sum(estimate_size(v) for v in value)
    if isinstance(value, dict):
        return _OBJ_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    # Row-like objects expose .values
    values = getattr(value, "values", None)
    if values is not None and not callable(values):
        return estimate_size(values)
    return _OBJ_OVERHEAD


class ShuffleBlockStore:
    """Holds map-task output buckets between the two sides of an exchange.

    Thread-safe: concurrent map tasks register blocks while reduce tasks of
    an earlier shuffle stream theirs.  Blocks are indexed by
    ``(shuffle_id, reduce_partition)`` so a fetch touches only its own
    bucket instead of scanning every block in the store, and reads take a
    snapshot under the lock so iteration never races a concurrent writer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (shuffle_id, reduce_partition) -> {map_partition: rows}
        self._buckets: Dict[Tuple[int, int], Dict[int, List[object]]] = {}

    def put_block(self, shuffle_id: int, map_partition: int,
                  reduce_partition: int, rows: List[object]) -> None:
        with self._lock:
            bucket = self._buckets.setdefault((shuffle_id, reduce_partition), {})
            bucket[map_partition] = rows

    def blocks_for(self, shuffle_id: int,
                   reduce_partition: int) -> List[Tuple[int, List[object]]]:
        """One ``(map_partition, rows)`` entry per upstream map output.

        Deterministically ordered by map partition; the list is a snapshot,
        so callers may consume it lazily without holding the lock.
        """
        with self._lock:
            bucket = self._buckets.get((shuffle_id, reduce_partition), {})
            return sorted(bucket.items())

    def fetch(self, shuffle_id: int, reduce_partition: int) -> Iterable[object]:
        """All rows destined for one reduce partition, across map outputs."""
        for __, rows in self.blocks_for(shuffle_id, reduce_partition):
            yield from rows

    def clear(self, shuffle_id: int) -> None:
        with self._lock:
            doomed = [k for k in self._buckets if k[0] == shuffle_id]
            for key in doomed:
                del self._buckets[key]


def stable_hash(value: object) -> int:
    """Deterministic hash for shuffle partitioning.

    Python's built-in ``hash`` is salted per process for strings, which would
    make shuffle placement (and therefore per-partition metrics) vary between
    runs; this one is stable across processes.
    """
    import zlib

    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, tuple):
        acc = 1
        for item in value:
            acc = (acc * 31 + stable_hash(item)) & 0x7FFFFFFF
        return acc
    return zlib.crc32(repr(value).encode("utf-8"))

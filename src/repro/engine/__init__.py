"""A Spark-like in-memory cluster compute engine (simulated).

Provides RDDs with lineage and preferred locations, a DAG scheduler that
splits jobs at shuffle boundaries, locality-aware task placement over a pool
of executor slots (capped by a YARN-like resource manager), shuffle-volume
accounting, and task-retry fault tolerance.  Task durations are simulated:
each task charges a :class:`~repro.common.metrics.CostLedger` for the work it
performs and the scheduler computes the stage makespan over executor slots.
"""

from repro.engine.cluster import ComputeCluster, Executor, YarnResourceManager
from repro.engine.rdd import RDD, ParallelCollectionRDD, ShuffledRDD
from repro.engine.scheduler import JobResult, TaskContext, TaskScheduler

__all__ = [
    "ComputeCluster",
    "Executor",
    "YarnResourceManager",
    "RDD",
    "ParallelCollectionRDD",
    "ShuffledRDD",
    "TaskScheduler",
    "TaskContext",
    "JobResult",
]

"""The executor-side partition cache behind ``DataFrame.cache()/persist()``.

Spark's ``CacheManager`` keeps materialised query fragments in executor
memory so repeated references skip recomputation; this module reproduces
that tier for the simulation.  Entries are keyed by a *plan fingerprint*
(:func:`repro.sql.fingerprint.plan_fingerprint`), hold one immutable row
list per partition, and are evicted whole, least-recently-used first, when
the byte budget overflows -- a dropped entry is simply recomputed on the
next reference, exactly like Spark's ``MEMORY_ONLY`` storage level.

Correctness under the fault-tolerant runner is the delicate part.  Task
attempts can fail mid-partition, be retried on another host, or race a
speculative duplicate, so :class:`CachingRDD` buffers rows *per attempt*
and publishes the whole partition atomically only when the attempt's
iterator is exhausted; :meth:`CacheManager.publish` is put-if-absent, so
the losing attempt of a speculative race becomes a no-op and a cached
partition can never mix rows from different attempts.  Consumers that stop
early (LIMIT) never exhaust the iterator and therefore never publish.

The session owns one manager and drops every entry on ``shutdown()``, the
same lifecycle discipline the shuffle block store follows, so long-lived
sessions do not leak executor memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.engine.rdd import Partition, RDD
from repro.engine.shuffle import estimate_size


class CachedPartition(NamedTuple):
    """One immutable materialised partition of a cached plan."""

    rows: Tuple[object, ...]
    nbytes: int
    host: str


class CacheManagerStats(NamedTuple):
    """Lifetime counters plus current occupancy of one manager."""

    hits: int
    misses: int
    evicted_entries: int
    current_bytes: int
    capacity_bytes: int
    entries: int


class _Entry:
    """Mutable per-fingerprint state (guarded by the manager's lock)."""

    def __init__(self, fingerprint: str, description: str) -> None:
        self.fingerprint = fingerprint
        self.description = description
        #: number of partitions the plan produces, learned at first execution
        self.expected: Optional[int] = None
        self.partitions: Dict[int, CachedPartition] = {}
        self.nbytes = 0
        #: set when the entry alone exceeds the budget; stops re-admission thrash
        self.oversized = False

    def complete(self) -> bool:
        return (self.expected is not None
                and len(self.partitions) == self.expected
                and not self.oversized)


class CacheManager:
    """Byte-budgeted LRU store of materialised plan fragments.

    All mutation happens under one lock: the parallel stage runner publishes
    partitions from many executor threads, and the session thread-pool can
    run queries over the same cached plan concurrently.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        #: fingerprint -> entry, in LRU order (least recently used first)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evicted_entries = 0

    # -- persist / unpersist ----------------------------------------------
    def register(self, fingerprint: str, description: str = "") -> None:
        """Mark a plan for caching (``persist()``); idempotent."""
        with self._lock:
            if fingerprint not in self._entries:
                self._entries[fingerprint] = _Entry(fingerprint, description)

    def unregister(self, fingerprint: str) -> bool:
        """Drop a plan and its data (``unpersist()``); False if unknown."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is None:
                return False
            self._current_bytes -= entry.nbytes
            return True

    def is_registered(self, fingerprint: str) -> bool:
        """Whether ``persist()`` was called for this fingerprint."""
        with self._lock:
            return fingerprint in self._entries

    def has_registrations(self) -> bool:
        """Cheap gate: False means the planner can skip fingerprinting."""
        with self._lock:
            return bool(self._entries)

    def clear(self) -> int:
        """Drop every entry (session shutdown); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._current_bytes = 0
        return dropped

    # -- execution-side protocol ------------------------------------------
    def expect_partitions(self, fingerprint: str, num_partitions: int) -> None:
        """Pin the partition count the plan produces this run.

        If a previous run saw a different count (the underlying region
        layout changed between runs), the stale partial data is dropped --
        mixing partitions from two different layouts could duplicate or
        lose rows.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            if entry.expected is not None and entry.expected != num_partitions:
                self._current_bytes -= entry.nbytes
                entry.partitions = {}
                entry.nbytes = 0
                entry.oversized = False
            entry.expected = num_partitions

    def read_partition(self, fingerprint: str, index: int) -> Optional[CachedPartition]:
        """One partition's rows if published, bumping the entry's recency."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None  # concurrently unpersisted; not a cache miss
            cached = entry.partitions.get(index)
            if cached is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return cached

    def publish(self, fingerprint: str, index: int, rows: Sequence[object],
                nbytes: int, host: str) -> Tuple[bool, int, int]:
        """Atomically publish one fully-computed partition (put-if-absent).

        Returns ``(published, evicted_entries, evicted_bytes)``.  The first
        attempt to exhaust a partition's iterator wins; later publishes for
        the same ``(fingerprint, index)`` -- a speculative duplicate, a
        retried sibling -- are no-ops, so exactly one attempt's output is
        ever visible.  Publishing past the byte budget evicts other entries
        LRU-first; an entry that alone cannot fit is marked oversized and
        excluded from caching until unpersisted or dropped.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry.oversized:
                return False, 0, 0
            if index in entry.partitions:
                return False, 0, 0
            entry.partitions[index] = CachedPartition(tuple(rows), nbytes, host)
            entry.nbytes += nbytes
            self._current_bytes += nbytes
            self._entries.move_to_end(fingerprint)
            evicted_entries = 0
            evicted_bytes = 0
            while self._current_bytes > self.capacity_bytes:
                # evict data LRU-first, but keep the persist() registration:
                # a dropped entry recomputes (and re-caches) on next use
                victim = next(
                    (e for e in self._entries.values() if e.nbytes > 0), None
                )
                if victim is None or victim.fingerprint == fingerprint:
                    # everything else is gone and we still do not fit: this
                    # plan is bigger than the whole cache
                    self._current_bytes -= entry.nbytes
                    evicted_bytes += entry.nbytes
                    entry.partitions = {}
                    entry.nbytes = 0
                    entry.oversized = True
                    return False, evicted_entries, evicted_bytes
                self._current_bytes -= victim.nbytes
                evicted_entries += 1
                evicted_bytes += victim.nbytes
                victim.partitions = {}
                victim.nbytes = 0
                self._evicted_entries += 1
            return True, evicted_entries, evicted_bytes

    def peek_host(self, fingerprint: str, index: int) -> Optional[str]:
        """The publisher host of a partition, with no stats/LRU side effects.

        Used by the scheduler's locality probe (``preferred_locations``),
        which must not distort hit/miss accounting.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None
            cached = entry.partitions.get(index)
            return cached.host if cached is not None else None

    def snapshot(self, fingerprint: str) -> Optional[Dict[int, CachedPartition]]:
        """A consistent copy of a *complete* entry's partitions, or None.

        The returned dict keeps the row tuples alive even if the entry is
        evicted mid-job, so a running query never observes a half-dropped
        cache entry.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or not entry.complete():
                return None
            self._entries.move_to_end(fingerprint)
            return dict(entry.partitions)

    # -- introspection ----------------------------------------------------
    def cached_bytes(self, fingerprint: str) -> int:
        """Bytes currently cached for one fingerprint (0 if unknown)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.nbytes if entry is not None else 0

    def stats(self) -> CacheManagerStats:
        """Lifetime counters plus occupancy, as one snapshot."""
        with self._lock:
            return CacheManagerStats(self._hits, self._misses,
                                     self._evicted_entries,
                                     self._current_bytes, self.capacity_bytes,
                                     len(self._entries))

    def __repr__(self) -> str:
        s = self.stats()
        return (f"CacheManager({s.current_bytes}/{s.capacity_bytes}B, "
                f"{s.entries} entries, hits={s.hits}, misses={s.misses})")


class CachingRDD(RDD):
    """Write-through wrapper: serves published partitions, computes the rest.

    Wraps the physical plan's RDD for a persisted-but-not-yet-complete
    fingerprint.  A partition already published by an earlier run (or an
    earlier task of this run) is served from memory at
    ``cached_partition_bytes_per_sec``; everything else computes through the
    parent lineage, buffering rows per attempt and publishing atomically on
    exhaustion -- see the module docstring for why that ordering is what
    makes speculation and retries safe.
    """

    def __init__(self, parent: RDD, manager: CacheManager, fingerprint: str) -> None:
        super().__init__([parent])
        self.manager = manager
        self.fingerprint = fingerprint
        self.manager.expect_partitions(fingerprint, len(parent.partitions()))

    def partitions(self) -> List[Partition]:
        return self.parents[0].partitions()

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        host = self.manager.peek_host(self.fingerprint, partition.index)
        if host:
            return (host,)
        return self.parents[0].preferred_locations(partition)

    def compute(self, partition: Partition, ctx) -> Iterator[object]:
        cached = self.manager.read_partition(self.fingerprint, partition.index)
        if cached is not None:
            cost = ctx._scheduler.cost
            ctx.ledger.charge(cached.nbytes / cost.cached_partition_bytes_per_sec,
                              "engine.cache.read_bytes", cached.nbytes)
            ctx.ledger.count("engine.cache.hits")
            return iter(cached.rows)
        ctx.ledger.count("engine.cache.misses")
        return self._compute_and_publish(partition, ctx)

    def _compute_and_publish(self, partition: Partition, ctx) -> Iterator[object]:
        buffer: List[object] = []
        for row in self.parents[0].compute(partition, ctx):
            buffer.append(row)
            yield row
        # reaching here means the attempt exhausted the partition: publish it
        # whole.  An early-closed generator (LIMIT) or a failed attempt never
        # gets here, so partial outputs are never visible to anyone.
        nbytes = sum(estimate_size(r) for r in buffer)
        published, evicted, _evicted_bytes = self.manager.publish(
            self.fingerprint, partition.index, buffer, nbytes, ctx.host
        )
        if published:
            ctx.ledger.count("engine.cache.write_bytes", nbytes)
        if evicted:
            ctx.ledger.count("engine.cache.evictions", evicted)
        if ctx.span.enabled:
            ctx.span.event("cache-publish", fingerprint=self.fingerprint,
                           partition=partition.index, published=published,
                           nbytes=nbytes)


class CachedRDD(RDD):
    """Serves a fully-materialised cache entry; no upstream lineage at all.

    Built from a :meth:`CacheManager.snapshot`, so concurrent eviction
    cannot pull partitions out from under a running job.  Each partition
    prefers the host that originally published it (memory locality).
    """

    def __init__(self, fingerprint: str,
                 snapshot: Dict[int, CachedPartition]) -> None:
        super().__init__()
        self.fingerprint = fingerprint
        self._snapshot = snapshot

    def partitions(self) -> List[Partition]:
        return [Partition(i) for i in sorted(self._snapshot)]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        host = self._snapshot[partition.index].host
        return (host,) if host else ()

    def compute(self, partition: Partition, ctx) -> Iterator[object]:
        cached = self._snapshot[partition.index]
        cost = ctx._scheduler.cost
        ctx.ledger.charge(cached.nbytes / cost.cached_partition_bytes_per_sec,
                          "engine.cache.read_bytes", cached.nbytes)
        ctx.ledger.count("engine.cache.hits")
        return iter(cached.rows)

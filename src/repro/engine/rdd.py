"""Resilient Distributed Datasets: lineage-carrying partitioned collections.

The paper's connector is literally "a standard RDD" that re-implements
``getPartitions``, ``getPreferredLocations`` and ``compute`` (section V.A),
so the substrate exposes exactly that contract.  Narrow transformations
(map/filter/mapPartitions) pipeline inside one task; wide ones
(:class:`ShuffledRDD`) introduce a stage boundary the scheduler materialises
through the shuffle block store.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.scheduler import TaskContext


class Partition:
    """Identifies one slice of an RDD."""

    def __init__(self, index: int, payload: object = None) -> None:
        self.index = index
        self.payload = payload

    def __repr__(self) -> str:
        return f"Partition({self.index})"


class RDD:
    """Base class.  Subclasses define partitions, locality and compute."""

    _ids = itertools.count(1)

    def __init__(self, parents: Sequence["RDD"] = ()) -> None:
        self.rdd_id = next(RDD._ids)
        self.parents: Tuple[RDD, ...] = tuple(parents)

    # -- the three methods the paper's HBaseTableScanRDD overrides ---------
    def partitions(self) -> List[Partition]:
        raise NotImplementedError

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        """Hosts where computing ``partition`` avoids network transfer."""
        if self.parents:
            return self.parents[0].preferred_locations(partition)
        return ()

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        raise NotImplementedError

    # -- transformations -----------------------------------------------------
    def map(self, fn: Callable[[object], object]) -> "RDD":
        return MapPartitionsRDD(self, lambda rows, ctx: (fn(r) for r in rows))

    def filter(self, predicate: Callable[[object], bool]) -> "RDD":
        return MapPartitionsRDD(self, lambda rows, ctx: (r for r in rows if predicate(r)))

    def map_partitions(
        self, fn: Callable[[Iterable[object], "TaskContext"], Iterable[object]]
    ) -> "RDD":
        return MapPartitionsRDD(self, fn)

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD([self, other])

    def partition_by(
        self,
        num_partitions: int,
        key_fn: Callable[[object], object],
        post_shuffle: Optional[Callable[[Iterable[object], "TaskContext"], Iterable[object]]] = None,
    ) -> "ShuffledRDD":
        """Hash-repartition by key -- a wide dependency / stage boundary."""
        return ShuffledRDD(self, num_partitions, key_fn, post_shuffle)

    def coalesce_to_driver(self) -> "ShuffledRDD":
        """Gather everything into a single partition (for final results)."""
        return ShuffledRDD(self, 1, lambda row: 0, None)


class ParallelCollectionRDD(RDD):
    """Driver-side data distributed into ``num_partitions`` slices."""

    def __init__(self, data: Sequence[object], num_partitions: int = 4,
                 hosts: Sequence[str] = ()) -> None:
        super().__init__()
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self._slices: List[List[object]] = [[] for __ in range(num_partitions)]
        for i, row in enumerate(data):
            self._slices[i % num_partitions].append(row)
        self._hosts = list(hosts)

    def partitions(self) -> List[Partition]:
        return [Partition(i) for i in range(len(self._slices))]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        if not self._hosts:
            return ()
        return (self._hosts[partition.index % len(self._hosts)],)

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        return iter(self._slices[partition.index])


class MapPartitionsRDD(RDD):
    """Narrow transformation: runs inside the parent's task (pipelined)."""

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[Iterable[object], "TaskContext"], Iterable[object]],
    ) -> None:
        super().__init__([parent])
        self._fn = fn

    def partitions(self) -> List[Partition]:
        return self.parents[0].partitions()

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        return iter(self._fn(self.parents[0].compute(partition, ctx), ctx))


class UnionRDD(RDD):
    """Concatenation of the parents' partitions (narrow)."""

    def __init__(self, parents: Sequence[RDD]) -> None:
        super().__init__(parents)

    def partitions(self) -> List[Partition]:
        out: List[Partition] = []
        index = 0
        for parent_pos, parent in enumerate(self.parents):
            for child in parent.partitions():
                out.append(Partition(index, payload=(parent_pos, child)))
                index += 1
        return out

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        parent_pos, child = partition.payload
        return self.parents[parent_pos].preferred_locations(child)

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        parent_pos, child = partition.payload
        return self.parents[parent_pos].compute(child, ctx)


class ShuffledRDD(RDD):
    """Wide dependency: rows are hash-bucketed by key across the exchange.

    ``post_shuffle`` (if given) runs over each reduce partition after the
    fetch -- aggregation and join operators live there.
    """

    _shuffle_ids = itertools.count(1)

    def __init__(
        self,
        parent: RDD,
        num_partitions: int,
        key_fn: Callable[[object], object],
        post_shuffle: Optional[Callable[[Iterable[object], "TaskContext"], Iterable[object]]],
    ) -> None:
        super().__init__([parent])
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.key_fn = key_fn
        self.post_shuffle = post_shuffle
        self.shuffle_id = next(ShuffledRDD._shuffle_ids)

    def partitions(self) -> List[Partition]:
        return [Partition(i) for i in range(self.num_partitions)]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        return ()  # reduce tasks fetch from everywhere

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        # fetch_shuffle streams block by block; post_shuffle operators that
        # stop early (LIMIT) therefore never pull -- or pay for -- the rest
        rows = ctx.fetch_shuffle(self.shuffle_id, partition.index)
        if self.post_shuffle is None:
            return iter(rows)
        return iter(self.post_shuffle(rows, ctx))


class ShuffleReadRDD(RDD):
    """Reduce side of an *adaptively re-planned* exchange.

    Where :class:`ShuffledRDD` reads exactly one reduce partition of one
    shuffle per task, this RDD's partitions are arbitrary groups of
    ``(shuffle_id, reduce_partition, map_ids)`` read specs: the adaptive
    executor coalesces several small reduce partitions into one task, or
    splits a skewed partition into several tasks that each fetch a disjoint
    ``map_ids`` subset (docs/adaptive.md).  It has no lineage parents -- the
    caller guarantees every referenced shuffle is already materialised in
    the block store (that is what the stage barrier did).
    """

    def __init__(
        self,
        specs: Sequence[Sequence[Tuple[int, int, Optional[frozenset]]]],
        post_shuffle: Optional[Callable[[Iterable[object], "TaskContext"], Iterable[object]]] = None,
    ) -> None:
        super().__init__()
        self._specs: List[List[Tuple[int, int, Optional[frozenset]]]] = [
            list(group) for group in specs
        ] or [[]]
        self.post_shuffle = post_shuffle

    def partitions(self) -> List[Partition]:
        return [Partition(i) for i in range(len(self._specs))]

    def preferred_locations(self, partition: Partition) -> Sequence[str]:
        return ()  # like reduce tasks, these fetch from everywhere

    def compute(self, partition: Partition, ctx: "TaskContext") -> Iterator[object]:
        specs = self._specs[partition.index]

        def fetch() -> Iterator[object]:
            for shuffle_id, reduce_partition, map_ids in specs:
                yield from ctx.fetch_shuffle(shuffle_id, reduce_partition,
                                             map_ids=map_ids)

        rows = fetch()
        if self.post_shuffle is None:
            return rows
        return iter(self.post_shuffle(rows, ctx))

"""The DAG scheduler: stages, locality-aware placement, simulated makespan.

A job is split at shuffle boundaries.  Map stages bucket their output through
the shuffle block store (charging write bandwidth); reduce tasks fetch and
charge read bandwidth.  Each task runs with a :class:`TaskContext` carrying
the executor's host (so an HBase scan knows whether it is co-located with the
region server) and a cost ledger; the stage's simulated duration is the
makespan of task durations over the executor slots the tasks were placed on.

Execution itself is delegated to a stage runner (:mod:`repro.engine.runner`):
by default a thread-pool runner with one worker per executor slot, so a
stage's tasks genuinely overlap in wall-clock time, with event-driven
locality-aware placement (delay scheduling).  ``StageInfo`` reports both the
simulated makespan and the measured wall-clock per stage.

Fault tolerance follows Spark: a failing task is retried on another slot up
to ``max_task_retries`` times before the job aborts -- recomputation is free
because compute() re-runs the lineage.  Locality is counted against the host
that *actually* ran the task, so a retry that rotated hosts is not
misreported as node-local.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.cost import CostModel
from repro.common.errors import FatalTaskError
from repro.common.faults import FAULT_SHUFFLE_FETCH, FAULT_SLOW_HOST
from repro.common.metrics import CostLedger, MetricsRegistry
from repro.common.retry import stable_fraction
from repro.common.tracing import NOOP_SPAN
from repro.engine.cluster import ComputeCluster
from repro.engine.rdd import Partition, RDD, ShuffledRDD
from repro.engine.runner import (
    DEFAULT_LOCALITY_WAIT_SKIPS,
    SerialStageRunner,
    StageRunner,
    TaskOutcome,
    TaskSpec,
    ThreadPoolStageRunner,
)
from repro.engine.shuffle import (
    KeySketch,
    ShuffleBlockStore,
    ShuffleRuntimeStats,
    estimate_size,
    stable_hash,
)


class TaskContext:
    """Per-task execution context handed to ``RDD.compute``.

    Carries the executor's ``host`` (so an HBase scan knows whether it is
    co-located with the region server), the attempt's :class:`CostLedger`,
    and the attempt's trace span (:data:`NOOP_SPAN` when tracing is off) so
    scan code can hang child spans and events off the right parent.
    """

    def __init__(self, host: str, ledger: CostLedger,
                 scheduler: "TaskScheduler", span=NOOP_SPAN) -> None:
        self.host = host
        self.ledger = ledger
        self.span = span
        self._scheduler = scheduler

    def fetch_shuffle(self, shuffle_id: int, reduce_partition: int,
                      map_ids: Optional[frozenset] = None) -> Iterator[object]:
        """Stream one reduce partition's rows, paying shuffle-read bandwidth.

        Rows are yielded block by block (one block per upstream map task) and
        each block's bytes are charged as it is fetched, so a consumer that
        stops early -- a LIMIT, say -- never pays for blocks it did not pull.
        ``map_ids`` restricts the fetch to blocks from those map tasks; the
        adaptive executor uses this to split a skewed reduce partition into
        several tasks that each read a disjoint subset of map outputs.
        """
        cost = self._scheduler.cost
        faults = self._scheduler.faults
        blocks = self._scheduler.block_store.blocks_for(shuffle_id, reduce_partition)
        fetched_bytes = 0
        fetched_blocks = 0
        try:
            for map_id, rows in blocks:
                if map_ids is not None and map_id not in map_ids:
                    continue
                if faults is not None:
                    faults.check(FAULT_SHUFFLE_FETCH,
                                 key=f"{shuffle_id}:{reduce_partition}",
                                 ledger=self.ledger)
                nbytes = sum(estimate_size(r) for r in rows)
                self.ledger.charge(
                    nbytes / cost.shuffle_bytes_per_sec, "engine.shuffle_read_bytes", nbytes
                )
                fetched_bytes += nbytes
                fetched_blocks += 1
                yield from rows
        finally:
            if self.span.enabled:
                self.span.event("shuffle-read", shuffle_id=shuffle_id,
                                partition=reduce_partition,
                                blocks=fetched_blocks, bytes=fetched_bytes)


@dataclass
class StageInfo:
    """What one stage did, for the harness and for debugging plans."""

    stage_id: int
    kind: str                 # "shuffle-map" or "result"
    num_tasks: int
    duration_s: float         # simulated makespan (paper-fidelity metric)
    local_tasks: int
    output_bytes: int
    wall_clock_s: float = 0.0  # measured driver-side wall clock
    #: op_id of the scan operator this stage's lineage reads (None when the
    #: stage reads no scan, or more than one -- e.g. a union of scans)
    scope: Optional[int] = None
    #: partition-cache outcomes for this stage's tasks (tier 2)
    cache_hit_partitions: int = 0
    cache_miss_partitions: int = 0
    #: region-server block-cache bytes this stage's scans served / missed (tier 1)
    blockcache_hit_bytes: int = 0
    blockcache_miss_bytes: int = 0
    #: join output surfaced per stage so EXPLAIN ANALYZE join rows reconcile
    #: with the ledger counters, mirroring how scan stages report locality
    join_rows_out: int = 0
    join_bytes_out: int = 0
    #: set-operator (union/distinct/intersect) output rows per stage, same
    #: reconciliation contract as the join fields above
    setop_rows_out: int = 0


@dataclass
class JobResult:
    """Everything a job run produced."""

    partitions: List[List[object]]
    seconds: float
    metrics: MetricsRegistry
    stages: List[StageInfo] = field(default_factory=list)

    def rows(self) -> List[object]:
        """All result rows, flattened across partitions in partition order."""
        out: List[object] = []
        for part in self.partitions:
            out.extend(part)
        return out

    @property
    def wall_clock_s(self) -> float:
        """Measured wall-clock across all stages (simulated time is ``seconds``)."""
        return sum(s.wall_clock_s for s in self.stages)


class TaskScheduler:
    """Runs RDD jobs over a compute cluster with simulated timing.

    ``parallel`` selects the thread-pool stage runner (one worker per
    executor slot, event-driven placement); with it off, tasks run serially
    on the driver thread -- the measured baseline the parallelism ablation
    compares against.  Either way the simulated cost ledger is identical
    modulo placement.
    """

    def __init__(
        self,
        cluster: ComputeCluster,
        cost_model: CostModel,
        locality_enabled: bool = True,
        max_task_retries: int = 3,
        parallel: bool = True,
        locality_wait_skips: int = DEFAULT_LOCALITY_WAIT_SKIPS,
        realtime_scale: float = 0.0,
        faults=None,
        speculation_enabled: bool = False,
        speculation_multiplier: float = 1.5,
        speculation_quantile: float = 0.5,
        blacklist_max_failures: int = 2,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 2.0,
        trace=NOOP_SPAN,
        slots=None,
        queued_s: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model
        self.locality_enabled = locality_enabled
        self.max_task_retries = max_task_retries
        #: parent span for stage spans; NOOP_SPAN = tracing disabled
        self.trace = trace if trace is not None else NOOP_SPAN
        self._stage_span = NOOP_SPAN
        self._trace_lock = threading.Lock()
        self._span_ledgers: Dict[int, object] = {}
        #: optional FaultInjector for engine fault points (slow hosts,
        #: shuffle-fetch failures); None keeps every point a no-op
        self.faults = faults
        self.blacklist_max_failures = blacklist_max_failures
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_max_s = retry_backoff_max_s
        self._blacklist_lock = threading.Lock()
        self._host_failures: Dict[str, int] = {}
        self._blacklisted: set[str] = set()
        self.block_store = ShuffleBlockStore()
        self._materialized_shuffles: set[int] = set()
        #: runtime statistics per shuffle_id, populated only for shuffles
        #: materialised through :meth:`materialize_shuffle` (adaptive runs)
        self.shuffle_stats: Dict[int, ShuffleRuntimeStats] = {}
        self._stage_ids = 0
        #: simulated seconds the query spent in the serving admission queue
        #: before this scheduler ran; stamped onto every task ledger so
        #: client operation deadlines charge queue wait against their budget
        self.queued_s = queued_s
        #: the executor slots this job may run on: the whole cluster by
        #: default, or the subset the serving front door leased (bulkhead
        #: slot partitions -- one tenant's scan storm cannot occupy another
        #: tenant's reserved slots)
        self._slots = list(slots) if slots is not None else cluster.slots()
        runner_cls = ThreadPoolStageRunner if parallel else SerialStageRunner
        self._runner: StageRunner = runner_cls(
            self._slots,
            cost_model.task_launch_s,
            locality_enabled=locality_enabled,
            locality_wait_skips=locality_wait_skips,
            realtime_scale=realtime_scale,
            speculation_enabled=speculation_enabled,
            speculation_multiplier=speculation_multiplier,
            speculation_quantile=speculation_quantile,
        )

    # -- public API -------------------------------------------------------
    def run_job(self, rdd: RDD) -> JobResult:
        """Execute the full lineage of ``rdd`` and gather its partitions."""
        metrics = MetricsRegistry()
        stages: List[StageInfo] = []
        total_seconds = 0.0
        job_shuffles: List[int] = []
        try:
            for shuffled in self._pending_shuffles(rdd):
                job_shuffles.append(shuffled.shuffle_id)
                info, stage_metrics = self._run_shuffle_map_stage(shuffled)
                stages.append(info)
                metrics.merge(stage_metrics)
                total_seconds += info.duration_s
            partitions, info, stage_metrics = self._run_result_stage(rdd)
        except Exception:
            self._abort_job_shuffles(job_shuffles)
            raise
        stages.append(info)
        metrics.merge(stage_metrics)
        total_seconds += info.duration_s
        peak = max((s.output_bytes for s in stages), default=0)
        metrics.record_peak("engine.peak_stage_bytes", peak)
        return JobResult(partitions, total_seconds, metrics, stages)

    def collect(self, rdd: RDD) -> List[object]:
        """Convenience: run the job and flatten the result partitions."""
        return self.run_job(rdd).rows()

    def _abort_job_shuffles(self, shuffle_ids: Sequence[int]) -> None:
        """Drop shuffle output the aborted job produced (or started producing).

        Without this, completed map tasks of a stage that later aborted leave
        their blocks in the ShuffleBlockStore forever and the shuffle stays
        marked materialised -- a rerun of the same lineage would then read a
        possibly partial shuffle instead of recomputing it.
        """
        for shuffle_id in shuffle_ids:
            self.block_store.clear(shuffle_id)
            self._materialized_shuffles.discard(shuffle_id)

    # -- stage planning -----------------------------------------------------
    def _pending_shuffles(self, rdd: RDD) -> List[ShuffledRDD]:
        """Every unmaterialised ShuffledRDD in the lineage, parents first."""
        ordered: List[ShuffledRDD] = []
        seen: set[int] = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            for parent in node.parents:
                visit(parent)
            if isinstance(node, ShuffledRDD) and node.shuffle_id not in self._materialized_shuffles:
                ordered.append(node)

        visit(rdd)
        return ordered

    # -- stage execution ----------------------------------------------------
    def materialize_shuffle(
        self, shuffled: ShuffledRDD
    ) -> Tuple[List[StageInfo], MetricsRegistry, ShuffleRuntimeStats]:
        """Eagerly run map stages up to and including ``shuffled``'s exchange.

        This is the adaptive executor's stage barrier: any unmaterialised
        upstream shuffles run first (without stats -- they were either already
        adapted or need none), then ``shuffled``'s own map stage runs with
        runtime-statistics collection on.  The returned
        :class:`~repro.engine.shuffle.ShuffleRuntimeStats` (also kept in
        :attr:`shuffle_stats`) is what re-optimisation decides from.
        """
        stages: List[StageInfo] = []
        metrics = MetricsRegistry()
        for node in self._pending_shuffles(shuffled):
            collect = node.shuffle_id == shuffled.shuffle_id
            info, stage_metrics = self._run_shuffle_map_stage(
                node, collect_stats=collect)
            stages.append(info)
            metrics.merge(stage_metrics)
        stats = self.shuffle_stats.get(shuffled.shuffle_id)
        if stats is None:
            # the shuffle was already materialised by an earlier job (e.g. a
            # shared cached subplan); synthesise stats from the block store
            stats = self._stats_from_store(shuffled)
            self.shuffle_stats[shuffled.shuffle_id] = stats
        return stages, metrics, stats

    def _stats_from_store(self, shuffled: ShuffledRDD) -> ShuffleRuntimeStats:
        """Rebuild runtime stats for an already-materialised shuffle.

        Free of simulated cost: the blocks already sit in the store, so
        sizing them again is driver-side bookkeeping, not data movement.
        """
        stats = ShuffleRuntimeStats(shuffled.shuffle_id, shuffled.num_partitions)
        per_map: Dict[int, Tuple[List[int], List[int], KeySketch]] = {}
        for reduce_idx in range(shuffled.num_partitions):
            blocks = self.block_store.blocks_for(shuffled.shuffle_id, reduce_idx)
            for map_id, rows in blocks:
                rows_v, bytes_v, sketch = per_map.setdefault(
                    map_id,
                    ([0] * shuffled.num_partitions,
                     [0] * shuffled.num_partitions, KeySketch()),
                )
                for row in rows:
                    nbytes = estimate_size(row)
                    rows_v[reduce_idx] += 1
                    bytes_v[reduce_idx] += nbytes
                    sketch.add(shuffled.key_fn(row), nbytes)
        for map_id in sorted(per_map):
            rows_v, bytes_v, sketch = per_map[map_id]
            stats.add_map_output(rows_v, bytes_v, sketch)
        return stats

    def _run_shuffle_map_stage(
        self, shuffled: ShuffledRDD, collect_stats: bool = False
    ) -> Tuple[StageInfo, MetricsRegistry]:
        parent = shuffled.parents[0]

        def make_runner(partition: Partition) -> Callable[[TaskContext], object]:
            def run(ctx: TaskContext) -> object:
                buckets: List[List[object]] = [[] for __ in range(shuffled.num_partitions)]
                nbytes = 0
                for row in parent.compute(partition, ctx):
                    target = stable_hash(shuffled.key_fn(row)) % shuffled.num_partitions
                    buckets[target].append(row)
                    nbytes += estimate_size(row)
                for reduce_idx, bucket in enumerate(buckets):
                    if bucket:
                        self.block_store.put_block(
                            shuffled.shuffle_id, partition.index, reduce_idx, bucket
                        )
                ctx.ledger.charge(
                    nbytes / self.cost.shuffle_bytes_per_sec,
                    "engine.shuffle_write_bytes", nbytes,
                )
                if not collect_stats:
                    return nbytes
                reduce_rows = [len(bucket) for bucket in buckets]
                reduce_bytes = [
                    sum(estimate_size(r) for r in bucket) for bucket in buckets
                ]
                sketch = KeySketch()
                for bucket in buckets:
                    for row in bucket:
                        sketch.add(shuffled.key_fn(row), estimate_size(row))
                return nbytes, reduce_rows, reduce_bytes, sketch

            return run

        tasks = [
            (make_runner(p), tuple(parent.preferred_locations(p)))
            for p in parent.partitions()
        ]
        outputs, info, metrics = self._execute(tasks, kind="shuffle-map",
                                               scope=self._stage_scope(parent))
        if collect_stats:
            stats = ShuffleRuntimeStats(shuffled.shuffle_id, shuffled.num_partitions)
            for nbytes, reduce_rows, reduce_bytes, sketch in outputs:
                stats.add_map_output(reduce_rows, reduce_bytes, sketch)
            self.shuffle_stats[shuffled.shuffle_id] = stats
            info.output_bytes = stats.total_bytes
        else:
            info.output_bytes = sum(outputs)
        metrics.incr("engine.shuffles", 1)
        self._materialized_shuffles.add(shuffled.shuffle_id)
        return info, metrics

    def _run_result_stage(
        self, rdd: RDD
    ) -> Tuple[List[List[object]], StageInfo, MetricsRegistry]:
        def make_runner(partition: Partition) -> Callable[[TaskContext], List[object]]:
            def run(ctx: TaskContext) -> List[object]:
                return list(rdd.compute(partition, ctx))

            return run

        tasks = [
            (make_runner(p), tuple(rdd.preferred_locations(p)))
            for p in rdd.partitions()
        ]
        partitions, info, metrics = self._execute(tasks, kind="result",
                                                  scope=self._stage_scope(rdd))
        info.output_bytes = sum(
            estimate_size(row) for part in partitions for row in part
        )
        return partitions, info, metrics

    def _stage_scope(self, root: RDD) -> Optional[int]:
        """The scan-operator ``op_id`` this stage reads, if it is unique.

        Walks the stage-local lineage (stopping at shuffle boundaries, which
        belong to earlier stages) looking for RDDs stamped with a ``scope``
        by :class:`~repro.sql.physical.DataSourceScanExec`.  Exactly one
        scope means every task in the stage works for that scan operator --
        which is how EXPLAIN ANALYZE attributes per-stage locality back to
        plan operators.  Zero or several scopes (pure shuffle stages, unions
        of scans) yield ``None``.
        """
        scopes: set[int] = set()
        seen: set[int] = set()
        stack: List[RDD] = [root]
        while stack:
            node = stack.pop()
            if node.rdd_id in seen:
                continue
            seen.add(node.rdd_id)
            scope = getattr(node, "scope", None)
            if scope is not None:
                scopes.add(scope)
            if not isinstance(node, ShuffledRDD):
                stack.extend(node.parents)
        return scopes.pop() if len(scopes) == 1 else None

    def _execute(
        self,
        tasks: Sequence[Tuple[Callable[[TaskContext], object], Tuple[str, ...]]],
        kind: str,
        scope: Optional[int] = None,
    ) -> Tuple[List[object], StageInfo, MetricsRegistry]:
        """Hand a stage to the runner; fold outcomes into ordered results."""
        self._stage_ids += 1
        # root-level spans sort by (phase, seq): planning phases come first,
        # scan-plan spans next, stages last -- see docs/observability.md
        stage_span = self.trace.child(
            f"stage-{self._stage_ids}", "stage", order=(2, self._stage_ids),
            stage_kind=kind, num_tasks=len(tasks),
        )
        if scope is not None and stage_span.enabled:
            stage_span.set(scope=scope)
        self._stage_span = stage_span
        specs = [
            TaskSpec(index=i, body=body, preferred=preferred)
            for i, (body, preferred) in enumerate(tasks)
        ]
        try:
            execution = self._runner.run(specs, self._run_with_retries)
        finally:
            self._stage_span = NOOP_SPAN

        metrics = MetricsRegistry()
        results: List[object] = []
        local_tasks = 0
        for outcome in execution.outcomes:          # already in task order
            results.append(outcome.value)
            metrics.merge(outcome.ledger.metrics)
            metrics.incr("engine.tasks", 1)
            if outcome.failures:
                metrics.incr("engine.task_failures", outcome.failures)
            if outcome.rehosted:
                metrics.incr("engine.task_retries_rehosted", 1)
            preferred = specs[outcome.index].preferred
            if preferred and outcome.ran_on_host in preferred:
                local_tasks += 1
        metrics.incr("engine.local_tasks", local_tasks)
        if execution.speculative_launched:
            metrics.incr("engine.speculative_launched",
                         execution.speculative_launched)
        if execution.speculative_won:
            metrics.incr("engine.speculative_won", execution.speculative_won)
        for lost in execution.wasted:
            # the race loser's work still happened: count its metrics and
            # record the duplicated simulated seconds as waste
            metrics.merge(lost.metrics)
            metrics.incr("engine.speculative_wasted_s", lost.seconds)
            loser_span = self._span_ledgers.get(id(lost))
            if loser_span is not None:
                loser_span.set(wasted=True, wasted_sim_s=lost.seconds)
        with self._trace_lock:
            self._span_ledgers.clear()
        info = StageInfo(
            stage_id=self._stage_ids,
            kind=kind,
            num_tasks=len(tasks),
            duration_s=execution.sim_makespan_s,
            local_tasks=local_tasks,
            output_bytes=0,
            wall_clock_s=execution.wall_clock_s,
            scope=scope,
            cache_hit_partitions=int(metrics.get("engine.cache.hits")),
            cache_miss_partitions=int(metrics.get("engine.cache.misses")),
            blockcache_hit_bytes=int(metrics.get("hbase.blockcache.hit_bytes")),
            blockcache_miss_bytes=int(metrics.get("hbase.blockcache.miss_bytes")),
            join_rows_out=int(metrics.get("engine.join.rows_out")),
            join_bytes_out=int(metrics.get("engine.join.bytes_out")),
            setop_rows_out=int(metrics.get("engine.setop.rows_out")),
        )
        if stage_span.enabled:
            stage_span.set(local_tasks=local_tasks,
                           speculative_launched=execution.speculative_launched,
                           speculative_won=execution.speculative_won)
            stage_span.finish(sim_seconds=execution.sim_makespan_s,
                              metrics=metrics.snapshot())
        return results, info, metrics

    def _run_with_retries(self, spec: TaskSpec, host: str,
                          slot_idx: int) -> TaskOutcome:
        """Run one task, rotating hosts on failure like Spark's blacklisting.

        The returned outcome records the host that *actually* ran the task so
        locality accounting stays truthful across retries.  Failed attempts'
        ledgers are *not* discarded: their simulated work plus the inter-retry
        backoff is folded into the final outcome, so a task that needed three
        tries costs what three tries cost.  Hosts that keep failing tasks get
        blacklisted and retries rotate around them.
        """
        placed_host = host
        attempts = 0
        carry: Optional[CostLedger] = None
        last_error: Optional[Exception] = None
        task_span = self._stage_span.child(
            f"task-{spec.index}" + ("-spec" if spec.speculative else ""),
            "task", order=(spec.index, 1 if spec.speculative else 0),
            index=spec.index, placed_host=placed_host,
            speculative=spec.speculative,
        )
        while attempts <= self.max_task_retries:
            ledger = CostLedger()
            ledger.queued_s = self.queued_s
            attempt_span = task_span.child(f"attempt-{attempts + 1}", "attempt",
                                           order=attempts, host=host)
            if attempt_span.enabled:
                # lets ledger-only code paths (the HBase client's retry
                # decorator) record events against the running attempt
                ledger.trace_span = attempt_span
            ctx = TaskContext(host, ledger, self, span=attempt_span)
            spec.live_host = host
            spec.live_ledger = ledger
            try:
                value = spec.body(ctx)
                self._apply_host_faults(ledger, host)
            except Exception as exc:  # noqa: BLE001 - task code is user code
                attempts += 1
                last_error = exc
                if attempt_span.enabled:
                    attempt_span.set(failed=True, error=repr(exc))
                    attempt_span.finish(sim_seconds=ledger.seconds,
                                        metrics=ledger.metrics.snapshot())
                self._note_host_failure(host, ledger)
                if carry is None:
                    carry = CostLedger()
                carry.merge(ledger)
                if attempts <= self.max_task_retries:
                    backoff = self._retry_backoff(spec.index, attempts)
                    carry.charge(backoff, "engine.retry_backoff_s", backoff)
                    # Spark would retry on another executor; rotate hosts,
                    # skipping any that are blacklisted
                    host = self._retry_host(slot_idx, attempts)
                continue
            if attempt_span.enabled:
                attempt_span.finish(sim_seconds=ledger.seconds,
                                    metrics=ledger.metrics.snapshot())
            if carry is not None:
                ledger.merge(carry)
            if task_span.enabled:
                task_span.set(ran_on_host=host, failures=attempts)
                task_span.finish(sim_seconds=ledger.seconds,
                                 metrics=ledger.metrics.snapshot())
                with self._trace_lock:
                    self._span_ledgers[id(ledger)] = task_span
            return TaskOutcome(
                index=spec.index,
                value=value,
                ledger=ledger,
                placed_host=placed_host,
                ran_on_host=host,
                failures=attempts,
            )
        if task_span.enabled:
            task_span.set(failures=attempts, aborted=True)
            task_span.finish()
        raise FatalTaskError(
            f"task failed after {attempts} attempts: {last_error}"
        ) from last_error

    # -- retry/blacklist/straggler plumbing ---------------------------------
    def _apply_host_faults(self, ledger: CostLedger, host: str) -> None:
        """Consult the ``engine.slow_host`` fault point for a finished attempt.

        A matching rule returns a ``SlowHostEffect``: ``factor`` inflates the
        attempt's accrued simulated cost (the straggler), and ``sleep_s``
        holds the task open in wall-clock time so speculative execution can
        observe a still-running tail task and race a duplicate against it.
        The inflation lands *before* the sleep, so the dispatcher sees the
        straggler's cost on its live ledger while the task is still running.
        """
        faults = self.faults
        if faults is None:
            return
        effect = faults.check(FAULT_SLOW_HOST, key=host, ledger=ledger)
        if effect is None:
            return
        factor = getattr(effect, "factor", 1.0)
        if factor > 1.0 and ledger.seconds > 0.0:
            extra = ledger.seconds * (factor - 1.0)
            ledger.charge(extra, "faults.slowdown_s", extra)
        sleep_s = getattr(effect, "sleep_s", 0.0)
        if sleep_s > 0.0:
            time.sleep(sleep_s)

    def _note_host_failure(self, host: str, ledger: CostLedger) -> None:
        """Count a failed attempt against its host; blacklist repeat offenders.

        A host is never blacklisted if doing so would leave no usable host,
        mirroring Spark's refusal to blacklist its way out of a cluster.
        """
        if self.blacklist_max_failures <= 0:
            return
        with self._blacklist_lock:
            count = self._host_failures.get(host, 0) + 1
            self._host_failures[host] = count
            if count >= self.blacklist_max_failures and host not in self._blacklisted:
                live_hosts = {s.host for s in self._slots}
                if len(self._blacklisted) + 1 < len(live_hosts):
                    self._blacklisted.add(host)
                    ledger.count("engine.hosts_blacklisted")

    def _retry_backoff(self, task_index: int, attempt: int) -> float:
        """Capped exponential inter-retry backoff with deterministic jitter."""
        raw = min(self.retry_backoff_max_s,
                  self.retry_backoff_s * 2 ** (attempt - 1))
        return raw * (0.5 + stable_fraction("engine.retry", task_index, attempt))

    def _retry_host(self, slot_idx: int, attempts: int) -> str:
        """The next host in the retry rotation, skipping blacklisted hosts."""
        n = len(self._slots)
        with self._blacklist_lock:
            blacklisted = set(self._blacklisted)
        for step in range(attempts, attempts + n):
            candidate = self._slots[(slot_idx + step) % n].host
            if candidate not in blacklisted:
                return candidate
        return self._slots[(slot_idx + attempts) % n].host

"""The DAG scheduler: stages, locality-aware placement, simulated makespan.

A job is split at shuffle boundaries.  Map stages bucket their output through
the shuffle block store (charging write bandwidth); reduce tasks fetch and
charge read bandwidth.  Each task runs with a :class:`TaskContext` carrying
the executor's host (so an HBase scan knows whether it is co-located with the
region server) and a cost ledger; the stage's simulated duration is the
makespan of task durations over the executor slots the tasks were placed on.

Fault tolerance follows Spark: a failing task is retried on another slot up
to ``max_task_retries`` times before the job aborts -- recomputation is free
because compute() re-runs the lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.cost import CostModel
from repro.common.errors import FatalTaskError
from repro.common.metrics import CostLedger, MetricsRegistry
from repro.engine.cluster import ComputeCluster, Executor
from repro.engine.rdd import Partition, RDD, ShuffledRDD
from repro.engine.shuffle import ShuffleBlockStore, estimate_size, stable_hash


class TaskContext:
    """Per-task execution context handed to ``RDD.compute``."""

    def __init__(self, host: str, ledger: CostLedger, scheduler: "TaskScheduler") -> None:
        self.host = host
        self.ledger = ledger
        self._scheduler = scheduler

    def fetch_shuffle(self, shuffle_id: int, reduce_partition: int) -> List[object]:
        """Pull one reduce partition's rows, paying shuffle-read bandwidth."""
        rows = list(self._scheduler.block_store.fetch(shuffle_id, reduce_partition))
        nbytes = sum(estimate_size(r) for r in rows)
        cost = self._scheduler.cost
        self.ledger.charge(
            nbytes / cost.shuffle_bytes_per_sec, "engine.shuffle_read_bytes", nbytes
        )
        return rows


@dataclass
class StageInfo:
    """What one stage did, for the harness and for debugging plans."""

    stage_id: int
    kind: str                 # "shuffle-map" or "result"
    num_tasks: int
    duration_s: float
    local_tasks: int
    output_bytes: int


@dataclass
class JobResult:
    """Everything a job run produced."""

    partitions: List[List[object]]
    seconds: float
    metrics: MetricsRegistry
    stages: List[StageInfo] = field(default_factory=list)

    def rows(self) -> List[object]:
        out: List[object] = []
        for part in self.partitions:
            out.extend(part)
        return out


class TaskScheduler:
    """Runs RDD jobs over a compute cluster with simulated timing."""

    def __init__(
        self,
        cluster: ComputeCluster,
        cost_model: CostModel,
        locality_enabled: bool = True,
        max_task_retries: int = 3,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model
        self.locality_enabled = locality_enabled
        self.max_task_retries = max_task_retries
        self.block_store = ShuffleBlockStore()
        self._materialized_shuffles: set[int] = set()
        self._stage_ids = 0

    # -- public API -------------------------------------------------------
    def run_job(self, rdd: RDD) -> JobResult:
        """Execute the full lineage of ``rdd`` and gather its partitions."""
        metrics = MetricsRegistry()
        stages: List[StageInfo] = []
        total_seconds = 0.0
        for shuffled in self._pending_shuffles(rdd):
            info, stage_metrics = self._run_shuffle_map_stage(shuffled)
            stages.append(info)
            metrics.merge(stage_metrics)
            total_seconds += info.duration_s
        partitions, info, stage_metrics = self._run_result_stage(rdd)
        stages.append(info)
        metrics.merge(stage_metrics)
        total_seconds += info.duration_s
        peak = max((s.output_bytes for s in stages), default=0)
        metrics.record_peak("engine.peak_stage_bytes", peak)
        return JobResult(partitions, total_seconds, metrics, stages)

    def collect(self, rdd: RDD) -> List[object]:
        """Convenience: run the job and flatten the result partitions."""
        return self.run_job(rdd).rows()

    # -- stage planning -----------------------------------------------------
    def _pending_shuffles(self, rdd: RDD) -> List[ShuffledRDD]:
        """Every unmaterialised ShuffledRDD in the lineage, parents first."""
        ordered: List[ShuffledRDD] = []
        seen: set[int] = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            for parent in node.parents:
                visit(parent)
            if isinstance(node, ShuffledRDD) and node.shuffle_id not in self._materialized_shuffles:
                ordered.append(node)

        visit(rdd)
        return ordered

    # -- stage execution ----------------------------------------------------
    def _run_shuffle_map_stage(self, shuffled: ShuffledRDD) -> Tuple[StageInfo, MetricsRegistry]:
        parent = shuffled.parents[0]

        def make_runner(partition: Partition) -> Callable[[TaskContext], int]:
            def run(ctx: TaskContext) -> int:
                buckets: List[List[object]] = [[] for __ in range(shuffled.num_partitions)]
                nbytes = 0
                for row in parent.compute(partition, ctx):
                    target = stable_hash(shuffled.key_fn(row)) % shuffled.num_partitions
                    buckets[target].append(row)
                    nbytes += estimate_size(row)
                for reduce_idx, bucket in enumerate(buckets):
                    if bucket:
                        self.block_store.put_block(
                            shuffled.shuffle_id, partition.index, reduce_idx, bucket
                        )
                ctx.ledger.charge(
                    nbytes / self.cost.shuffle_bytes_per_sec,
                    "engine.shuffle_write_bytes", nbytes,
                )
                return nbytes

            return run

        tasks = [
            (make_runner(p), tuple(parent.preferred_locations(p)))
            for p in parent.partitions()
        ]
        outputs, info, metrics = self._execute(tasks, kind="shuffle-map")
        info.output_bytes = sum(outputs)
        metrics.incr("engine.shuffles", 1)
        self._materialized_shuffles.add(shuffled.shuffle_id)
        return info, metrics

    def _run_result_stage(
        self, rdd: RDD
    ) -> Tuple[List[List[object]], StageInfo, MetricsRegistry]:
        def make_runner(partition: Partition) -> Callable[[TaskContext], List[object]]:
            def run(ctx: TaskContext) -> List[object]:
                return list(rdd.compute(partition, ctx))

            return run

        tasks = [
            (make_runner(p), tuple(rdd.preferred_locations(p)))
            for p in rdd.partitions()
        ]
        partitions, info, metrics = self._execute(tasks, kind="result")
        info.output_bytes = sum(
            estimate_size(row) for part in partitions for row in part
        )
        return partitions, info, metrics

    def _execute(
        self,
        tasks: Sequence[Tuple[Callable[[TaskContext], object], Tuple[str, ...]]],
        kind: str,
    ) -> Tuple[List[object], StageInfo, MetricsRegistry]:
        """Place, run and time a stage's tasks; returns results in order."""
        self._stage_ids += 1
        metrics = MetricsRegistry()
        slots = self.cluster.slots()
        slot_load_count = [0] * len(slots)
        slot_busy_until = [0.0] * len(slots)
        results: List[object] = []
        local_tasks = 0

        for runner, preferred in tasks:
            slot_idx = self._place(slots, slot_load_count, preferred)
            host = slots[slot_idx].host
            if preferred and host in preferred:
                local_tasks += 1
            result, ledger = self._run_with_retries(runner, host, slot_idx, slots, metrics)
            slot_load_count[slot_idx] += 1
            slot_busy_until[slot_idx] += self.cost.task_launch_s + ledger.seconds
            metrics.merge(ledger.metrics)
            metrics.incr("engine.tasks", 1)
            results.append(result)

        duration = max(slot_busy_until, default=0.0)
        metrics.incr("engine.local_tasks", local_tasks)
        info = StageInfo(
            stage_id=self._stage_ids,
            kind=kind,
            num_tasks=len(tasks),
            duration_s=duration,
            local_tasks=local_tasks,
            output_bytes=0,
        )
        return results, info, metrics

    def _place(
        self,
        slots: Sequence[Executor],
        slot_load_count: List[int],
        preferred: Tuple[str, ...],
    ) -> int:
        """Pick a slot: least-loaded among preferred hosts, else least-loaded."""
        candidates = range(len(slots))
        if self.locality_enabled and preferred:
            on_pref = [i for i in candidates if slots[i].host in preferred]
            if on_pref:
                return min(on_pref, key=lambda i: slot_load_count[i])
        return min(candidates, key=lambda i: slot_load_count[i])

    def _run_with_retries(
        self,
        runner: Callable[[TaskContext], object],
        host: str,
        slot_idx: int,
        slots: Sequence[Executor],
        metrics: MetricsRegistry,
    ) -> Tuple[object, CostLedger]:
        attempts = 0
        last_error: Optional[Exception] = None
        while attempts <= self.max_task_retries:
            ledger = CostLedger()
            ctx = TaskContext(host, ledger, self)
            try:
                return runner(ctx), ledger
            except Exception as exc:  # noqa: BLE001 - task code is user code
                attempts += 1
                last_error = exc
                metrics.incr("engine.task_failures", 1)
                # Spark would retry on another executor; rotate hosts
                host = slots[(slot_idx + attempts) % len(slots)].host
        raise FatalTaskError(
            f"task failed after {attempts} attempts: {last_error}"
        ) from last_error

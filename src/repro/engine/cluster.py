"""Compute cluster topology: hosts, a YARN-like resource manager, executors.

Reproduces the deployment of section V.A: Spark executors run on the same
hosts as HBase Region Servers, and YARN caps how many executors one job can
actually get -- the cap is what makes the speedup curves of Figure 6 flatten
("the allocated resource is limited for each job").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import EngineError


@dataclass(frozen=True)
class Executor:
    """One executor process: a host plus a number of task slots (cores)."""

    executor_id: str
    host: str
    cores: int


class YarnResourceManager:
    """Grants executors up to a per-application cap.

    ``max_executors_per_app`` models the queue capacity the paper's jobs ran
    under: asking for more executors than the cap silently yields the cap.
    """

    def __init__(self, total_executors: int, max_executors_per_app: int) -> None:
        if total_executors <= 0 or max_executors_per_app <= 0:
            raise EngineError("executor counts must be positive")
        self.total_executors = total_executors
        self.max_executors_per_app = max_executors_per_app

    def grant(self, requested: int) -> int:
        """How many executors an application asking for ``requested`` gets."""
        if requested <= 0:
            raise EngineError("must request at least one executor")
        return min(requested, self.max_executors_per_app, self.total_executors)


class ComputeCluster:
    """A set of hosts running executors, co-locatable with region servers."""

    def __init__(
        self,
        hosts: Sequence[str],
        executors_requested: int = 5,
        cores_per_executor: int = 2,
        resource_manager: YarnResourceManager | None = None,
    ) -> None:
        if not hosts:
            raise EngineError("a compute cluster needs at least one host")
        self.hosts = list(hosts)
        self.resource_manager = resource_manager or YarnResourceManager(
            total_executors=4 * len(self.hosts),
            max_executors_per_app=3 * len(self.hosts),
        )
        granted = self.resource_manager.grant(executors_requested)
        self.executors: List[Executor] = [
            Executor(f"exec-{i}", self.hosts[i % len(self.hosts)], cores_per_executor)
            for i in range(granted)
        ]
        self._slots: List[Executor] | None = None

    def slots(self) -> List[Executor]:
        """One entry per task slot (an executor appears once per core).

        The expansion is computed once and a copy handed out: the parallel
        stage runner sizes its worker pool off this list and indexes slots
        by position, so the ordering must be stable for the cluster's life.
        """
        if self._slots is None:
            expanded: List[Executor] = []
            for executor in self.executors:
                expanded.extend([executor] * executor.cores)
            self._slots = expanded
        return list(self._slots)

    def num_slots(self) -> int:
        """How many tasks can run concurrently across all executors."""
        return len(self.slots())

    def hosts_with_executors(self) -> List[str]:
        return sorted({e.host for e in self.executors})

    def __repr__(self) -> str:
        return (
            f"ComputeCluster(hosts={len(self.hosts)}, "
            f"executors={len(self.executors)})"
        )

"""Expression trees: the Catalyst-style core of the SQL layer.

Lifecycle: the parser emits trees containing :class:`UnresolvedAttribute`
leaves; the analyzer rewrites those into :class:`Attribute` leaves (unique
``attr_id`` per column, like Catalyst's ``exprId``); just before execution
:func:`bind_expression` turns attributes into positional
:class:`BoundReference` leaves so ``eval`` runs against plain tuples.

Null semantics follow SQL: arithmetic and comparisons propagate NULL,
AND/OR use three-valued logic, and filters keep a row only when the
predicate evaluates to exactly True.
"""

from __future__ import annotations

import itertools
import math
import re
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AnalysisError
from repro.sql.types import (
    BooleanType,
    DataType,
    DoubleType,
    LongType,
    StringType,
    is_numeric,
)

_expr_ids = itertools.count(1)


def next_expr_id() -> int:
    """Allocate a fresh attribute/alias id (Catalyst's exprId)."""
    return next(_expr_ids)


class Expression:
    """Base class for all expressions."""

    children: Tuple["Expression", ...] = ()

    def eval(self, row: tuple) -> object:
        raise NotImplementedError(f"{type(self).__name__} must be bound before eval")

    def data_type(self) -> DataType:
        raise NotImplementedError

    def with_new_children(self, children: Sequence["Expression"]) -> "Expression":
        raise NotImplementedError

    # -- tree utilities -----------------------------------------------------
    def transform(self, fn: Callable[["Expression"], Optional["Expression"]]) -> "Expression":
        """Bottom-up rewrite: ``fn`` returns a replacement or None to keep."""
        new_children = [c.transform(fn) for c in self.children]
        node = self if all(a is b for a, b in zip(new_children, self.children)) \
            else self.with_new_children(new_children)
        replacement = fn(node)
        return replacement if replacement is not None else node

    def collect(self, predicate: Callable[["Expression"], bool]) -> List["Expression"]:
        found = [c2 for c in self.children for c2 in c.collect(predicate)]
        if predicate(self):
            found.append(self)
        return found

    def references(self) -> Set[int]:
        """attr_ids of every Attribute this expression reads."""
        refs: Set[int] = set()
        for node in self.collect(lambda e: isinstance(e, Attribute)):
            refs.add(node.attr_id)
        return refs

    def is_resolved(self) -> bool:
        return not self.collect(lambda e: isinstance(e, UnresolvedAttribute))


# -- leaves --------------------------------------------------------------------

class Literal(Expression):
    """A constant value with an explicit type."""

    def __init__(self, value: object, dtype: DataType) -> None:
        self.value = value
        self.dtype = dtype

    def eval(self, row: tuple) -> object:
        return self.value

    def data_type(self) -> DataType:
        return self.dtype

    def with_new_children(self, children: Sequence[Expression]) -> "Literal":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and (self.value, self.dtype) == (other.value, other.dtype)

    def __hash__(self) -> int:
        return hash((self.value, self.dtype))

    def __repr__(self) -> str:
        return repr(self.value)


def lit_of(value: object) -> Literal:
    """Infer a Literal from a Python value."""
    if value is None:
        return Literal(None, StringType)
    if isinstance(value, bool):
        return Literal(value, BooleanType)
    if isinstance(value, int):
        return Literal(value, LongType)
    if isinstance(value, float):
        return Literal(value, DoubleType)
    if isinstance(value, str):
        return Literal(value, StringType)
    if isinstance(value, bytes):
        from repro.sql.types import BinaryType

        return Literal(value, BinaryType)
    raise AnalysisError(f"cannot make a literal from {type(value).__name__}")


class UnresolvedAttribute(Expression):
    """A column name straight from the parser, possibly ``qualifier.name``."""

    def __init__(self, name: str, qualifier: Optional[str] = None) -> None:
        self.name = name
        self.qualifier = qualifier

    def with_new_children(self, children: Sequence[Expression]) -> "UnresolvedAttribute":
        return self

    def data_type(self) -> DataType:
        raise AnalysisError(f"unresolved attribute {self.display()}")

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __repr__(self) -> str:
        return f"?{self.display()}"


class Attribute(Expression):
    """A resolved column, identified by ``attr_id`` across the whole plan."""

    def __init__(self, name: str, dtype: DataType, attr_id: Optional[int] = None,
                 qualifier: Optional[str] = None) -> None:
        self.name = name
        self.dtype = dtype
        self.attr_id = attr_id if attr_id is not None else next_expr_id()
        self.qualifier = qualifier

    def data_type(self) -> DataType:
        return self.dtype

    def with_new_children(self, children: Sequence[Expression]) -> "Attribute":
        return self

    def with_qualifier(self, qualifier: str) -> "Attribute":
        return Attribute(self.name, self.dtype, self.attr_id, qualifier)

    def renewed(self) -> "Attribute":
        """Same name/type, fresh id (for self-join disambiguation)."""
        return Attribute(self.name, self.dtype, None, self.qualifier)

    def __repr__(self) -> str:
        prefix = f"{self.qualifier}." if self.qualifier else ""
        return f"{prefix}{self.name}#{self.attr_id}"


class BoundReference(Expression):
    """A positional column reference, ready for tuple evaluation."""

    def __init__(self, ordinal: int, dtype: DataType, name: str = "") -> None:
        self.ordinal = ordinal
        self.dtype = dtype
        self.name = name

    def eval(self, row: tuple) -> object:
        return row[self.ordinal]

    def data_type(self) -> DataType:
        return self.dtype

    def with_new_children(self, children: Sequence[Expression]) -> "BoundReference":
        return self

    def __repr__(self) -> str:
        return f"input[{self.ordinal}]"


class Alias(Expression):
    """Names the result of an expression; owns an attribute id."""

    def __init__(self, child: Expression, name: str, attr_id: Optional[int] = None) -> None:
        self.children = (child,)
        self.name = name
        self.attr_id = attr_id if attr_id is not None else next_expr_id()

    @property
    def child(self) -> Expression:
        return self.children[0]

    def eval(self, row: tuple) -> object:
        return self.child.eval(row)

    def data_type(self) -> DataType:
        return self.child.data_type()

    def with_new_children(self, children: Sequence[Expression]) -> "Alias":
        return Alias(children[0], self.name, self.attr_id)

    def to_attribute(self) -> Attribute:
        return Attribute(self.name, self.data_type(), self.attr_id)

    def __repr__(self) -> str:
        return f"{self.child!r} AS {self.name}"


class InSubquery(Expression):
    """``expr IN (SELECT ...)``: rewritten to a LEFT SEMI join by analysis."""

    def __init__(self, value: Expression, subquery) -> None:
        self.children = (value,)
        self.subquery = subquery  # an unresolved LogicalPlan

    @property
    def value(self) -> Expression:
        return self.children[0]

    def with_new_children(self, children: Sequence[Expression]) -> "InSubquery":
        return InSubquery(children[0], self.subquery)

    def __repr__(self) -> str:
        return f"({self.value!r} IN <subquery>)"


class Exists(Expression):
    """``EXISTS (SELECT ...)``: rewritten to a SEMI (or ANTI) join."""

    def __init__(self, subquery) -> None:
        self.subquery = subquery

    def with_new_children(self, children: Sequence[Expression]) -> "Exists":
        return self

    def __repr__(self) -> str:
        return "EXISTS <subquery>"


class SortOrdinal(Expression):
    """``ORDER BY 2``: a 1-based select-list position, resolved by analysis."""

    def __init__(self, position: int) -> None:
        if position < 1:
            raise AnalysisError("ORDER BY ordinals are 1-based")
        self.position = position

    def with_new_children(self, children: Sequence[Expression]) -> "SortOrdinal":
        return self

    def __repr__(self) -> str:
        return f"${self.position}"


class Star(Expression):
    """``SELECT *`` placeholder, expanded by the analyzer."""

    def __init__(self, qualifier: Optional[str] = None) -> None:
        self.qualifier = qualifier

    def with_new_children(self, children: Sequence[Expression]) -> "Star":
        return self

    def __repr__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


# -- arithmetic / comparison ---------------------------------------------------

_ARITH_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
}


class BinaryArithmetic(Expression):
    """``a (+|-|*|/|%) b`` with NULL propagation."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH_OPS:
            raise AnalysisError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.children = (left, right)

    def eval(self, row: tuple) -> object:
        a = self.children[0].eval(row)
        b = self.children[1].eval(row)
        if a is None or b is None:
            return None
        return _ARITH_OPS[self.op](a, b)

    def data_type(self) -> DataType:
        left_t = self.children[0].data_type()
        right_t = self.children[1].data_type()
        if not (is_numeric(left_t) and is_numeric(right_t)):
            raise AnalysisError(f"arithmetic on non-numeric types {left_t}/{right_t}")
        if self.op == "/":
            return DoubleType
        if left_t.python_type is float or right_t.python_type is float:
            return DoubleType
        return LongType

    def with_new_children(self, children: Sequence[Expression]) -> "BinaryArithmetic":
        return BinaryArithmetic(self.op, children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.children[0]!r} {self.op} {self.children[1]!r})"


_CMP_OPS: dict = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """``a (=|!=|<|<=|>|>=) b`` with NULL propagation."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _CMP_OPS:
            raise AnalysisError(f"unknown comparison operator {op!r}")
        self.op = op
        self.children = (left, right)

    def eval(self, row: tuple) -> object:
        a = self.children[0].eval(row)
        b = self.children[1].eval(row)
        if a is None or b is None:
            return None
        return _CMP_OPS[self.op](a, b)

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "Comparison":
        return Comparison(self.op, children[0], children[1])

    def negated(self) -> "Comparison":
        flip = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
        return Comparison(flip[self.op], *self.children)

    def __repr__(self) -> str:
        return f"({self.children[0]!r} {self.op} {self.children[1]!r})"


class And(Expression):
    """Three-valued logical AND."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.children = (left, right)

    def eval(self, row: tuple) -> object:
        a = self.children[0].eval(row)
        if a is False:
            return False
        b = self.children[1].eval(row)
        if b is False:
            return False
        if a is None or b is None:
            return None
        return True

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "And":
        return And(children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.children[0]!r} AND {self.children[1]!r})"


class Or(Expression):
    """Three-valued logical OR."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.children = (left, right)

    def eval(self, row: tuple) -> object:
        a = self.children[0].eval(row)
        if a is True:
            return True
        b = self.children[1].eval(row)
        if b is True:
            return True
        if a is None or b is None:
            return None
        return False

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "Or":
        return Or(children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.children[0]!r} OR {self.children[1]!r})"


class Not(Expression):
    """Logical negation (NULL stays NULL)."""

    def __init__(self, child: Expression) -> None:
        self.children = (child,)

    def eval(self, row: tuple) -> object:
        value = self.children[0].eval(row)
        if value is None:
            return None
        return not value

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "Not":
        return Not(children[0])

    def __repr__(self) -> str:
        return f"(NOT {self.children[0]!r})"


class In(Expression):
    """``expr IN (v1, v2, ...)``; NULL if the needle is NULL."""

    def __init__(self, value: Expression, options: Sequence[Expression]) -> None:
        self.children = (value,) + tuple(options)

    @property
    def value(self) -> Expression:
        return self.children[0]

    @property
    def options(self) -> Tuple[Expression, ...]:
        return self.children[1:]

    def eval(self, row: tuple) -> object:
        needle = self.value.eval(row)
        if needle is None:
            return None
        saw_null = False
        for option in self.options:
            candidate = option.eval(row)
            if candidate is None:
                saw_null = True
            elif candidate == needle:
                return True
        return None if saw_null else False

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "In":
        return In(children[0], children[1:])

    def __repr__(self) -> str:
        opts = ", ".join(repr(o) for o in self.options)
        return f"({self.value!r} IN ({opts}))"


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    def __init__(self, value: Expression, pattern: str) -> None:
        self.children = (value,)
        self.pattern = pattern
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        self._regex = re.compile(f"^{regex}$", re.DOTALL)

    def eval(self, row: tuple) -> object:
        value = self.children[0].eval(row)
        if value is None:
            return None
        return bool(self._regex.match(str(value)))

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "Like":
        return Like(children[0], self.pattern)

    def __repr__(self) -> str:
        return f"({self.children[0]!r} LIKE {self.pattern!r})"


class IsNull(Expression):
    """SQL ``IS NULL``."""

    def __init__(self, child: Expression) -> None:
        self.children = (child,)

    def eval(self, row: tuple) -> object:
        return self.children[0].eval(row) is None

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "IsNull":
        return IsNull(children[0])

    def __repr__(self) -> str:
        return f"({self.children[0]!r} IS NULL)"


class IsNotNull(Expression):
    """SQL ``IS NOT NULL``."""

    def __init__(self, child: Expression) -> None:
        self.children = (child,)

    def eval(self, row: tuple) -> object:
        return self.children[0].eval(row) is not None

    def data_type(self) -> DataType:
        return BooleanType

    def with_new_children(self, children: Sequence[Expression]) -> "IsNotNull":
        return IsNotNull(children[0])

    def __repr__(self) -> str:
        return f"({self.children[0]!r} IS NOT NULL)"


class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END``."""

    def __init__(self, branches: Sequence[Tuple[Expression, Expression]],
                 else_value: Optional[Expression] = None) -> None:
        flat: List[Expression] = []
        for cond, value in branches:
            flat.extend((cond, value))
        self._num_branches = len(branches)
        self.else_value_present = else_value is not None
        if else_value is not None:
            flat.append(else_value)
        self.children = tuple(flat)

    def branches(self) -> List[Tuple[Expression, Expression]]:
        return [
            (self.children[2 * i], self.children[2 * i + 1])
            for i in range(self._num_branches)
        ]

    def else_value(self) -> Optional[Expression]:
        return self.children[-1] if self.else_value_present else None

    def eval(self, row: tuple) -> object:
        for cond, value in self.branches():
            if cond.eval(row) is True:
                return value.eval(row)
        tail = self.else_value()
        return tail.eval(row) if tail is not None else None

    def data_type(self) -> DataType:
        return self.children[1].data_type()

    def with_new_children(self, children: Sequence[Expression]) -> "CaseWhen":
        n = self._num_branches
        branches = [(children[2 * i], children[2 * i + 1]) for i in range(n)]
        tail = children[-1] if self.else_value_present else None
        return CaseWhen(branches, tail)

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.branches())
        tail = f" ELSE {self.else_value()!r}" if self.else_value_present else ""
        return f"CASE {parts}{tail} END"


class Cast(Expression):
    """Type conversion; invalid casts yield NULL (Spark semantics)."""

    def __init__(self, child: Expression, dtype: DataType) -> None:
        self.children = (child,)
        self.dtype = dtype

    def eval(self, row: tuple) -> object:
        value = self.children[0].eval(row)
        if value is None:
            return None
        try:
            if self.dtype is BooleanType:
                return bool(value)
            if self.dtype is StringType:
                return str(value)
            if self.dtype.python_type is int:
                return int(value)
            if self.dtype.python_type is float:
                return float(value)
            return value
        except (TypeError, ValueError):
            return None

    def data_type(self) -> DataType:
        return self.dtype

    def with_new_children(self, children: Sequence[Expression]) -> "Cast":
        return Cast(children[0], self.dtype)

    def __repr__(self) -> str:
        return f"CAST({self.children[0]!r} AS {self.dtype})"


class ScalarFunction(Expression):
    """Built-in scalar functions (abs, round, coalesce, ...)."""

    _FUNCTIONS: dict = {
        "abs": (lambda args: abs(args[0]) if args[0] is not None else None, None),
        "round": (
            lambda args: round(args[0], int(args[1]) if len(args) > 1 else 0)
            if args[0] is not None else None,
            DoubleType,
        ),
        "sqrt": (
            lambda args: math.sqrt(args[0])
            if args[0] is not None and args[0] >= 0 else None,
            DoubleType,
        ),
        "coalesce": (
            lambda args: next((a for a in args if a is not None), None), None
        ),
        "lower": (lambda args: args[0].lower() if args[0] is not None else None, StringType),
        "upper": (lambda args: args[0].upper() if args[0] is not None else None, StringType),
        "length": (lambda args: len(args[0]) if args[0] is not None else None, LongType),
        "concat": (
            lambda args: "".join(str(a) for a in args)
            if all(a is not None for a in args) else None,
            StringType,
        ),
        # 1-based start like SQL SUBSTRING(s, pos, len)
        "substring": (
            lambda args: None if args[0] is None else (
                args[0][max(0, int(args[1]) - 1):]
                if len(args) < 3
                else args[0][max(0, int(args[1]) - 1):
                             max(0, int(args[1]) - 1) + int(args[2])]
            ),
            StringType,
        ),
        "trim": (lambda args: args[0].strip() if args[0] is not None else None,
                 StringType),
        "ltrim": (lambda args: args[0].lstrip() if args[0] is not None else None,
                  StringType),
        "rtrim": (lambda args: args[0].rstrip() if args[0] is not None else None,
                  StringType),
        "replace": (
            lambda args: args[0].replace(str(args[1]), str(args[2]))
            if all(a is not None for a in args) else None,
            StringType,
        ),
        # 1-based position of needle in haystack; 0 when absent (SQL INSTR)
        "instr": (
            lambda args: None if args[0] is None or args[1] is None
            else args[0].find(str(args[1])) + 1,
            LongType,
        ),
        "floor": (
            lambda args: None if args[0] is None else math.floor(args[0]),
            LongType,
        ),
        "ceil": (
            lambda args: None if args[0] is None else math.ceil(args[0]),
            LongType,
        ),
        "power": (
            lambda args: None if args[0] is None or args[1] is None
            else float(args[0]) ** float(args[1]),
            DoubleType,
        ),
        "greatest": (
            lambda args: None if any(a is None for a in args) else max(args),
            None,
        ),
        "least": (
            lambda args: None if any(a is None for a in args) else min(args),
            None,
        ),
        "if": (
            lambda args: args[1] if args[0] is True else args[2],
            None,
        ),
    }

    @classmethod
    def is_known(cls, name: str) -> bool:
        return name.lower() in cls._FUNCTIONS

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        key = name.lower()
        if key not in self._FUNCTIONS:
            raise AnalysisError(f"unknown function {name!r}")
        self.name = key
        self.children = tuple(args)

    def eval(self, row: tuple) -> object:
        fn, __ = self._FUNCTIONS[self.name]
        return fn([c.eval(row) for c in self.children])

    def data_type(self) -> DataType:
        __, dtype = self._FUNCTIONS[self.name]
        return dtype if dtype is not None else self.children[0].data_type()

    def with_new_children(self, children: Sequence[Expression]) -> "ScalarFunction":
        return ScalarFunction(self.name, children)

    def __repr__(self) -> str:
        args = ", ".join(repr(c) for c in self.children)
        return f"{self.name}({args})"


# -- aggregates -------------------------------------------------------------------

class AggregateExpression(Expression):
    """Base for aggregate functions with partial-aggregation support."""

    def __init__(self, child: Optional[Expression], distinct: bool = False) -> None:
        self.children = (child,) if child is not None else ()
        self.distinct = distinct

    @property
    def child(self) -> Optional[Expression]:
        return self.children[0] if self.children else None

    # partial aggregation protocol
    def init_acc(self) -> object:
        raise NotImplementedError

    def update(self, acc: object, row: tuple) -> object:
        raise NotImplementedError

    def merge(self, acc1: object, acc2: object) -> object:
        raise NotImplementedError

    def finish(self, acc: object) -> object:
        raise NotImplementedError

    def eval(self, row: tuple) -> object:
        raise AnalysisError("aggregate expressions cannot be row-evaluated")

    def _arg(self, row: tuple) -> object:
        return self.child.eval(row) if self.child is not None else None


class Count(AggregateExpression):
    """COUNT(*) / COUNT(expr) / COUNT(DISTINCT expr)."""

    def data_type(self) -> DataType:
        return LongType

    def init_acc(self) -> object:
        return set() if self.distinct else 0

    def update(self, acc: object, row: tuple) -> object:
        if self.child is None:
            return acc + 1
        value = self._arg(row)
        if value is None:
            return acc
        if self.distinct:
            acc.add(value)
            return acc
        return acc + 1

    def merge(self, acc1: object, acc2: object) -> object:
        if self.distinct:
            return acc1 | acc2
        return acc1 + acc2

    def finish(self, acc: object) -> object:
        return len(acc) if self.distinct else acc

    def with_new_children(self, children: Sequence[Expression]) -> "Count":
        return Count(children[0] if children else None, self.distinct)

    def __repr__(self) -> str:
        inner = "*" if self.child is None else repr(self.child)
        prefix = "DISTINCT " if self.distinct else ""
        return f"count({prefix}{inner})"


class Sum(AggregateExpression):
    """SUM (NULLs ignored; empty input yields NULL)."""

    def data_type(self) -> DataType:
        return self.child.data_type() if self.child.data_type() is DoubleType else LongType

    def init_acc(self) -> object:
        return None

    def update(self, acc: object, row: tuple) -> object:
        value = self._arg(row)
        if value is None:
            return acc
        return value if acc is None else acc + value

    def merge(self, acc1: object, acc2: object) -> object:
        if acc1 is None:
            return acc2
        if acc2 is None:
            return acc1
        return acc1 + acc2

    def finish(self, acc: object) -> object:
        return acc

    def with_new_children(self, children: Sequence[Expression]) -> "Sum":
        return Sum(children[0], self.distinct)

    def __repr__(self) -> str:
        return f"sum({self.child!r})"


class Avg(AggregateExpression):
    """AVG as a (sum, count) accumulator."""

    def data_type(self) -> DataType:
        return DoubleType

    def init_acc(self) -> object:
        return (0.0, 0)

    def update(self, acc: object, row: tuple) -> object:
        value = self._arg(row)
        if value is None:
            return acc
        total, count = acc
        return (total + value, count + 1)

    def merge(self, acc1: object, acc2: object) -> object:
        return (acc1[0] + acc2[0], acc1[1] + acc2[1])

    def finish(self, acc: object) -> object:
        total, count = acc
        return total / count if count else None

    def with_new_children(self, children: Sequence[Expression]) -> "Avg":
        return Avg(children[0], self.distinct)

    def __repr__(self) -> str:
        return f"avg({self.child!r})"


class Min(AggregateExpression):
    """MIN (NULLs ignored)."""

    def data_type(self) -> DataType:
        return self.child.data_type()

    def init_acc(self) -> object:
        return None

    def update(self, acc: object, row: tuple) -> object:
        value = self._arg(row)
        if value is None:
            return acc
        return value if acc is None or value < acc else acc

    def merge(self, acc1: object, acc2: object) -> object:
        if acc1 is None:
            return acc2
        if acc2 is None:
            return acc1
        return min(acc1, acc2)

    def finish(self, acc: object) -> object:
        return acc

    def with_new_children(self, children: Sequence[Expression]) -> "Min":
        return Min(children[0], self.distinct)

    def __repr__(self) -> str:
        return f"min({self.child!r})"


class Max(AggregateExpression):
    """MAX (NULLs ignored)."""

    def data_type(self) -> DataType:
        return self.child.data_type()

    def init_acc(self) -> object:
        return None

    def update(self, acc: object, row: tuple) -> object:
        value = self._arg(row)
        if value is None:
            return acc
        return value if acc is None or value > acc else acc

    def merge(self, acc1: object, acc2: object) -> object:
        if acc1 is None:
            return acc2
        if acc2 is None:
            return acc1
        return max(acc1, acc2)

    def finish(self, acc: object) -> object:
        return acc

    def with_new_children(self, children: Sequence[Expression]) -> "Max":
        return Max(children[0], self.distinct)

    def __repr__(self) -> str:
        return f"max({self.child!r})"


class StddevSamp(AggregateExpression):
    """Sample standard deviation, merged with Chan's parallel formula."""

    def data_type(self) -> DataType:
        return DoubleType

    def init_acc(self) -> object:
        return (0, 0.0, 0.0)  # count, mean, M2

    def update(self, acc: object, row: tuple) -> object:
        value = self._arg(row)
        if value is None:
            return acc
        count, mean, m2 = acc
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
        return (count, mean, m2)

    def merge(self, acc1: object, acc2: object) -> object:
        n1, mean1, m2_1 = acc1
        n2, mean2, m2_2 = acc2
        if n1 == 0:
            return acc2
        if n2 == 0:
            return acc1
        n = n1 + n2
        delta = mean2 - mean1
        mean = mean1 + delta * n2 / n
        m2 = m2_1 + m2_2 + delta * delta * n1 * n2 / n
        return (n, mean, m2)

    def finish(self, acc: object) -> object:
        count, __, m2 = acc
        if count < 2:
            return None
        return math.sqrt(m2 / (count - 1))

    def with_new_children(self, children: Sequence[Expression]) -> "StddevSamp":
        return StddevSamp(children[0], self.distinct)

    def __repr__(self) -> str:
        return f"stddev_samp({self.child!r})"


AGGREGATE_BUILDERS = {
    "count": Count,
    "sum": Sum,
    "avg": Avg,
    "mean": Avg,
    "min": Min,
    "max": Max,
    "stddev": StddevSamp,
    "stddev_samp": StddevSamp,
}


def same_expression(a: Expression, b: Expression) -> bool:
    """Structural equality: attributes by id, literals by value, ops by kind.

    Used to recognise that a select item like ``k % 2`` *is* the grouping
    expression ``k % 2`` even though they are distinct tree objects.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, Attribute):
        return a.attr_id == b.attr_id
    if isinstance(a, Literal):
        return a.value == b.value and a.dtype == b.dtype
    if isinstance(a, BoundReference):
        return a.ordinal == b.ordinal
    if isinstance(a, (BinaryArithmetic, Comparison)):
        if a.op != b.op:
            return False
    if isinstance(a, Like) and a.pattern != b.pattern:
        return False
    if isinstance(a, Cast) and a.dtype != b.dtype:
        return False
    if isinstance(a, ScalarFunction) and a.name != b.name:
        return False
    if isinstance(a, Alias):
        return same_expression(a.child, b.child)
    if len(a.children) != len(b.children):
        return False
    return all(same_expression(x, y) for x, y in zip(a.children, b.children))


def contains_aggregate(expr: Expression) -> bool:
    """Does the tree contain any aggregate function call?"""
    return bool(expr.collect(lambda e: isinstance(e, AggregateExpression)))


# -- binding -------------------------------------------------------------------

def bind_expression(expr: Expression, input_attrs: Sequence[Attribute]) -> Expression:
    """Replace Attribute leaves with positional BoundReferences."""
    index = {attr.attr_id: i for i, attr in enumerate(input_attrs)}

    def rewrite(node: Expression) -> Optional[Expression]:
        if isinstance(node, Attribute):
            ordinal = index.get(node.attr_id)
            if ordinal is None:
                raise AnalysisError(
                    f"cannot bind {node!r}; available: {list(input_attrs)!r}"
                )
            return BoundReference(ordinal, node.dtype, node.name)
        return None

    return expr.transform(rewrite)


def split_conjuncts(expr: Expression) -> List[Expression]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(expr, And):
        return split_conjuncts(expr.children[0]) + split_conjuncts(expr.children[1])
    return [expr]


def combine_conjuncts(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild an AND tree (None for an empty list)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else And(result, conjunct)
    return result

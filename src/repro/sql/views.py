"""Materialized views: storage, CDC-driven maintenance, query rewriting.

``CREATE MATERIALIZED VIEW <name> AS <select>`` persists an aggregation (or
a two-table equi-join) as a real HBase table whose composite row key is
derived from the group-by (or join) keys -- so a dashboard query that the
optimizer answers from the view becomes a pruned point-range read instead
of a full base-table scan (ROADMAP item 1, after Hive's materialized-view
rewriting).  Three cooperating pieces live here:

- **Definition & storage** (:func:`derive_view_definition`).  The defining
  query is analyzed and restricted to shapes we can maintain exactly:
  ``GROUP BY`` over one HBase table with Count/Sum/Avg/Min/Max aggregates,
  or an inner equi-join of a fact table against a dimension table keyed by
  its whole row key.  The view's storage catalog leads with the group-by
  columns (fact row key for joins) so group predicates prune regions, and
  Avg additionally persists hidden ``(sum, count)`` helper columns so it
  can be maintained incrementally without losing exactness.
- **Incremental maintenance** (:class:`ViewMaintainer`).  A WAL-tailing
  :class:`~repro.hbase.cdc.CDCStream` subscription delivers base-table
  Puts and Deletes; fresh inserts apply as additive deltas, overwrites and
  tombstones recount just the affected groups through a row-key prefix
  scan (the Min/Max tombstone-recount path), and join views upsert by key.
  Shapes the incremental path cannot repair exactly invalidate the view
  until ``REFRESH MATERIALIZED VIEW`` recomputes it.  All maintenance I/O
  is billed to a cluster-owned cost ledger under ``sql.view.*`` counters.
- **Automatic rewriting** (:func:`rewrite_with_views`).  During
  optimization, a matching Aggregate (or Project-over-Join) subtree is
  replaced by a scan of the view -- but only when the view is *fresh
  enough*: not invalidated, and its CDC lag (simulated seconds of
  unshipped WAL tail) is within ``sql.view.staleness``.  The replacement
  is priced against the base plan -- with PR-8's statistics when
  ``sql.cbo.enabled`` provides them, else by relation size -- and every
  decision surfaces in EXPLAIN's "Materialized Views" section.

Everything is gated on ``sql.view.enabled``; with the flag off (or on but
no view created) no code here runs and every ledger stays byte-identical
to the seed (tests/integration/test_view_invariance.py).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import AnalysisError
from repro.common.metrics import CostLedger, MetricsRegistry
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.types import type_from_name

#: table attribute under which a view's definition JSON is persisted
VIEW_ATTRIBUTE = "shc.view.definition"

#: storage table name prefix (keeps view tables out of base-table namespace)
VIEW_TABLE_PREFIX = "mv_"

#: hidden helper columns (never exposed to the rewriter)
ROWS_HELPER = "_rows"

_AGG_NAMES = {E.Count: "count", E.Sum: "sum", E.Avg: "avg",
              E.Min: "min", E.Max: "max"}
_AGG_BUILDERS = {"count": E.Count, "sum": E.Sum, "avg": E.Avg,
                 "min": E.Min, "max": E.Max}

#: encoded width reserved for variable-width (string) key dimensions
KEY_DIMENSION_LENGTH = 64


class ViewDefinition:
    """Everything needed to rebuild, maintain and match one view."""

    def __init__(self, name: str, kind: str, sql: str, quorum: str,
                 base_table: str, base_catalog: str,
                 group_by: Sequence[str], aggregates: Sequence[dict],
                 storage_catalog: str, public_catalog: str,
                 prefix_recountable: bool = False,
                 right_table: Optional[str] = None,
                 right_catalog: Optional[str] = None,
                 left_key: Optional[str] = None,
                 right_key: Optional[str] = None,
                 columns: Sequence[dict] = (),
                 invalidated: bool = False) -> None:
        self.name = name
        self.kind = kind  # "aggregate" | "join"
        self.sql = sql
        self.quorum = quorum
        self.base_table = base_table
        self.base_catalog = base_catalog
        #: group-by columns in storage row-key order (aggregate views)
        self.group_by = list(group_by)
        #: [{"fn", "arg", "out", "type"}] (aggregate views)
        self.aggregates = [dict(a) for a in aggregates]
        self.storage_catalog = storage_catalog
        self.public_catalog = public_catalog
        #: group-by columns form a prefix of the base row key, so affected
        #: groups can be recounted with one range scan
        self.prefix_recountable = prefix_recountable
        self.right_table = right_table
        self.right_catalog = right_catalog
        self.left_key = left_key
        self.right_key = right_key
        #: [{"side", "col", "out", "type"}] (join views)
        self.columns = [dict(c) for c in columns]
        self.invalidated = invalidated

    @property
    def storage_table(self) -> str:
        return VIEW_TABLE_PREFIX + self.name

    @property
    def subscription_name(self) -> str:
        return f"view:{self.name}"

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name, "kind": self.kind, "sql": self.sql,
            "quorum": self.quorum, "base_table": self.base_table,
            "base_catalog": self.base_catalog, "group_by": self.group_by,
            "aggregates": self.aggregates,
            "storage_catalog": self.storage_catalog,
            "public_catalog": self.public_catalog,
            "prefix_recountable": self.prefix_recountable,
            "right_table": self.right_table,
            "right_catalog": self.right_catalog,
            "left_key": self.left_key, "right_key": self.right_key,
            "columns": self.columns, "invalidated": self.invalidated,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ViewDefinition":
        spec = json.loads(text)
        return cls(**spec)


# -- definition derivation -------------------------------------------------------

def _strip_scopes(node: L.LogicalPlan) -> L.LogicalPlan:
    while isinstance(node, L.SubqueryAlias):
        node = node.children[0]
    return node


def _hbase_leaf(node: L.LogicalPlan):
    """The node as an HBase-backed LogicalRelation, or None."""
    node = _strip_scopes(node)
    if isinstance(node, L.LogicalRelation):
        relation = node.relation
        if hasattr(relation, "catalog") and hasattr(relation, "cluster"):
            return node
    return None


def _key_column_spec(name: str, dtype, length: Optional[int],
                     terminal: bool) -> dict:
    spec = {"cf": "rowkey", "col": name, "type": dtype.name}
    if length is not None:
        spec["length"] = length
    elif dtype.fixed_width is None and not terminal:
        spec["length"] = KEY_DIMENSION_LENGTH
    return spec


def _view_catalog_json(table_name: str, coder: str, key_columns: List[dict],
                       data_columns: List[dict]) -> str:
    return json.dumps({
        "table": {"namespace": "default", "name": table_name,
                  "tableCoder": coder, "Version": "2.0"},
        "rowkey": ":".join(spec["col"] for spec in key_columns),
        "columns": {spec["col"]: dict(spec) for spec in key_columns + data_columns},
    })


def derive_view_definition(name: str, analyzed: L.LogicalPlan,
                           sql_text: str) -> ViewDefinition:
    """Validate a defining query and derive the view's stored layout."""
    node = _strip_scopes(analyzed)
    if isinstance(node, L.Aggregate):
        return _derive_aggregate(name, node, sql_text)
    if isinstance(node, L.Project) and node.children \
            and isinstance(_strip_scopes(node.children[0]), L.Join):
        return _derive_join(name, node, _strip_scopes(node.children[0]),
                            sql_text)
    raise AnalysisError(
        "a materialized view must be a GROUP BY aggregate over one HBase "
        "table or a two-table inner equi-join select"
    )


def _derive_aggregate(name: str, agg: L.Aggregate,
                      sql_text: str) -> ViewDefinition:
    leaf = _hbase_leaf(agg.children[0])
    if leaf is None:
        raise AnalysisError(
            "an aggregate materialized view must group one HBase table "
            "directly (no filters, joins or subqueries in the definition)"
        )
    relation = leaf.relation
    catalog = relation.catalog
    attr_names = {a.attr_id: a.name for a in leaf.output}

    if not agg.groupings:
        raise AnalysisError(
            "a materialized view needs at least one GROUP BY column"
        )
    group_by: List[str] = []
    for g in agg.groupings:
        if not isinstance(g, E.Attribute) or g.attr_id not in attr_names:
            raise AnalysisError(
                f"materialized-view GROUP BY supports plain columns only, "
                f"not {g!r}"
            )
        group_by.append(g.name)
    if len(set(group_by)) != len(group_by):
        raise AnalysisError("duplicate GROUP BY column in view definition")

    grouping_ids = {g.attr_id for g in agg.groupings}
    aggregates: List[dict] = []
    for item in agg.aggregate_list:
        if isinstance(item, E.Attribute):
            if item.attr_id not in grouping_ids:
                raise AnalysisError(f"{item!r} is not a grouping column")
            continue
        expr = item.child
        if isinstance(expr, E.Attribute):
            if expr.attr_id not in grouping_ids:
                raise AnalysisError(f"{expr!r} is not a grouping column")
            continue
        fn = _AGG_NAMES.get(type(expr))
        if fn is None or not isinstance(expr, E.AggregateExpression):
            raise AnalysisError(
                f"materialized views support count/sum/avg/min/max, "
                f"not {item!r}"
            )
        if expr.distinct:
            raise AnalysisError(
                "DISTINCT aggregates cannot be maintained incrementally"
            )
        arg: Optional[str] = None
        if expr.children:
            child = expr.children[0]
            if not isinstance(child, E.Attribute) \
                    or child.attr_id not in attr_names:
                raise AnalysisError(
                    f"aggregate arguments must be plain columns, not {child!r}"
                )
            arg = child.name
        aggregates.append({"fn": fn, "arg": arg, "out": item.name,
                           "type": expr.data_type().name})
    if not aggregates:
        raise AnalysisError("a materialized view needs at least one aggregate")

    outs = [a["out"] for a in aggregates]
    helper_names = [ROWS_HELPER] + [
        h for a in aggregates if a["fn"] == "avg"
        for h in (f"_sum_{a['out']}", f"_cnt_{a['out']}")
    ]
    taken: Set[str] = set()
    for out in outs + group_by + helper_names:
        if out in taken:
            raise AnalysisError(
                f"view output name {out!r} is used more than once"
            )
        taken.add(out)

    # storage row key: group columns, in base row-key order when they form
    # a prefix of it (then tombstones recount with one prefix range scan)
    key_prefix = list(catalog.row_key[:len(group_by)])
    prefix_recountable = set(group_by) == set(key_prefix)
    if prefix_recountable:
        group_by = key_prefix

    attr_by_name = {a.name: a for a in leaf.output}
    key_columns = []
    for i, g in enumerate(group_by):
        dtype = attr_by_name[g].dtype
        base_col = catalog.columns.get(g)
        length = base_col.length if base_col is not None else None
        key_columns.append(
            _key_column_spec(g, dtype, length, i == len(group_by) - 1))

    data_columns = [{"cf": "m", "col": a["out"], "type": a["type"]}
                    for a in aggregates]
    helper_columns = [{"cf": "m", "col": ROWS_HELPER, "type": "bigint"}]
    for a in aggregates:
        if a["fn"] != "avg":
            continue
        sum_type = E.Sum(attr_by_name[a["arg"]]).data_type().name
        helper_columns.append(
            {"cf": "m", "col": f"_sum_{a['out']}", "type": sum_type})
        helper_columns.append(
            {"cf": "m", "col": f"_cnt_{a['out']}", "type": "bigint"})

    table_name = VIEW_TABLE_PREFIX + name
    coder = catalog.table_coder
    storage = _view_catalog_json(table_name, coder, key_columns,
                                 data_columns + helper_columns)
    public = _view_catalog_json(table_name, coder, key_columns, data_columns)
    return ViewDefinition(
        name=name, kind="aggregate", sql=sql_text,
        quorum=relation.cluster.quorum,
        base_table=catalog.qualified_name,
        base_catalog=relation.options.get("catalog"),
        group_by=group_by, aggregates=aggregates,
        storage_catalog=storage, public_catalog=public,
        prefix_recountable=prefix_recountable,
    )


def _derive_join(name: str, project: L.Project, join: L.Join,
                 sql_text: str) -> ViewDefinition:
    if join.how != "inner":
        raise AnalysisError("join materialized views must be INNER joins")
    left = _hbase_leaf(join.children[0])
    right = _hbase_leaf(join.children[1])
    if left is None or right is None:
        raise AnalysisError(
            "join materialized views must join two HBase tables directly"
        )
    if left.relation.cluster is not right.relation.cluster:
        raise AnalysisError("both join sides must live on the same cluster")
    cond = join.condition
    if not isinstance(cond, E.Comparison) or cond.op != "=":
        raise AnalysisError(
            "join materialized views need a single equi-join condition"
        )
    left_ids = {a.attr_id: a.name for a in left.output}
    right_ids = {a.attr_id: a.name for a in right.output}
    a, b = cond.children
    if not (isinstance(a, E.Attribute) and isinstance(b, E.Attribute)):
        raise AnalysisError("the join condition must compare plain columns")
    if a.attr_id in left_ids and b.attr_id in right_ids:
        left_key, right_key = a.name, b.name
    elif b.attr_id in left_ids and a.attr_id in right_ids:
        left_key, right_key = b.name, a.name
    else:
        raise AnalysisError("the join condition must span both tables")

    right_catalog = right.relation.catalog
    if list(right_catalog.row_key) != [right_key]:
        raise AnalysisError(
            f"the dimension side's join key must be its whole row key "
            f"({right_catalog.row_key!r}), so maintenance can re-join by "
            f"point lookup"
        )

    columns: List[dict] = []
    taken: Set[str] = set()
    for item in project.project_list:
        attr = item.child if isinstance(item, E.Alias) else item
        if not isinstance(attr, E.Attribute):
            raise AnalysisError(
                f"join view select lists support plain columns, not {item!r}"
            )
        if attr.attr_id in left_ids:
            side = "left"
        elif attr.attr_id in right_ids:
            side = "right"
        else:
            raise AnalysisError(f"cannot place {item!r} on either join side")
        out = item.name
        if out in taken:
            raise AnalysisError(
                f"view output name {out!r} is used more than once")
        taken.add(out)
        columns.append({"side": side, "col": attr.name, "out": out,
                        "type": attr.dtype.name})
    if not columns:
        raise AnalysisError("a join view must select at least one column")

    left_catalog = left.relation.catalog
    key_columns = []
    for i, dim in enumerate(left_catalog.row_key):
        col = left_catalog.column(dim)
        key_columns.append(_key_column_spec(
            f"_k{i}", col.dtype, col.length,
            i == len(left_catalog.row_key) - 1))
    data_columns = [{"cf": "m", "col": c["out"], "type": c["type"]}
                    for c in columns]
    table_name = VIEW_TABLE_PREFIX + name
    coder = left_catalog.table_coder
    storage = _view_catalog_json(table_name, coder, key_columns, data_columns)
    return ViewDefinition(
        name=name, kind="join", sql=sql_text,
        quorum=left.relation.cluster.quorum,
        base_table=left_catalog.qualified_name,
        base_catalog=left.relation.options.get("catalog"),
        group_by=[], aggregates=[],
        storage_catalog=storage, public_catalog=storage,
        prefix_recountable=(left_key == left_catalog.row_key[0]),
        right_table=right_catalog.qualified_name,
        right_catalog=right.relation.options.get("catalog"),
        left_key=left_key, right_key=right_key, columns=columns,
    )


# -- materialization -------------------------------------------------------------

def _view_relation(vdef: ViewDefinition, session, public: bool = True):
    from repro.core.catalog import HBaseTableCatalog
    from repro.core.relation import QUORUM_OPTION, HBaseRelation

    catalog = vdef.public_catalog if public else vdef.storage_catalog
    return HBaseRelation({HBaseTableCatalog.tableCatalog: catalog,
                          QUORUM_OPTION: vdef.quorum}, session)


def _base_relation(vdef: ViewDefinition, session, right: bool = False):
    from repro.core.catalog import HBaseTableCatalog
    from repro.core.relation import QUORUM_OPTION, HBaseRelation

    catalog = vdef.right_catalog if right else vdef.base_catalog
    return HBaseRelation({HBaseTableCatalog.tableCatalog: catalog,
                          QUORUM_OPTION: vdef.quorum}, session)


def definition_plan(vdef: ViewDefinition, session) -> L.LogicalPlan:
    """The augmented plan whose output is the view's *storage* schema.

    Rebuilt from the persisted definition (never from the user's original
    plan object) so CREATE and REFRESH materialize the exact same query.
    """
    if vdef.kind == "aggregate":
        leaf = L.LogicalRelation(_base_relation(vdef, session))
        by_name = {a.name: a for a in leaf.output}
        groupings = [by_name[g] for g in vdef.group_by]
        items: List[E.Expression] = [
            E.Alias(by_name[g], g) for g in vdef.group_by
        ]
        for a in vdef.aggregates:
            builder = _AGG_BUILDERS[a["fn"]]
            arg = by_name[a["arg"]] if a["arg"] is not None else None
            items.append(E.Alias(builder(arg), a["out"]))
        items.append(E.Alias(E.Count(None), ROWS_HELPER))
        for a in vdef.aggregates:
            if a["fn"] != "avg":
                continue
            arg = by_name[a["arg"]]
            items.append(E.Alias(E.Sum(arg), f"_sum_{a['out']}"))
            items.append(E.Alias(E.Count(arg), f"_cnt_{a['out']}"))
        return L.Aggregate(groupings, items, leaf)

    left = L.LogicalRelation(_base_relation(vdef, session))
    right = L.LogicalRelation(_base_relation(vdef, session, right=True))
    left_by_name = {a.name: a for a in left.output}
    right_by_name = {a.name: a for a in right.output}
    condition = E.Comparison("=", left_by_name[vdef.left_key],
                             right_by_name[vdef.right_key])
    join = L.Join(left, right, "inner", condition)
    items = []
    for i, dim in enumerate(_left_row_key(vdef)):
        items.append(E.Alias(left_by_name[dim], f"_k{i}"))
    for c in vdef.columns:
        side = left_by_name if c["side"] == "left" else right_by_name
        items.append(E.Alias(side[c["col"]], c["out"]))
    return L.Project(items, join)


def _left_row_key(vdef: ViewDefinition) -> List[str]:
    from repro.core.catalog import HBaseTableCatalog

    return list(HBaseTableCatalog.from_json(vdef.base_catalog).row_key)


# -- the manager -----------------------------------------------------------------

class ViewManager:
    """One session's registry of materialized views (docs/views.md)."""

    def __init__(self, session) -> None:
        self.session = session
        self._views: Dict[str, ViewDefinition] = {}
        self._maintainers: Dict[str, "ViewMaintainer"] = {}

    # -- statements --------------------------------------------------------
    def create(self, name: str, child: L.LogicalPlan, sql_text: str):
        """CREATE MATERIALIZED VIEW: derive, subscribe, materialize, persist."""
        from repro.hbase.cluster import get_cluster

        name = name.lower()
        if name in self._views:
            raise AnalysisError(f"materialized view {name!r} already exists")
        analyzed = self.session.analyze(child)
        vdef = derive_view_definition(name, analyzed, sql_text)
        cluster = get_cluster(vdef.quorum)
        if cluster.has_table(vdef.storage_table):
            raise AnalysisError(
                f"table {vdef.storage_table!r} already exists on the cluster"
            )
        stream = cluster.enable_cdc()
        maintainer = ViewMaintainer(vdef, cluster)
        tables = [vdef.base_table]
        if vdef.kind == "join":
            tables.append(vdef.right_table)
        # subscribe *before* materializing: the snapshot then covers exactly
        # the WAL history before the subscription baseline, and the feed
        # exactly what lands after it
        stream.subscribe(vdef.subscription_name, tables, maintainer.on_change)
        try:
            write = self._materialize(vdef)
        except Exception:
            stream.unsubscribe(vdef.subscription_name)
            raise
        self._persist(cluster, vdef)
        self._views[name] = vdef
        self._maintainers[name] = maintainer
        metrics = MetricsRegistry()
        metrics.merge(write.metrics)
        metrics.incr("sql.view.created")
        return _summary(
            ("view", "string"), ("kind", "string"), ("table", "string"),
            ("rows_written", "bigint"),
            rows=[(name, vdef.kind, vdef.storage_table, write.rows_written)],
            metrics=metrics,
        )

    def refresh(self, name: str):
        """REFRESH MATERIALIZED VIEW: full recompute, feed re-based."""
        from repro.hbase.cluster import get_cluster

        vdef = self._lookup(name)
        cluster = get_cluster(vdef.quorum)
        stream = cluster.enable_cdc()
        maintainer = self._maintainers[vdef.name]
        # re-base the subscription first: the fresh snapshot includes every
        # change up to this instant, so the old cursor state must not replay
        stream.unsubscribe(vdef.subscription_name)
        tables = [vdef.base_table]
        if vdef.kind == "join":
            tables.append(vdef.right_table)
        stream.subscribe(vdef.subscription_name, tables, maintainer.on_change)
        write = self._materialize(vdef)
        vdef.invalidated = False
        self._persist(cluster, vdef)
        metrics = MetricsRegistry()
        metrics.merge(write.metrics)
        metrics.incr("sql.view.refreshed")
        return _summary(
            ("view", "string"), ("rows_written", "bigint"),
            rows=[(vdef.name, write.rows_written)], metrics=metrics,
        )

    def drop(self, name: str):
        """DROP MATERIALIZED VIEW: storage, subscription and registration."""
        from repro.hbase.cluster import get_cluster

        vdef = self._lookup(name)
        cluster = get_cluster(vdef.quorum)
        if cluster.cdc is not None:
            cluster.cdc.unsubscribe(vdef.subscription_name)
        if cluster.has_table(vdef.storage_table):
            cluster.drop_table(vdef.storage_table)
        self._views.pop(vdef.name, None)
        self._maintainers.pop(vdef.name, None)
        metrics = MetricsRegistry()
        metrics.incr("sql.view.dropped")
        return _summary(("dropped", "string"), rows=[(vdef.name,)],
                        metrics=metrics)

    def show(self):
        """SHOW MATERIALIZED VIEWS: one row per registered view."""
        from repro.hbase.cluster import get_cluster

        rows = []
        for name in sorted(self._views):
            vdef = self._views[name]
            cluster = get_cluster(vdef.quorum)
            lag = 0.0
            if cluster.cdc is not None and vdef.subscription_name in \
                    cluster.cdc.subscription_names():
                lag = cluster.cdc.lag_s(vdef.subscription_name)
            rows.append((name, vdef.kind, vdef.base_table,
                         vdef.storage_table, bool(vdef.invalidated), lag))
        return _summary(
            ("view", "string"), ("kind", "string"), ("base", "string"),
            ("table", "string"), ("invalidated", "boolean"),
            ("lag_s", "double"), rows=rows, metrics=None,
        )

    # -- registry ----------------------------------------------------------
    def definitions(self) -> List[ViewDefinition]:
        return [self._views[name] for name in sorted(self._views)]

    def maintainer(self, name: str) -> "ViewMaintainer":
        return self._maintainers[name.lower()]

    def hydrate(self, cluster) -> List[str]:
        """Adopt views persisted on ``cluster`` by an earlier session.

        Views whose CDC subscription is still live on the cluster keep
        their existing maintainer (re-subscribing would re-baseline the
        feed and drop pending changes); only orphaned views get a new one.
        """
        adopted: List[str] = []
        stream = None
        for table_name in sorted(cluster.active_master.tables):
            raw = cluster.get_table_attribute(table_name, VIEW_ATTRIBUTE)
            if raw is None:
                continue
            vdef = ViewDefinition.from_json(raw)
            if vdef.name in self._views:
                continue
            if stream is None:
                stream = cluster.enable_cdc()
            maintainer = ViewMaintainer(vdef, cluster)
            if vdef.subscription_name not in stream.subscription_names():
                tables = [vdef.base_table]
                if vdef.kind == "join":
                    tables.append(vdef.right_table)
                stream.subscribe(vdef.subscription_name, tables,
                                 maintainer.on_change)
            self._views[vdef.name] = vdef
            self._maintainers[vdef.name] = maintainer
            adopted.append(vdef.name)
        return adopted

    # -- internals ---------------------------------------------------------
    def _lookup(self, name: str) -> ViewDefinition:
        vdef = self._views.get(name.lower())
        if vdef is None:
            raise AnalysisError(
                f"no materialized view named {name!r}; "
                f"known: {sorted(self._views)}"
            )
        return vdef

    def _materialize(self, vdef: ViewDefinition):
        from repro.core.catalog import HBaseTableCatalog
        from repro.core.relation import DEFAULT_FORMAT, QUORUM_OPTION

        plan = definition_plan(vdef, self.session)
        options = {
            HBaseTableCatalog.tableCatalog: vdef.storage_catalog,
            HBaseTableCatalog.newTable: "1",
            QUORUM_OPTION: vdef.quorum,
        }
        return self.session.execute_write(plan, DEFAULT_FORMAT, options,
                                          mode="overwrite")

    @staticmethod
    def _persist(cluster, vdef: ViewDefinition) -> None:
        cluster.set_table_attribute(vdef.storage_table, VIEW_ATTRIBUTE,
                                    vdef.to_json())


def _summary(*cols: Tuple[str, str], rows, metrics):
    from repro.sql.types import StructType

    schema = StructType()
    for name, type_name in cols:
        schema = schema.add(name, type_from_name(type_name))
    return schema, rows, metrics


# -- incremental maintenance -----------------------------------------------------

class ViewMaintainer:
    """Applies one view's CDC feed to its storage table.

    Pure HBase-client consumer: maintenance reads and writes go through
    :class:`~repro.hbase.client.Table` with a cluster-owned
    :class:`~repro.common.metrics.CostLedger`, so every byte of maintenance
    I/O is billed (``sql.view.*`` counters name the work, the standard
    ``hbase.*`` counters the I/O).
    """

    def __init__(self, vdef: ViewDefinition, cluster) -> None:
        from repro.core.catalog import HBaseTableCatalog
        from repro.core.coders import get_coder

        self.vdef = vdef
        self.cluster = cluster
        self.ledger = CostLedger(cluster.metrics)
        self.base_catalog = HBaseTableCatalog.from_json(vdef.base_catalog)
        self.storage_catalog = HBaseTableCatalog.from_json(vdef.storage_catalog)
        self.right_catalog = (
            HBaseTableCatalog.from_json(vdef.right_catalog)
            if vdef.right_catalog else None
        )
        self.coder = get_coder(self.base_catalog.table_coder)
        self._connection = None

    # -- plumbing ----------------------------------------------------------
    def _table(self, qualified_name: str):
        from repro.hbase.client import ConnectionFactory

        if self._connection is None or self._connection.closed:
            self._connection = ConnectionFactory.create_connection(
                self.cluster.configuration("view-maintainer"))
        return self._connection.get_table(qualified_name)

    def _invalidate(self) -> None:
        if self.vdef.invalidated:
            return
        self.vdef.invalidated = True
        self.cluster.set_table_attribute(self.vdef.storage_table,
                                         VIEW_ATTRIBUTE, self.vdef.to_json())
        self.ledger.count("sql.view.invalidations")

    # -- the CDC callback --------------------------------------------------
    def on_change(self, table: str, cells) -> None:
        if self.vdef.invalidated:
            return  # feed keeps draining; REFRESH re-bases it
        self.ledger.count("sql.view.maintenance_batches")
        if self.vdef.kind == "aggregate":
            self._apply_aggregate(cells)
        elif table == self.vdef.base_table:
            self._apply_join_fact(cells)
        else:
            self._apply_join_dim(cells)

    # -- aggregate views ---------------------------------------------------
    def _apply_aggregate(self, cells) -> None:
        put_rows: Set[bytes] = set()
        delete_rows: Set[bytes] = set()
        for cell in cells:
            (delete_rows if cell.is_delete() else put_rows).add(cell.row)

        recount_groups: Dict[Tuple, None] = {}
        for row in sorted(delete_rows):
            group = self._group_from_rowkey(row)
            if group is None:
                self._invalidate()
                return
            recount_groups[group] = None
        put_rows -= delete_rows

        fresh_rows: List[Tuple[bytes, object]] = []
        if put_rows:
            from repro.hbase.client import Get

            base = self._table(self.vdef.base_table)
            ordered = sorted(put_rows)
            gets = [Get(row).set_max_versions(2) for row in ordered]
            results = base.bulk_get(gets, self.ledger)
            for row, result in zip(ordered, results):
                if _has_prior_version(result):
                    # an overwrite: the delta would double-count, so the
                    # affected group recounts instead
                    group = self._group_from_rowkey(row)
                    if group is None:
                        self._invalidate()
                        return
                    recount_groups[group] = None
                else:
                    fresh_rows.append((row, result))

        deltas: Dict[Tuple, "_GroupDelta"] = {}
        for row, result in fresh_rows:
            values = self._base_values(row, result)
            group = tuple(values.get(g) for g in self.vdef.group_by)
            if any(v is None for v in group):
                self._invalidate()
                return
            if group in recount_groups:
                continue
            delta = deltas.setdefault(group, _GroupDelta(self.vdef))
            delta.add(values)

        for group in sorted(deltas):
            self._apply_delta(group, deltas[group])
        if deltas:
            self.ledger.count("sql.view.delta_rows",
                              sum(d.rows for d in deltas.values()))
        for group in sorted(recount_groups):
            if not self.vdef.prefix_recountable:
                self._invalidate()
                return
            self._recount_group(group)
        if recount_groups:
            self.ledger.count("sql.view.recounts", len(recount_groups))

    def _group_from_rowkey(self, row: bytes) -> Optional[Tuple]:
        """Group-key values recoverable from the base row key, else None."""
        from repro.core.keys import decode_rowkey

        if not set(self.vdef.group_by) <= set(self.base_catalog.row_key):
            return None
        decoded = decode_rowkey(self.base_catalog, self.coder, row)
        return tuple(decoded[g] for g in self.vdef.group_by)

    def _base_values(self, row: bytes, result) -> Dict[str, object]:
        from repro.core.keys import decode_rowkey

        values = dict(decode_rowkey(self.base_catalog, self.coder, row))
        for column in self.base_catalog.data_columns():
            raw = result.get_value(column.family, column.qualifier)
            values[column.name] = (
                self.coder.decode(raw, column.dtype) if raw is not None
                else None
            )
        return values

    def _view_row_key(self, group: Tuple) -> bytes:
        from repro.core.keys import encode_rowkey

        values = dict(zip(self.storage_catalog.row_key, group))
        return encode_rowkey(self.storage_catalog, self.coder, values)

    def _read_view_row(self, key: bytes) -> Dict[str, object]:
        from repro.hbase.client import Get

        view = self._table(self.vdef.storage_table)
        result = view.get(Get(key), self.ledger)
        stored: Dict[str, object] = {}
        for column in self.storage_catalog.data_columns():
            raw = result.get_value(column.family, column.qualifier)
            stored[column.name] = (
                self.coder.decode(raw, column.dtype) if raw is not None
                else None
            )
        return stored

    def _write_view_row(self, key: bytes, group: Tuple,
                        stored: Dict[str, object]) -> None:
        from repro.hbase.client import Put

        put = Put(key)
        for column in self.storage_catalog.data_columns():
            value = stored.get(column.name)
            if value is None:
                continue
            put.add_column(column.family, column.qualifier,
                           self.coder.encode(value, column.dtype))
        self._table(self.vdef.storage_table).put(put, self.ledger)

    def _delete_view_row(self, key: bytes) -> None:
        from repro.hbase.client import Delete

        self._table(self.vdef.storage_table).delete(Delete(key), self.ledger)

    def _apply_delta(self, group: Tuple, delta: "_GroupDelta") -> None:
        key = self._view_row_key(group)
        stored = self._read_view_row(key)
        delta.merge_into(stored)
        self._write_view_row(key, group, stored)

    def _recount_group(self, group: Tuple) -> None:
        """Recompute one group from a base row-key prefix range scan."""
        from repro.core.keys import encode_key_dimension, prefix_successor
        from repro.hbase.client import Scan

        parts = []
        for dim, value in zip(self.base_catalog.row_key, group):
            parts.append(encode_key_dimension(
                self.base_catalog, self.coder, dim, value))
        prefix = b"".join(parts)
        stop = prefix_successor(prefix)
        base = self._table(self.vdef.base_table)
        results = base.scan(Scan(prefix, stop), self.ledger)
        key = self._view_row_key(group)
        if not results:
            self._delete_view_row(key)
            return
        delta = _GroupDelta(self.vdef)
        for result in results:
            delta.add(self._base_values(result.row, result))
        stored: Dict[str, object] = {}
        delta.merge_into(stored)
        self._write_view_row(key, group, stored)

    # -- join views --------------------------------------------------------
    def _apply_join_fact(self, cells) -> None:
        from repro.hbase.client import Get

        put_rows: Set[bytes] = set()
        delete_rows: Set[bytes] = set()
        for cell in cells:
            (delete_rows if cell.is_delete() else put_rows).add(cell.row)
        for row in sorted(delete_rows):
            self._delete_view_row(self._join_view_key(row))
        put_rows -= delete_rows
        if not put_rows:
            return
        base = self._table(self.vdef.base_table)
        ordered = sorted(put_rows)
        results = base.bulk_get([Get(row) for row in ordered], self.ledger)
        upserts = 0
        for row, result in zip(ordered, results):
            values = self._base_values(row, result)
            self._upsert_join_row(row, values)
            upserts += 1
        self.ledger.count("sql.view.delta_rows", upserts)

    def _join_view_key(self, fact_row: bytes) -> bytes:
        from repro.core.keys import decode_rowkey, encode_rowkey

        decoded = decode_rowkey(self.base_catalog, self.coder, fact_row)
        values = {
            f"_k{i}": decoded[dim]
            for i, dim in enumerate(self.base_catalog.row_key)
        }
        return encode_rowkey(self.storage_catalog, self.coder, values)

    def _right_row(self, key_value) -> Optional[Dict[str, object]]:
        from repro.core.keys import encode_rowkey
        from repro.hbase.client import Get

        if key_value is None:
            return None
        row = encode_rowkey(self.right_catalog, self.coder,
                            {self.vdef.right_key: key_value})
        dim = self._table(self.vdef.right_table)
        result = dim.get(Get(row), self.ledger)
        if result.is_empty():
            return None
        values: Dict[str, object] = {self.vdef.right_key: key_value}
        for column in self.right_catalog.data_columns():
            raw = result.get_value(column.family, column.qualifier)
            values[column.name] = (
                self.coder.decode(raw, column.dtype) if raw is not None
                else None
            )
        return values

    def _upsert_join_row(self, fact_row: bytes,
                         fact_values: Dict[str, object]) -> None:
        from repro.hbase.client import Put

        view_key = self._join_view_key(fact_row)
        right_values = self._right_row(fact_values.get(self.vdef.left_key))
        if right_values is None:
            self._delete_view_row(view_key)
            return
        put = Put(view_key)
        for c in self.vdef.columns:
            source = fact_values if c["side"] == "left" else right_values
            value = source.get(c["col"])
            if value is None:
                continue
            column = self.storage_catalog.column(c["out"])
            put.add_column(column.family, column.qualifier,
                           self.coder.encode(value, column.dtype))
        self._table(self.vdef.storage_table).put(put, self.ledger)

    def _apply_join_dim(self, cells) -> None:
        """A dimension-side change re-joins every matching fact row.

        Needs the join key to lead the fact row key (one prefix scan per
        changed dimension row); otherwise the view is invalidated.
        """
        from repro.core.keys import (
            decode_rowkey, encode_key_dimension, prefix_successor,
        )
        from repro.hbase.client import Scan

        if not self.vdef.prefix_recountable:
            self._invalidate()
            return
        changed: Set[bytes] = {cell.row for cell in cells}
        base = self._table(self.vdef.base_table)
        recounts = 0
        for row in sorted(changed):
            key_value = decode_rowkey(
                self.right_catalog, self.coder, row)[self.vdef.right_key]
            prefix = encode_key_dimension(
                self.base_catalog, self.coder,
                self.base_catalog.row_key[0], key_value)
            results = base.scan(Scan(prefix, prefix_successor(prefix)),
                                self.ledger)
            for result in results:
                self._upsert_join_row(result.row,
                                      self._base_values(result.row, result))
            recounts += 1
        self.ledger.count("sql.view.recounts", recounts)


def _has_prior_version(result) -> bool:
    """Did any column of this row exist before the newest write?"""
    seen: Dict[Tuple[str, str], int] = {}
    for cell in result.cells:
        if cell.is_delete():
            continue
        coord = (cell.family, cell.qualifier)
        seen[coord] = seen.get(coord, 0) + 1
        if seen[coord] > 1:
            return True
    return False


class _GroupDelta:
    """Additive per-group accumulators for a batch of fresh base rows."""

    def __init__(self, vdef: ViewDefinition) -> None:
        self.vdef = vdef
        self.rows = 0
        self.values: Dict[str, List[object]] = {
            a["out"]: [] for a in vdef.aggregates if a["arg"] is not None
        }

    def add(self, base_values: Dict[str, object]) -> None:
        self.rows += 1
        for a in self.vdef.aggregates:
            if a["arg"] is None:
                continue
            value = base_values.get(a["arg"])
            if value is not None:
                self.values[a["out"]].append(value)

    def merge_into(self, stored: Dict[str, object]) -> None:
        stored[ROWS_HELPER] = (stored.get(ROWS_HELPER) or 0) + self.rows
        for a in self.vdef.aggregates:
            out = a["out"]
            fn = a["fn"]
            nonnull = self.values.get(out, [])
            if fn == "count":
                amount = self.rows if a["arg"] is None else len(nonnull)
                stored[out] = (stored.get(out) or 0) + amount
            elif fn == "sum":
                if nonnull:
                    old = stored.get(out)
                    total = sum(nonnull)
                    stored[out] = total if old is None else old + total
            elif fn == "min":
                if nonnull:
                    old = stored.get(out)
                    best = min(nonnull)
                    stored[out] = best if old is None else min(old, best)
            elif fn == "max":
                if nonnull:
                    old = stored.get(out)
                    best = max(nonnull)
                    stored[out] = best if old is None else max(old, best)
            elif fn == "avg":
                sum_col, cnt_col = f"_sum_{out}", f"_cnt_{out}"
                if nonnull:
                    old_sum = stored.get(sum_col)
                    total = sum(nonnull)
                    stored[sum_col] = (
                        total if old_sum is None else old_sum + total)
                    stored[cnt_col] = (stored.get(cnt_col) or 0) + len(nonnull)
                count = stored.get(cnt_col) or 0
                stored[out] = (stored[sum_col] / count) if count else None


# -- automatic query rewriting ---------------------------------------------------

class ViewCandidate:
    """One view plus its freshness at rewrite time."""

    __slots__ = ("vdef", "fresh", "lag_s", "invalidated", "size_bytes")

    def __init__(self, vdef: ViewDefinition, fresh: bool, lag_s: float,
                 invalidated: bool, size_bytes: int) -> None:
        self.vdef = vdef
        self.fresh = fresh
        self.lag_s = lag_s
        self.invalidated = invalidated
        self.size_bytes = size_bytes


class ViewRewriteContext:
    """Per-query rewrite state threaded through :func:`optimize`."""

    def __init__(self, session, candidates: List[ViewCandidate],
                 estimator=None) -> None:
        self.session = session
        self.candidates = candidates
        self.estimator = estimator
        self.events: List[Dict[str, object]] = []
        #: planning-time registry the session merges into the query result
        self.metrics: Optional[MetricsRegistry] = None

    def record(self, action: str, candidate: ViewCandidate,
               view_bytes: float, base_bytes: float) -> None:
        self.events.append({
            "view": candidate.vdef.name, "action": action,
            "view_bytes": float(view_bytes), "base_bytes": float(base_bytes),
            "lag_s": candidate.lag_s,
        })
        if self.metrics is None:
            return
        if action == "rewrites":
            self.metrics.incr("sql.view.rewrites")
        elif action == "rejected_stale":
            self.metrics.incr("sql.view.rejected_stale")
        elif action == "rejected_cost":
            self.metrics.incr("sql.view.rejected_cost")


def build_rewrite_context(session) -> Optional[ViewRewriteContext]:
    """The query's rewrite context, or None when views cannot apply."""
    from repro.hbase.cluster import get_cluster

    manager = getattr(session, "_view_manager", None)
    if manager is None:
        return None
    definitions = manager.definitions()
    if not definitions:
        return None
    staleness = float(session.conf.get("sql.view.staleness", 0.0) or 0.0)
    candidates: List[ViewCandidate] = []
    for vdef in definitions:
        cluster = get_cluster(vdef.quorum)
        if not cluster.has_table(vdef.storage_table):
            continue
        # the persisted flag is authoritative: another session's maintainer
        # may have invalidated the view since we registered it
        raw = cluster.get_table_attribute(vdef.storage_table, VIEW_ATTRIBUTE)
        invalidated = vdef.invalidated
        if raw is not None:
            invalidated = bool(json.loads(raw).get("invalidated", False))
        lag = 0.0
        if cluster.cdc is not None and vdef.subscription_name in \
                cluster.cdc.subscription_names():
            lag = cluster.cdc.lag_s(vdef.subscription_name)
        fresh = (not invalidated) and lag <= staleness
        size = cluster.table_size_bytes(vdef.storage_table)
        candidates.append(ViewCandidate(vdef, fresh, lag, invalidated, size))
    if not candidates:
        return None
    estimator = None
    stats = session.cbo_stats()
    if stats is not None:
        from repro.sql.cbo import CardinalityEstimator

        estimator = CardinalityEstimator(stats, session.conf, None)
    return ViewRewriteContext(session, candidates, estimator)


def rewrite_with_views(plan: L.LogicalPlan,
                       ctx: ViewRewriteContext) -> L.LogicalPlan:
    """Replace matching subtrees with view scans (post-pushdown rule)."""

    def rule(node: L.LogicalPlan) -> Optional[L.LogicalPlan]:
        for candidate in ctx.candidates:
            if candidate.vdef.kind == "aggregate" \
                    and isinstance(node, L.Aggregate):
                replacement = _try_aggregate_rewrite(node, candidate, ctx)
            elif candidate.vdef.kind == "join" \
                    and isinstance(node, L.Project):
                replacement = _try_join_rewrite(node, candidate, ctx)
            else:
                replacement = None
            if replacement is not None:
                return replacement
        return None

    return plan.transform_up(rule)


def _base_subtree_bytes(node: L.LogicalPlan, ctx: ViewRewriteContext) -> float:
    """Bytes the base plan must scan to answer this subtree.

    Priced at the *leaves*: answering from base means scanning the base
    tables, however small the aggregated output ends up.  With ANALYZE
    statistics the estimator refines each leaf's size; without them it
    falls back to the relation's metadata size, so the decision is the
    same with ``sql.cbo.enabled`` on or off until stats exist.
    """
    total = 0.0
    for leaf in node.collect_nodes(lambda n: isinstance(n, L.LogicalRelation)):
        size = None
        if ctx.estimator is not None:
            try:
                estimate = ctx.estimator.estimate(leaf)
                if estimate.confident:
                    size = float(estimate.bytes)
            except Exception:
                size = None
        if size is None:
            size = float(leaf.relation.size_in_bytes())
        total += size
    return total


def _decide(node: L.LogicalPlan, candidate: ViewCandidate,
            ctx: ViewRewriteContext, build) -> Optional[L.LogicalPlan]:
    """Shared freshness + pricing gate once a structural match is found."""
    base_bytes = _base_subtree_bytes(node, ctx)
    if not candidate.fresh:
        ctx.record("rejected_stale", candidate, candidate.size_bytes,
                   base_bytes)
        return None
    if candidate.size_bytes >= base_bytes:
        ctx.record("rejected_cost", candidate, candidate.size_bytes,
                   base_bytes)
        return None
    replacement = build()
    ctx.record("rewrites", candidate, candidate.size_bytes, base_bytes)
    return replacement


def _try_aggregate_rewrite(agg: L.Aggregate, candidate: ViewCandidate,
                           ctx: ViewRewriteContext) -> Optional[L.LogicalPlan]:
    vdef = candidate.vdef
    child = agg.children[0]
    condition = None
    if isinstance(child, L.Filter):
        condition = child.condition
        child = child.children[0]
    leaf = _hbase_leaf(child)
    if leaf is None or leaf.relation.catalog.qualified_name != vdef.base_table:
        return None

    groupings = agg.groupings
    if not all(isinstance(g, E.Attribute) for g in groupings):
        return None
    if {g.name for g in groupings} != set(vdef.group_by):
        return None
    grouping_ids = {g.attr_id for g in groupings}
    if condition is not None \
            and not condition.references() <= grouping_ids:
        return None

    spec_aggs = {(a["fn"], a["arg"]): a["out"] for a in vdef.aggregates}
    group_names = {g.attr_id: g.name for g in groupings}

    # (output name, attr_id, view column) for every select item
    mapping: List[Tuple[str, int, str]] = []
    for item in agg.aggregate_list:
        if isinstance(item, E.Attribute):
            if item.attr_id not in group_names:
                return None
            mapping.append((item.name, item.attr_id, item.name))
            continue
        expr = item.child
        if isinstance(expr, E.Attribute):
            if expr.attr_id not in group_names:
                return None
            mapping.append((item.name, item.attr_id, expr.name))
            continue
        fn = _AGG_NAMES.get(type(expr))
        if fn is None or not isinstance(expr, E.AggregateExpression) \
                or expr.distinct:
            return None
        arg = None
        if expr.children:
            if not isinstance(expr.children[0], E.Attribute):
                return None
            arg = expr.children[0].name
        out = spec_aggs.get((fn, arg))
        if out is None:
            return None
        mapping.append((item.name, item.attr_id, out))

    def build() -> L.LogicalPlan:
        view_leaf = L.LogicalRelation(
            _view_relation(vdef, ctx.session), name=vdef.storage_table)
        view_attrs = {a.name: a for a in view_leaf.output}
        scan: L.LogicalPlan = view_leaf
        if condition is not None:
            substitution = {
                attr_id: view_attrs[name]
                for attr_id, name in group_names.items()
            }

            def remap(expr_node: E.Expression) -> Optional[E.Expression]:
                if isinstance(expr_node, E.Attribute):
                    return substitution.get(expr_node.attr_id)
                return None

            scan = L.Filter(condition.transform(remap), view_leaf)
        items = [
            E.Alias(view_attrs[view_col], out_name, attr_id=attr_id)
            for out_name, attr_id, view_col in mapping
        ]
        return L.Project(items, scan)

    return _decide(agg, candidate, ctx, build)


def _try_join_rewrite(project: L.Project, candidate: ViewCandidate,
                      ctx: ViewRewriteContext) -> Optional[L.LogicalPlan]:
    vdef = candidate.vdef
    join = project.children[0]
    if not isinstance(join, L.Join) or join.how != "inner":
        return None
    left = _hbase_leaf(join.children[0])
    right = _hbase_leaf(join.children[1])
    if left is None or right is None:
        return None
    if left.relation.catalog.qualified_name != vdef.base_table \
            or right.relation.catalog.qualified_name != vdef.right_table:
        return None
    cond = join.condition
    if not isinstance(cond, E.Comparison) or cond.op != "=":
        return None
    names = {}
    for side, leaf_node in (("left", left), ("right", right)):
        for a in leaf_node.output:
            names[a.attr_id] = (side, a.name)
    a, b = cond.children
    if not (isinstance(a, E.Attribute) and isinstance(b, E.Attribute)):
        return None
    key_pair = {names.get(a.attr_id), names.get(b.attr_id)}
    if key_pair != {("left", vdef.left_key), ("right", vdef.right_key)}:
        return None

    spec_cols = {(c["side"], c["col"]): c["out"] for c in vdef.columns}
    mapping: List[Tuple[str, int, str]] = []
    for item in project.project_list:
        attr = item.child if isinstance(item, E.Alias) else item
        if not isinstance(attr, E.Attribute) or attr.attr_id not in names:
            return None
        out = spec_cols.get(names[attr.attr_id])
        if out is None:
            return None
        mapping.append((item.name, _item_id(item), out))

    def build() -> L.LogicalPlan:
        view_leaf = L.LogicalRelation(
            _view_relation(vdef, ctx.session), name=vdef.storage_table)
        view_attrs = {a.name: a for a in view_leaf.output}
        items = [
            E.Alias(view_attrs[view_col], out_name, attr_id=attr_id)
            for out_name, attr_id, view_col in mapping
        ]
        return L.Project(items, view_leaf)

    return _decide(project, candidate, ctx, build)


def _item_id(item: E.Expression) -> int:
    return item.attr_id if isinstance(item, (E.Alias, E.Attribute)) else -1

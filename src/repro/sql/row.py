"""Rows as returned to users (internally the engine moves plain tuples)."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.sql.types import StructType


class Row:
    """An immutable named record: index or column-name access."""

    __slots__ = ("values", "_schema")

    def __init__(self, values: Sequence[object], schema: StructType) -> None:
        self.values: Tuple[object, ...] = tuple(values)
        self._schema = schema
        if len(self.values) != len(schema):
            raise AnalysisError(
                f"row has {len(self.values)} values but schema has {len(schema)} columns"
            )

    def __getitem__(self, key: "int | str") -> object:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self._schema.field_index(key)]

    def __getattr__(self, name: str) -> object:
        try:
            return self.values[self._schema.field_index(name)]
        except AnalysisError as exc:
            raise AttributeError(str(exc)) from exc

    def as_dict(self) -> dict:
        return dict(zip(self._schema.names, self.values))

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values
        if isinstance(other, tuple):
            return self.values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self.values))
        return f"Row({body})"

"""SQL text -> unresolved logical plan.

A hand-written tokenizer and recursive-descent parser covering the dialect
the paper's workloads need: SELECT [DISTINCT] with expressions and aliases,
FROM with table aliases / subqueries / INNER-LEFT-CROSS JOIN ... ON chains,
WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, UNION [ALL], INTERSECT, CASE WHEN,
BETWEEN, [NOT] IN, [NOT] LIKE, IS [NOT] NULL, CAST, arithmetic with the
usual precedence, and aggregate calls including COUNT(DISTINCT x).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.common.errors import ParseError
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.types import DoubleType, LongType, StringType, type_from_name

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|%|\(|\)|,|\.)
    """,
    re.VERBOSE | re.DOTALL,
)

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "join", "inner", "left", "right", "outer", "cross", "on", "as",
    "and", "or", "not", "in", "like", "between", "is", "null", "case", "when",
    "then", "else", "end", "cast", "union", "intersect", "all", "asc", "desc",
    "true", "false", "insert", "into", "overwrite", "values", "table", "explain", "exists",
    "show", "tables", "drop", "view", "analyze", "compute", "statistics",
    "create", "materialized", "refresh",
}


class Token:
    """One lexical token."""

    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
        self.text = text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(sql: str) -> List[Token]:
    """Lex SQL text (keywords case-insensitive, comments skipped)."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        text = match.group()
        kind = match.lastgroup
        if kind == "ident" and text.lower() in KEYWORDS:
            tokens.append(Token("keyword", text.lower()))
        elif kind == "op" and text == "<>":
            tokens.append(Token("op", "!="))
        else:
            tokens.append(Token(kind, text))
    tokens.append(Token("eof", ""))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(f"expected {word.upper()!r}, found {self._peek().text!r}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise ParseError(f"expected {op!r}, found {self._peek().text!r}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, found {token.text!r}")
        self._advance()
        return token.text

    def _expect_views_word(self) -> None:
        # "views" is not a reserved word; SHOW MATERIALIZED VIEWS spells it
        # as a plain identifier
        token = self._peek()
        if token.kind != "ident" or token.text.lower() != "views":
            raise ParseError(f"expected 'VIEWS', found {token.text!r}")
        self._advance()

    # -- entry point -------------------------------------------------------------
    def parse_query(self) -> L.LogicalPlan:
        if self._accept_keyword("show"):
            if self._accept_keyword("materialized"):
                self._expect_views_word()
                return L.ShowMaterializedViews()
            self._expect_keyword("tables")
            return L.ShowTables()
        if self._accept_keyword("create"):
            self._expect_keyword("materialized")
            self._expect_keyword("view")
            name = self._expect_ident()
            self._expect_keyword("as")
            return L.CreateMaterializedView(name, self._parse_query_expression())
        if self._accept_keyword("refresh"):
            self._expect_keyword("materialized")
            self._expect_keyword("view")
            return L.RefreshMaterializedView(self._expect_ident())
        if self._accept_keyword("drop"):
            if self._accept_keyword("materialized"):
                self._expect_keyword("view")
                return L.DropMaterializedView(self._expect_ident())
            self._expect_keyword("view")
            return L.DropView(self._expect_ident())
        if self._accept_keyword("analyze"):
            self._expect_keyword("table")
            name = self._expect_ident()
            self._expect_keyword("compute")
            self._expect_keyword("statistics")
            return L.AnalyzeTable(name)
        if self._accept_keyword("explain"):
            inner = self.parse_query()
            return L.ExplainStatement(inner)
        if self._peek().kind == "keyword" and self._peek().text == "insert":
            plan = self._parse_insert()
        else:
            plan = self._parse_query_expression()
        if self._peek().kind != "eof":
            raise ParseError(f"trailing input at {self._peek().text!r}")
        return plan

    def _parse_insert(self) -> L.LogicalPlan:
        self._expect_keyword("insert")
        overwrite = False
        if self._accept_keyword("overwrite"):
            overwrite = True
        else:
            self._expect_keyword("into")
        self._accept_keyword("table")
        name = self._expect_ident()
        if self._accept_keyword("values"):
            rows = [self._parse_values_tuple()]
            while self._accept_op(","):
                rows.append(self._parse_values_tuple())
            widths = {len(r) for r in rows}
            if len(widths) != 1:
                raise ParseError("VALUES rows have inconsistent arity")
            child: L.LogicalPlan = L.UnresolvedInlineValues(rows)
        else:
            child = self._parse_query_expression()
        return L.InsertIntoTable(name, child, overwrite)

    def _parse_values_tuple(self):
        self._expect_op("(")
        values = [self._parse_expression()]
        while self._accept_op(","):
            values.append(self._parse_expression())
        self._expect_op(")")
        return values

    def parse_expression_only(self) -> E.Expression:
        """Parse a bare boolean/scalar expression (DataFrame.filter strings)."""
        expr = self._parse_expression()
        if self._peek().kind != "eof":
            raise ParseError(f"trailing input at {self._peek().text!r}")
        return expr

    def parse_named_expression(self) -> E.Expression:
        """Like :meth:`parse_expression_only` but allows ``... [AS] alias``."""
        expr = self._parse_expression()
        if self._accept_keyword("as"):
            expr = E.Alias(expr, self._expect_ident())
        elif self._peek().kind == "ident":
            expr = E.Alias(expr, self._expect_ident())
        if self._peek().kind != "eof":
            raise ParseError(f"trailing input at {self._peek().text!r}")
        return expr

    # -- query structure -----------------------------------------------------------
    def _parse_query_expression(self) -> L.LogicalPlan:
        plan = self._parse_query_term()
        while True:
            if self._accept_keyword("union"):
                all_rows = self._accept_keyword("all")
                right = self._parse_query_term()
                plan = L.SetOperation("union", plan, right, all_rows)
            elif self._accept_keyword("intersect"):
                right = self._parse_query_term()
                plan = L.SetOperation("intersect", plan, right)
            else:
                return plan

    def _parse_query_term(self) -> L.LogicalPlan:
        if self._peek().kind == "op" and self._peek().text == "(":
            self._advance()
            plan = self._parse_query_expression()
            self._expect_op(")")
            return plan
        return self._parse_select()

    def _parse_select(self) -> L.LogicalPlan:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_items = [self._parse_select_item()]
        while self._accept_op(","):
            select_items.append(self._parse_select_item())

        self._expect_keyword("from")
        plan = self._parse_from()

        if self._accept_keyword("where"):
            plan = L.Filter(self._parse_expression(), plan)

        groupings: List[E.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            groupings.append(self._parse_expression())
            while self._accept_op(","):
                groupings.append(self._parse_expression())

        having: Optional[E.Expression] = None
        if self._accept_keyword("having"):
            having = self._parse_expression()

        has_aggregates = any(_contains_agg_call(item) for item in select_items)
        if groupings or has_aggregates or having is not None:
            plan = L.Aggregate(groupings, select_items, plan)
            if having is not None:
                plan = L.Filter(having, plan)
        else:
            plan = L.Project(select_items, plan)

        if distinct:
            plan = L.Distinct(plan)

        if self._accept_keyword("order"):
            self._expect_keyword("by")
            orders = [self._parse_sort_order()]
            while self._accept_op(","):
                orders.append(self._parse_sort_order())
            plan = L.Sort(orders, plan)

        if self._accept_keyword("limit"):
            token = self._advance()
            if token.kind != "number" or "." in token.text:
                raise ParseError(f"LIMIT expects an integer, found {token.text!r}")
            plan = L.Limit(int(token.text), plan)
        return plan

    def _parse_select_item(self) -> E.Expression:
        if self._accept_op("*"):
            return E.Star()
        # "ident.*"
        if (
            self._peek().kind == "ident"
            and self._peek(1).kind == "op" and self._peek(1).text == "."
            and self._peek(2).kind == "op" and self._peek(2).text == "*"
        ):
            qualifier = self._expect_ident()
            self._advance()
            self._advance()
            return E.Star(qualifier)
        expr = self._parse_expression()
        if self._accept_keyword("as"):
            return E.Alias(expr, self._expect_ident())
        if self._peek().kind == "ident":
            return E.Alias(expr, self._expect_ident())
        return expr

    def _parse_sort_order(self) -> L.SortOrder:
        # ORDER BY <ordinal> refers to the select-list position (1-based)
        token = self._peek()
        if token.kind == "number" and "." not in token.text:
            self._advance()
            expr: E.Expression = E.SortOrdinal(int(token.text))
        else:
            expr = self._parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return L.SortOrder(expr, ascending)

    def _parse_from(self) -> L.LogicalPlan:
        plan = self._parse_table_ref()
        while True:
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                right = self._parse_table_ref()
                plan = L.Join(plan, right, "cross", None)
                continue
            how = "inner"
            matched = False
            if self._accept_keyword("inner"):
                matched = True
            elif self._accept_keyword("left"):
                self._accept_keyword("outer")
                how = "left"
                matched = True
            if self._accept_keyword("join"):
                right = self._parse_table_ref()
                self._expect_keyword("on")
                condition = self._parse_expression()
                plan = L.Join(plan, right, how, condition)
                continue
            if matched:
                raise ParseError("expected JOIN")
            # implicit cross join: FROM a, b
            if self._peek().kind == "op" and self._peek().text == ",":
                self._advance()
                right = self._parse_table_ref()
                plan = L.Join(plan, right, "cross", None)
                continue
            return plan

    def _parse_table_ref(self) -> L.LogicalPlan:
        if self._peek().kind == "op" and self._peek().text == "(":
            self._advance()
            subquery = self._parse_query_expression()
            self._expect_op(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return L.SubqueryAlias(alias, subquery)
        name = self._expect_ident()
        plan: L.LogicalPlan = L.UnresolvedRelation(name)
        if self._accept_keyword("as"):
            return L.SubqueryAlias(self._expect_ident(), plan)
        if self._peek().kind == "ident":
            return L.SubqueryAlias(self._expect_ident(), plan)
        return L.SubqueryAlias(name, plan)

    # -- expressions -----------------------------------------------------------
    def _parse_expression(self) -> E.Expression:
        return self._parse_or()

    def _parse_or(self) -> E.Expression:
        expr = self._parse_and()
        while self._accept_keyword("or"):
            expr = E.Or(expr, self._parse_and())
        return expr

    def _parse_and(self) -> E.Expression:
        expr = self._parse_not()
        while self._accept_keyword("and"):
            expr = E.And(expr, self._parse_not())
        return expr

    def _parse_not(self) -> E.Expression:
        if self._accept_keyword("not"):
            return E.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> E.Expression:
        expr = self._parse_additive()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
                self._advance()
                expr = E.Comparison(token.text, expr, self._parse_additive())
                continue
            if self._accept_keyword("between"):
                low = self._parse_additive()
                self._expect_keyword("and")
                high = self._parse_additive()
                expr = E.And(
                    E.Comparison(">=", expr, low), E.Comparison("<=", expr, high)
                )
                continue
            negate = False
            checkpoint = self._pos
            if self._accept_keyword("not"):
                negate = True
            if self._accept_keyword("in"):
                self._expect_op("(")
                if self._peek().kind == "keyword" and self._peek().text == "select":
                    subquery = self._parse_query_expression()
                    self._expect_op(")")
                    expr = E.InSubquery(expr, subquery)
                else:
                    options = [self._parse_expression()]
                    while self._accept_op(","):
                        options.append(self._parse_expression())
                    self._expect_op(")")
                    expr = E.In(expr, options)
                if negate:
                    expr = E.Not(expr)
                continue
            if self._accept_keyword("like"):
                token = self._advance()
                if token.kind != "string":
                    raise ParseError("LIKE expects a string pattern")
                expr = E.Like(expr, _unquote(token.text))
                if negate:
                    expr = E.Not(expr)
                continue
            if negate:
                self._pos = checkpoint
                return expr
            if self._accept_keyword("is"):
                if self._accept_keyword("not"):
                    self._expect_keyword("null")
                    expr = E.IsNotNull(expr)
                else:
                    self._expect_keyword("null")
                    expr = E.IsNull(expr)
                continue
            return expr

    def _parse_additive(self) -> E.Expression:
        expr = self._parse_multiplicative()
        while True:
            if self._accept_op("+"):
                expr = E.BinaryArithmetic("+", expr, self._parse_multiplicative())
            elif self._accept_op("-"):
                expr = E.BinaryArithmetic("-", expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> E.Expression:
        expr = self._parse_unary()
        while True:
            if self._accept_op("*"):
                expr = E.BinaryArithmetic("*", expr, self._parse_unary())
            elif self._accept_op("/"):
                expr = E.BinaryArithmetic("/", expr, self._parse_unary())
            elif self._accept_op("%"):
                expr = E.BinaryArithmetic("%", expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> E.Expression:
        if self._accept_op("-"):
            child = self._parse_unary()
            if isinstance(child, E.Literal) and isinstance(child.value, (int, float)):
                return E.Literal(-child.value, child.dtype)
            return E.BinaryArithmetic("-", E.Literal(0, LongType), child)
        return self._parse_primary()

    def _parse_primary(self) -> E.Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return E.Literal(float(token.text), DoubleType)
            return E.Literal(int(token.text), LongType)
        if token.kind == "string":
            self._advance()
            return E.Literal(_unquote(token.text), StringType)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            from repro.sql.types import BooleanType

            return E.Literal(token.text == "true", BooleanType)
        if token.kind == "keyword" and token.text == "null":
            self._advance()
            return E.Literal(None, StringType)
        if token.kind == "keyword" and token.text == "case":
            return self._parse_case()
        if token.kind == "keyword" and token.text == "exists":
            self._advance()
            self._expect_op("(")
            subquery = self._parse_query_expression()
            self._expect_op(")")
            return E.Exists(subquery)
        if token.kind == "keyword" and token.text == "cast":
            self._advance()
            self._expect_op("(")
            inner = self._parse_expression()
            self._expect_keyword("as")
            type_name = self._expect_ident()
            self._expect_op(")")
            return E.Cast(inner, type_from_name(type_name))
        if token.kind == "op" and token.text == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            return self._parse_ident_expression()
        raise ParseError(f"unexpected token {token.text!r}")

    def _parse_ident_expression(self) -> E.Expression:
        name = self._expect_ident()
        # function call?
        if self._peek().kind == "op" and self._peek().text == "(":
            self._advance()
            lower = name.lower()
            if lower in E.AGGREGATE_BUILDERS:
                return self._parse_aggregate_call(lower)
            args: List[E.Expression] = []
            if not self._accept_op(")"):
                args.append(self._parse_expression())
                while self._accept_op(","):
                    args.append(self._parse_expression())
                self._expect_op(")")
            return E.ScalarFunction(name, args)
        # qualified column?
        if self._peek().kind == "op" and self._peek().text == ".":
            self._advance()
            column = self._expect_ident()
            return E.UnresolvedAttribute(column, qualifier=name)
        return E.UnresolvedAttribute(name)

    def _parse_aggregate_call(self, fn_name: str) -> E.Expression:
        builder = E.AGGREGATE_BUILDERS[fn_name]
        distinct = self._accept_keyword("distinct")
        if self._accept_op("*"):
            self._expect_op(")")
            if fn_name != "count":
                raise ParseError(f"{fn_name}(*) is not valid")
            return E.Count(None, distinct=False)
        arg = self._parse_expression()
        self._expect_op(")")
        return builder(arg, distinct)

    def _parse_case(self) -> E.Expression:
        self._expect_keyword("case")
        # simple CASE: "CASE operand WHEN v THEN ..." compares operand = v
        operand: Optional[E.Expression] = None
        if not (self._peek().kind == "keyword" and self._peek().text == "when"):
            operand = self._parse_expression()
        branches: List[Tuple[E.Expression, E.Expression]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            if operand is not None:
                condition = E.Comparison("=", operand, condition)
            self._expect_keyword("then")
            value = self._parse_expression()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        else_value = None
        if self._accept_keyword("else"):
            else_value = self._parse_expression()
        self._expect_keyword("end")
        return E.CaseWhen(branches, else_value)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _contains_agg_call(expr: E.Expression) -> bool:
    return bool(expr.collect(lambda e: isinstance(e, E.AggregateExpression)))


def parse(sql: str) -> L.LogicalPlan:
    """Parse a SQL statement into an unresolved logical plan."""
    return Parser(sql).parse_query()


def parse_expression(text: str) -> E.Expression:
    """Parse a standalone expression (used by ``DataFrame.filter("...")``)."""
    return Parser(text).parse_expression_only()


def parse_named_expression(text: str) -> E.Expression:
    """Parse an expression with an optional alias (``"k + 1 as k2"``)."""
    return Parser(text).parse_named_expression()

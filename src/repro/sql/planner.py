"""The physical planner: optimized logical plans -> physical operators.

Two strategies matter for the paper:

- **DataSourceStrategy** -- ``Project``/``Filter`` stacks sitting directly on a
  ``LogicalRelation`` collapse into one :class:`DataSourceScanExec`: required
  columns are pruned to what the query needs, translatable predicates are
  *offered* to the relation, and only the filters the relation reports as
  unhandled (plus untranslatable ones) remain as an engine-side residual.
  This is the exact handshake of section VI.A.3 (``unhandledFilters``).

- **Join selection** -- a side whose *estimated* size fits under the broadcast
  threshold is broadcast; otherwise both sides are shuffled.  Estimates flow
  from ``BaseRelation.size_in_bytes()``: SHC computes real region sizes, the
  generic connector returns unknown (treated as huge), which is what forces
  vanilla Spark SQL into shuffling entire fact tables (Figure 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql import physical as P
from repro.sql.sources import translate_expression

#: size assigned to relations that cannot estimate themselves
UNKNOWN_SIZE = 1 << 60


def estimate_plan_size(plan: L.LogicalPlan) -> int:
    """Coarse cardinality/size propagation (Catalyst statistics-lite)."""
    if isinstance(plan, L.LogicalRelation):
        size = plan.relation.size_in_bytes()
        return size if size is not None else UNKNOWN_SIZE
    if isinstance(plan, L.LocalRelation):
        from repro.engine.shuffle import estimate_size

        return sum(estimate_size(r) for r in plan.rows) + 1
    if isinstance(plan, L.Filter):
        return max(1, estimate_plan_size(plan.children[0]) // 4)
    if isinstance(plan, L.Project):
        child = plan.children[0]
        child_size = estimate_plan_size(child)
        if child_size >= UNKNOWN_SIZE:
            return UNKNOWN_SIZE
        width_ratio = max(1, len(plan.output)) / max(1, len(child.output))
        return max(1, int(child_size * min(1.0, width_ratio)))
    if isinstance(plan, L.Aggregate):
        child_size = estimate_plan_size(plan.children[0])
        if child_size >= UNKNOWN_SIZE:
            return UNKNOWN_SIZE
        return max(1, child_size // 5)
    if isinstance(plan, L.Join):
        sizes = [estimate_plan_size(c) for c in plan.children]
        if any(s >= UNKNOWN_SIZE for s in sizes):
            return UNKNOWN_SIZE
        return sum(sizes)
    if isinstance(plan, L.Limit):
        return min(estimate_plan_size(plan.children[0]), plan.n * 64 + 1)
    if plan.children:
        sizes = [estimate_plan_size(c) for c in plan.children]
        if any(s >= UNKNOWN_SIZE for s in sizes):
            return UNKNOWN_SIZE
        return sum(sizes)
    return UNKNOWN_SIZE


class Planner:
    """Compiles one optimized logical plan.

    When a partition-cache manager is attached (``session.cache_manager``),
    every subtree is fingerprinted against the persisted plans: a complete
    entry compiles to a :class:`~repro.sql.physical.CachedRelationExec`
    leaf, a registered-but-incomplete one wraps its normal compilation in a
    :class:`~repro.sql.physical.CacheMaterializeExec` that fills the cache
    as it runs.  With no manager (or nothing persisted) planning is exactly
    the uncached pipeline.
    """

    def __init__(self, conf: Dict[str, object], cache=None, stats=None,
                 metrics=None) -> None:
        self.conf = conf
        self.cache = cache
        self.broadcast_threshold = int(
            conf.get("sql.autoBroadcastJoinThreshold", 128 * 1024)
        )
        #: cost-based planning (docs/optimizer.md): with sql.cbo.enabled and
        #: a stats store, join sizing uses ANALYZE-based estimates and the
        #: semi-join reduction strategy becomes available
        self.metrics = metrics
        self.estimator = None
        self.semijoin_enabled = False
        if stats is not None and bool(conf.get("sql.cbo.enabled", False)):
            from repro.sql.cbo import CardinalityEstimator

            self.estimator = CardinalityEstimator(stats, conf, metrics)
            self.semijoin_enabled = bool(conf.get("sql.cbo.semijoin", True))
            self.semijoin_max_build = int(
                conf.get("sql.cbo.semijoin.maxBuildRows", 10000))
            self.semijoin_min_reduction = float(
                conf.get("sql.cbo.semijoin.minReduction", 2.0))
            self.semijoin_max_keys = int(
                conf.get("sql.cbo.semijoin.maxKeys", 16384))
        #: adaptive query execution (docs/adaptive.md): shuffled joins plan
        #: as AdaptiveJoinExec stage barriers instead of committing to a
        #: strategy from size estimates
        self.adaptive = bool(conf.get("sql.aqe.enabled", False))
        self.local_scan_partitions = int(conf.get("sql.local.scan.partitions", 2))
        #: vectorized batch execution (docs/vectorized.md): plan_query rewrites
        #: the finished tree into batch-at-a-time operators where kernels exist
        self.vectorized = bool(conf.get("sql.vectorized.enabled", False))
        #: replica-aware scan routing (docs/replication.md): the session-level
        #: hbase.read.replica flag, stamped onto scans so EXPLAIN ANALYZE can
        #: surface routing intent (the relation re-reads the flag at scan
        #: build time, where per-read options can still override it)
        self.replica_reads = str(
            conf.get("hbase.read.replica", "")).lower() in ("true", "1",
                                                            "yes", "on")

    def plan_query(self, node: L.LogicalPlan) -> P.PhysicalPlan:
        """Compile a whole query: :meth:`plan` plus the vectorization pass.

        ``plan`` recurses per subtree, so the batch-mode rewrite (which must
        see the finished tree to place columnar/row transitions) hangs off
        this entry point instead; execution paths call ``plan_query``, tests
        poking at individual strategies keep calling ``plan``.
        """
        physical = self.plan(node)
        if self.vectorized:
            from repro.sql.vectorized import vectorize_plan

            physical = vectorize_plan(physical, self.conf)
        return physical

    def plan(self, node: L.LogicalPlan) -> P.PhysicalPlan:
        if self.cache is not None and self.cache.has_registrations():
            from repro.sql.fingerprint import plan_fingerprint

            fingerprint = plan_fingerprint(node)
            if self.cache.is_registered(fingerprint):
                description = node.describe()
                snapshot = self.cache.snapshot(fingerprint)
                if snapshot is not None:
                    return P.CachedRelationExec(
                        list(node.output), fingerprint, snapshot, description
                    )
                return P.CacheMaterializeExec(
                    fingerprint, self.cache, self._plan_dispatch(node),
                    description,
                )
        return self._plan_dispatch(node)

    def _plan_dispatch(self, node: L.LogicalPlan) -> P.PhysicalPlan:
        if isinstance(node, L.SubqueryAlias):
            return self.plan(node.children[0])

        if isinstance(node, L.Project):
            child = node.children[0]
            if isinstance(child, L.Filter):
                relation = _as_relation(child.children[0])
                if relation is not None:
                    return self._plan_scan(node.project_list, child.condition, relation)
            relation = _as_relation(child)
            if relation is not None and child is not node:
                return self._plan_scan(node.project_list, None, relation)
            return P.ProjectExec(node.project_list, self.plan(child))

        if isinstance(node, L.Filter):
            relation = _as_relation(node.children[0])
            if relation is not None:
                # keep the pruned column set: project down to the child's output
                return self._plan_scan(
                    list(node.children[0].output), node.condition, relation
                )
            return P.FilterExec(node.condition, self.plan(node.children[0]))

        if isinstance(node, L.LogicalRelation):
            return self._plan_scan(None, None, node)

        if isinstance(node, L.LocalRelation):
            return P.LocalScanExec(node.output, node.rows,
                                   num_partitions=self.local_scan_partitions)

        if isinstance(node, L.Join):
            return self._plan_join(node)

        if isinstance(node, L.Aggregate):
            pushed = self._try_aggregate_pushdown(node)
            if pushed is not None:
                return pushed
            return P.HashAggregateExec(
                node.groupings, node.aggregate_list, self.plan(node.children[0])
            )

        if isinstance(node, L.Sort):
            return P.SortExec(node.orders, self.plan(node.children[0]))

        if isinstance(node, L.Limit):
            return P.LimitExec(node.n, self.plan(node.children[0]))

        if isinstance(node, L.Distinct):
            return P.DistinctExec(self.plan(node.children[0]))

        if isinstance(node, L.SetOperation):
            left = self.plan(node.children[0])
            right = self.plan(node.children[1])
            if node.op == "union":
                union: P.PhysicalPlan = P.UnionExec(left, right)
                return union if node.all_rows else P.DistinctExec(union)
            return P.IntersectExec(left, right)

        raise AnalysisError(f"no physical strategy for {node.describe()}")

    # -- data source strategy ----------------------------------------------------
    def _plan_scan(
        self,
        project_list: Optional[Sequence[E.Expression]],
        condition: Optional[E.Expression],
        rel_node: L.LogicalRelation,
    ) -> P.PhysicalPlan:
        conjuncts = E.split_conjuncts(condition) if condition is not None else []
        offered = []
        pairs: List[Tuple[E.Expression, Optional[object]]] = []
        for conjunct in conjuncts:
            source_filter = translate_expression(conjunct)
            pairs.append((conjunct, source_filter))
            if source_filter is not None:
                offered.append(source_filter)

        unhandled = set(rel_node.relation.unhandled_filters(offered))
        residual_exprs = [
            conjunct for conjunct, source_filter in pairs
            if source_filter is None or source_filter in unhandled
        ]
        residual = E.combine_conjuncts(residual_exprs)

        needed_ids = set()
        if project_list is not None:
            for item in project_list:
                needed_ids |= item.references()
        else:
            needed_ids |= {a.attr_id for a in rel_node.output}
        if residual is not None:
            needed_ids |= residual.references()

        scan_attrs = [a for a in rel_node.output if a.attr_id in needed_ids]
        if not scan_attrs:
            scan_attrs = rel_node.output[:1]
        scan = P.DataSourceScanExec(
            rel_node.relation, scan_attrs, offered, residual, rel_node.name,
            handled_filters=[f for f in offered if f not in unhandled],
        )
        if self.replica_reads:
            scan.replica_reads = True
        if project_list is None:
            return scan
        if _is_identity_projection(project_list, scan.output):
            return scan
        return P.ProjectExec(project_list, scan)

    # -- aggregate pushdown (coprocessor-style connectors) --------------------------
    def _try_aggregate_pushdown(self, node: L.Aggregate) -> Optional[P.PhysicalPlan]:
        """Offer a grouped aggregation to the relation, if it wants it.

        Only relations exposing ``plan_aggregate`` (e.g. the Huawei-style
        coprocessor connector) participate; the aggregate's child must be an
        attribute-only Project/Filter stack over the relation.
        """
        conditions: List[E.Expression] = []
        current: L.LogicalPlan = node.children[0]
        while True:
            if isinstance(current, L.Project) and all(
                isinstance(item, E.Attribute) for item in current.project_list
            ):
                current = current.children[0]
                continue
            if isinstance(current, L.Filter):
                conditions.append(current.condition)
                current = current.children[0]
                continue
            break
        if not isinstance(current, L.LogicalRelation):
            return None
        plan_aggregate = getattr(current.relation, "plan_aggregate", None)
        if plan_aggregate is None:
            return None

        condition = E.combine_conjuncts(
            [c for cond in conditions for c in E.split_conjuncts(cond)]
        )
        conjuncts = E.split_conjuncts(condition) if condition is not None else []
        offered = []
        residual_exprs = []
        for conjunct in conjuncts:
            source_filter = translate_expression(conjunct)
            if source_filter is not None:
                offered.append(source_filter)
            else:
                residual_exprs.append(conjunct)
        unhandled = set(current.relation.unhandled_filters(offered))
        residual_exprs.extend(
            conjunct for conjunct in conjuncts
            if (sf := translate_expression(conjunct)) is not None
            and sf in unhandled
        )
        residual = E.combine_conjuncts(residual_exprs)

        needed_ids = set()
        for g in node.groupings:
            needed_ids |= g.references()
        for item in node.aggregate_list:
            needed_ids |= item.references()
        if residual is not None:
            needed_ids |= residual.references()
        input_attrs = [a for a in current.output if a.attr_id in needed_ids]
        if not needed_ids <= {a.attr_id for a in input_attrs}:
            return None
        return plan_aggregate(
            node.groupings, node.aggregate_list, offered, residual, input_attrs
        )

    # -- join strategy ---------------------------------------------------------------
    def _plan_join(self, node: L.Join) -> P.PhysicalPlan:
        left_plan = self.plan(node.children[0])
        right_plan = self.plan(node.children[1])
        left_ids = {a.attr_id for a in node.left.output}
        right_ids = {a.attr_id for a in node.right.output}
        left_keys, right_keys, residual = _extract_equi_keys(
            node.condition, left_ids, right_ids
        )
        left_size = estimate_plan_size(node.left)
        right_size = estimate_plan_size(node.right)

        # cost-based sizing: confident ANALYZE-backed estimates override the
        # syntactic heuristic for the broadcast decision below
        use_left, use_right = left_size, right_size
        est_left = est_right = est_join = None
        if self.estimator is not None:
            est_left = self.estimator.estimate(node.left)
            est_right = self.estimator.estimate(node.right)
            est_join = self.estimator.estimate(node)
            if est_left.confident:
                use_left = est_left.bytes
            if est_right.confident:
                use_right = est_right.bytes

        if left_keys:
            bc_right = use_right <= self.broadcast_threshold
            bc_left = use_left <= self.broadcast_threshold and node.how == "inner"
            if self.adaptive and self.estimator is not None:
                # stats acting as AQE priors: the estimate settled a strategy
                # the heuristic would have deferred to a stage barrier (or
                # chosen differently)
                h_right = right_size <= self.broadcast_threshold
                h_left = left_size <= self.broadcast_threshold and node.how == "inner"
                if bc_right != h_right or (not bc_right and bc_left != h_left):
                    self._incr("sql.cbo.aqe_priors_used")
            if bc_right:
                return self._stamp(P.BroadcastHashJoinExec(
                    left_plan, right_plan, left_keys, right_keys, node.how, residual
                ), est_join)
            if bc_left:
                swapped = self._stamp(P.BroadcastHashJoinExec(
                    right_plan, left_plan, right_keys, left_keys, "inner", None
                ), est_join)
                reordered = P.ProjectExec(
                    list(node.left.output) + list(node.right.output), swapped
                )
                if residual is not None:
                    return P.FilterExec(residual, reordered)
                return reordered
            semijoin = self._try_semijoin_reduction(
                node, left_plan, right_plan, left_keys, right_keys, residual,
                est_left, est_right, est_join,
            )
            if semijoin is not None:
                return semijoin
            if self.adaptive:
                from repro.sql.adaptive import AdaptiveJoinExec

                return self._stamp(AdaptiveJoinExec(
                    left_plan, right_plan, left_keys, right_keys, node.how,
                    residual,
                ), est_join)
            return self._stamp(P.ShuffledHashJoinExec(
                left_plan, right_plan, left_keys, right_keys, node.how, residual
            ), est_join)

        # no equi keys: nested loop with the right side broadcast
        return P.BroadcastNestedLoopJoinExec(
            left_plan, right_plan, node.how, node.condition
        )

    def _try_semijoin_reduction(self, node, left_plan, right_plan, left_keys,
                                right_keys, residual, est_left, est_right,
                                est_join) -> Optional[P.PhysicalPlan]:
        """Semi-join reduction (docs/optimizer.md): pre-filter the probe side
        by the build side's distinct keys before shuffling, when statistics
        predict the probe shrinks by ``sql.cbo.semijoin.minReduction``."""
        if not self.semijoin_enabled or node.how not in ("inner", "semi"):
            return None
        if est_left is None or not (est_left.confident and est_right.confident):
            return None
        if est_right.rows > self.semijoin_max_build:
            return None
        from repro.sql.cbo import semijoin_keep_fraction

        keep = semijoin_keep_fraction(est_left, est_right, left_keys, right_keys)
        if keep is None or keep > 1.0 / max(self.semijoin_min_reduction, 1.0):
            self._incr("sql.cbo.semijoins_rejected")
            return None
        self._incr("sql.cbo.semijoins_applied")
        return self._stamp(P.SemiJoinReducedJoinExec(
            left_plan, right_plan, left_keys, right_keys, node.how, residual,
            max_keys=self.semijoin_max_keys,
        ), est_join)

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, 1)

    @staticmethod
    def _stamp(op: P.PhysicalPlan, est) -> P.PhysicalPlan:
        """Attach the join-level row estimate for EXPLAIN's est-vs-actual."""
        if est is not None and est.confident:
            op.cbo_rows = est.rows
        return op


def _as_relation(node: L.LogicalPlan) -> Optional[L.LogicalRelation]:
    """See through attribute-only projections (column pruning inserts them)."""
    if isinstance(node, L.LogicalRelation):
        return node
    if isinstance(node, L.Project) and all(
        isinstance(item, E.Attribute) for item in node.project_list
    ):
        child = node.children[0]
        if isinstance(child, L.LogicalRelation):
            return child
    return None


def _extract_equi_keys(
    condition: Optional[E.Expression],
    left_ids: set,
    right_ids: set,
) -> Tuple[List[E.Expression], List[E.Expression], Optional[E.Expression]]:
    if condition is None:
        return [], [], None
    left_keys: List[E.Expression] = []
    right_keys: List[E.Expression] = []
    rest: List[E.Expression] = []
    for conjunct in E.split_conjuncts(condition):
        if isinstance(conjunct, E.Comparison) and conjunct.op == "=":
            a, b = conjunct.children
            a_refs, b_refs = a.references(), b.references()
            if a_refs and b_refs:
                if a_refs <= left_ids and b_refs <= right_ids:
                    left_keys.append(a)
                    right_keys.append(b)
                    continue
                if a_refs <= right_ids and b_refs <= left_ids:
                    left_keys.append(b)
                    right_keys.append(a)
                    continue
        rest.append(conjunct)
    return left_keys, right_keys, E.combine_conjuncts(rest)


def _is_identity_projection(
    project_list: Sequence[E.Expression], scan_output: Sequence[E.Attribute]
) -> bool:
    if len(project_list) != len(scan_output):
        return False
    for item, attr in zip(project_list, scan_output):
        if not isinstance(item, E.Attribute) or item.attr_id != attr.attr_id:
            return False
    return True

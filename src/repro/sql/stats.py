"""Catalog statistics: what ``ANALYZE TABLE`` collects and where it lives.

``ANALYZE TABLE t COMPUTE STATISTICS`` scans the table once (paying the
simulated scan cost like any query) and distils the result into a
:class:`TableStats`: row count, total bytes, and one :class:`ColumnStats`
per column -- NDV, null count, min/max, and an equi-height histogram.
Stats are keyed by the *durable identity* of the scanned leaf (the same
``relation:<quorum>:<table>:<opts>`` string the plan-fingerprint cache
uses), so every later query over the same table finds them no matter which
fresh attribute ids the analyzer minted.  Column stats are keyed by column
*name* for the same reason.

For HBase-backed tables the JSON form is also persisted alongside the
table's schema metadata (a master-level table attribute stored in the
ZooKeeper model), so a new session against the same cluster starts warm.
See docs/optimizer.md.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sql import expressions as E
from repro.sql import logical as L

#: table-attribute key under which TableStats JSON is persisted
STATS_ATTRIBUTE = "shc.table.stats"

#: JSON-representable scalar types allowed into min/max/histogram bounds
_ORDERED_SCALARS = (int, float, str)


@dataclass
class Histogram:
    """Equi-height histogram: ``bounds`` has ``len(heights) + 1`` entries."""

    bounds: List[object]
    heights: List[int]

    def fraction_leq(self, value: object, inclusive: bool = True) -> float:
        """Estimated fraction of (non-null) values ``<= value`` (or ``<``)."""
        if not self.heights:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            # the max itself: everything but (exclusive) an epsilon of ties
            return 1.0 if inclusive or value > self.bounds[-1] else 0.99
        total = sum(self.heights)
        covered = 0.0
        for i, height in enumerate(self.heights):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if value >= hi:
                covered += height
                continue
            # value falls inside bucket i: interpolate numerics, else half
            if isinstance(value, (int, float)) and isinstance(lo, (int, float)) \
                    and hi != lo:
                frac = (value - lo) / (hi - lo)
            else:
                frac = 0.5
            covered += height * min(1.0, max(0.0, frac))
            break
        return covered / total

    def to_json(self) -> dict:
        return {"bounds": list(self.bounds), "heights": list(self.heights)}

    @staticmethod
    def from_json(data: dict) -> "Histogram":
        return Histogram(list(data["bounds"]), [int(h) for h in data["heights"]])


@dataclass
class ColumnStats:
    """Per-column statistics collected by ANALYZE."""

    ndv: int
    null_count: int
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    histogram: Optional[Histogram] = None

    def null_fraction(self, row_count: int) -> float:
        return self.null_count / row_count if row_count else 0.0

    def to_json(self) -> dict:
        data: dict = {"ndv": self.ndv, "null_count": self.null_count}
        if isinstance(self.min_value, _ORDERED_SCALARS):
            data["min"] = self.min_value
            data["max"] = self.max_value
        if self.histogram is not None:
            data["histogram"] = self.histogram.to_json()
        return data

    @staticmethod
    def from_json(data: dict) -> "ColumnStats":
        histogram = data.get("histogram")
        return ColumnStats(
            int(data["ndv"]), int(data["null_count"]),
            data.get("min"), data.get("max"),
            Histogram.from_json(histogram) if histogram else None,
        )


@dataclass
class TableStats:
    """Whole-table statistics; ``columns`` is keyed by column *name*."""

    row_count: int
    total_bytes: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    #: the relation's own ``size_in_bytes()`` at ANALYZE time (on-disk
    #: bytes, a different unit from the in-memory ``total_bytes``); the
    #: staleness check compares like against like through this field
    source_bytes: Optional[int] = None

    @property
    def avg_row_bytes(self) -> float:
        return self.total_bytes / self.row_count if self.row_count else 1.0

    def to_json(self) -> dict:
        data = {
            "row_count": self.row_count,
            "total_bytes": self.total_bytes,
            "columns": {n: c.to_json() for n, c in self.columns.items()},
        }
        if self.source_bytes is not None:
            data["source_bytes"] = self.source_bytes
        return data

    @staticmethod
    def from_json(data: dict) -> "TableStats":
        source = data.get("source_bytes")
        return TableStats(
            int(data["row_count"]), int(data["total_bytes"]),
            {n: ColumnStats.from_json(c)
             for n, c in data.get("columns", {}).items()},
            source_bytes=int(source) if source is not None else None,
        )


def build_histogram(values: Sequence[object], buckets: int = 8) -> Optional[Histogram]:
    """Equi-height histogram over non-null ``values`` (None when unorderable)."""
    if not values or buckets < 1:
        return None
    try:
        ordered = sorted(values)
    except TypeError:
        return None
    if not isinstance(ordered[0], _ORDERED_SCALARS):
        return None
    n = len(ordered)
    buckets = min(buckets, n)
    bounds = [ordered[0]]
    heights = []
    prev = 0
    for i in range(1, buckets + 1):
        cut = (i * n) // buckets
        bounds.append(ordered[cut - 1])
        heights.append(cut - prev)
        prev = cut
    return Histogram(bounds, heights)


def compute_table_stats(rows: Sequence[tuple], schema,
                        histogram_buckets: int = 8) -> TableStats:
    """Distil collected rows into :class:`TableStats` (deterministic)."""
    from repro.engine.shuffle import estimate_size

    total_bytes = sum(estimate_size(tuple(r)) for r in rows)
    columns: Dict[str, ColumnStats] = {}
    for i, field_ in enumerate(schema):
        values = [r[i] for r in rows]
        non_null = [v for v in values if v is not None]
        try:
            ndv = len(set(non_null))
        except TypeError:  # unhashable values: every row its own group
            ndv = len(non_null)
        histogram = build_histogram(non_null, histogram_buckets)
        min_value = histogram.bounds[0] if histogram else None
        max_value = histogram.bounds[-1] if histogram else None
        columns[field_.name] = ColumnStats(
            ndv, len(values) - len(non_null), min_value, max_value, histogram
        )
    return TableStats(len(rows), total_bytes, columns)


def stats_key(plan: L.LogicalPlan) -> Optional[str]:
    """Durable stats-store key for a plan whose leaf identity is stable.

    Sees through scoping/identity nodes the optimizer would strip anyway;
    returns None for plans with no durable leaf identity (composite trees
    fall back to plan fingerprints -- see :func:`analysis_keys`).
    """
    node = plan
    while True:
        if isinstance(node, L.SubqueryAlias):
            node = node.children[0]
            continue
        if isinstance(node, L.Project) and all(
            isinstance(item, E.Attribute) for item in node.project_list
        ) and len(node.project_list) == len(node.children[0].output):
            node = node.children[0]
            continue
        break
    if isinstance(node, L.LogicalRelation):
        from repro.sql.fingerprint import _relation_identity

        return _relation_identity(node)
    if isinstance(node, L.LocalRelation):
        digest = hashlib.sha256(repr(node.rows).encode("utf-8")).hexdigest()[:16]
        cols = ",".join(f"{a.name}:{a.dtype}" for a in node.output)
        return f"local:{cols}:{digest}"
    return None


def analysis_keys(plan: L.LogicalPlan) -> List[str]:
    """Every key an ANALYZE of ``plan`` should be stored under."""
    key = stats_key(plan)
    if key is not None:
        return [key]
    from repro.sql.fingerprint import plan_fingerprint
    from repro.sql.optimizer import optimize

    keys = [plan_fingerprint(plan)]
    optimized = plan_fingerprint(optimize(plan))
    if optimized not in keys:
        keys.append(optimized)
    return keys


class StatsStore:
    """In-session stats catalog: durable leaf keys -> :class:`TableStats`."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableStats] = {}
        #: True once any fingerprint-keyed (derived-view) entry exists, so
        #: the estimator only pays per-node fingerprinting when it can help
        self.has_plan_keys = False

    def put(self, key: str, stats: TableStats) -> None:
        self._tables[key] = stats
        if not (key.startswith("relation:") or key.startswith("local:")):
            self.has_plan_keys = True

    def get(self, key: str) -> Optional[TableStats]:
        return self._tables.get(key)

    def drop(self, key: str) -> None:
        self._tables.pop(key, None)

    def clear(self) -> None:
        self._tables.clear()
        self.has_plan_keys = False

    def __len__(self) -> int:
        return len(self._tables)

    def keys(self) -> List[str]:
        return list(self._tables)


def persist_relation_stats(node: L.LogicalRelation, stats: TableStats) -> bool:
    """Write ``stats`` alongside the table's metadata, when the source can.

    Only relations exposing a cluster + qualified catalog name (the HBase
    connector) participate; everything else keeps session-local stats.
    """
    relation = node.relation
    cluster = getattr(relation, "cluster", None)
    catalog = getattr(relation, "catalog", None)
    qualified = getattr(catalog, "qualified_name", None)
    if cluster is None or qualified is None:
        return False
    setter = getattr(cluster, "set_table_attribute", None)
    if setter is None:
        return False
    setter(qualified, STATS_ATTRIBUTE, json.dumps(stats.to_json()))
    return True


def hydrate_relation_stats(store: StatsStore, key: str,
                           node: L.LogicalRelation) -> Optional[TableStats]:
    """Load persisted stats for a relation leaf into ``store`` on first miss."""
    relation = node.relation
    cluster = getattr(relation, "cluster", None)
    catalog = getattr(relation, "catalog", None)
    qualified = getattr(catalog, "qualified_name", None)
    if cluster is None or qualified is None:
        return None
    getter = getattr(cluster, "get_table_attribute", None)
    if getter is None:
        return None
    try:
        raw = getter(qualified, STATS_ATTRIBUTE)
    except Exception:
        return None
    if not raw:
        return None
    stats = TableStats.from_json(json.loads(raw))
    store.put(key, stats)
    return stats

"""The DataFrame API -- the programming surface of the paper's Code 2-5.

DataFrames are *eagerly analyzed* (like Spark): every transformation runs the
analyzer so errors surface immediately and ``df.schema`` is always available.
Execution (``collect`` / ``run``) optimizes, plans and runs the query on the
session's compute cluster, returning rows plus a full :class:`QueryResult`
with simulated seconds and metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union, TYPE_CHECKING

from repro.common.errors import AnalysisError
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.functions import Column, col
from repro.sql.parser import parse_expression
from repro.sql.row import Row
from repro.sql.types import StructType

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.session import QueryResult, SparkSession, WriteResult

ColumnLike = Union[str, Column]


class DataFrame:
    """An analyzed logical plan bound to a session."""

    def __init__(self, session: "SparkSession", plan: L.LogicalPlan,
                 pending_metrics=None) -> None:
        self.session = session
        self.plan = session.analyze(plan)
        # counters charged while *building* this frame (ANALYZE TABLE's
        # collection scan) that must surface on the result it returns
        self._pending_metrics = pending_metrics

    # -- schema ----------------------------------------------------------------
    @property
    def schema(self) -> StructType:
        return self.plan.schema()

    @property
    def columns(self) -> List[str]:
        return self.plan.schema().names

    # -- transformations -----------------------------------------------------------
    def select(self, *columns: ColumnLike) -> "DataFrame":
        if not columns:
            raise AnalysisError("select() needs at least one column")
        items = [self._to_named_expr(c) for c in columns]
        return DataFrame(self.session, L.Project(items, self.plan))

    def filter(self, condition: ColumnLike) -> "DataFrame":
        expr = (
            parse_expression(condition) if isinstance(condition, str)
            else condition.expr
        )
        return DataFrame(self.session, L.Filter(expr, self.plan))

    where = filter

    def select_expr(self, *expressions: str) -> "DataFrame":
        """``df.select_expr("k + 1 as k2", "upper(g)")`` -- parsed select."""
        from repro.sql.functions import expr

        return self.select(*(expr(text) for text in expressions))

    selectExpr = select_expr

    def drop(self, *names: str) -> "DataFrame":
        """Remove columns by name (missing names are ignored, like Spark)."""
        doomed = set(names)
        kept = [a for a in self.plan.output if a.name not in doomed]
        if not kept:
            raise AnalysisError("drop() would remove every column")
        return DataFrame(self.session, L.Project(kept, self.plan))

    def with_column_renamed(self, existing: str, new: str) -> "DataFrame":
        """Rename one column (no-op if it does not exist, like Spark)."""
        items: List[E.Expression] = []
        for attr in self.plan.output:
            if attr.name == existing:
                items.append(E.Alias(attr, new))
            else:
                items.append(attr)
        return DataFrame(self.session, L.Project(items, self.plan))

    withColumnRenamed = with_column_renamed

    def with_column(self, name: str, column: Column) -> "DataFrame":
        items: List[E.Expression] = list(self.plan.output)
        items.append(E.Alias(column.expr, name))
        return DataFrame(self.session, L.Project(items, self.plan))

    def join(self, other: "DataFrame", on: Union[ColumnLike, Sequence[str]],
             how: str = "inner") -> "DataFrame":
        if isinstance(on, Column):
            condition = on.expr
            return DataFrame(
                self.session, L.Join(self.plan, other.plan, how, condition)
            )
        names = [on] if isinstance(on, str) else list(on)
        condition = None
        right_join_ids = set()
        for name in names:
            left_attr = self._resolve_output(self.plan, name)
            right_attr = self._resolve_output(other.plan, name)
            right_join_ids.add(right_attr.attr_id)
            term = E.Comparison("=", left_attr, right_attr)
            condition = term if condition is None else E.And(condition, term)
        joined = L.Join(self.plan, other.plan, how, condition)
        # Spark semantics for name joins: the join columns appear once
        kept = list(self.plan.output) + [
            a for a in other.plan.output if a.attr_id not in right_join_ids
        ]
        return DataFrame(self.session, L.Project(kept, joined))

    def group_by(self, *columns: ColumnLike) -> "GroupedData":
        groupings = [self._to_expr(c) for c in columns]
        return GroupedData(self, groupings)

    groupBy = group_by

    def agg(self, *aggregations: Column) -> "DataFrame":
        return GroupedData(self, []).agg(*aggregations)

    def order_by(self, *columns: ColumnLike) -> "DataFrame":
        orders = []
        for column in columns:
            expr = self._to_expr(column)
            descending = isinstance(column, Column) and getattr(
                column, "_descending", False
            )
            orders.append(L.SortOrder(expr, not descending))
        return DataFrame(self.session, L.Sort(orders, self.plan))

    orderBy = order_by

    def limit(self, n: int) -> "DataFrame":
        return DataFrame(self.session, L.Limit(n, self.plan))

    def distinct(self) -> "DataFrame":
        return DataFrame(self.session, L.Distinct(self.plan))

    def union(self, other: "DataFrame") -> "DataFrame":
        return DataFrame(
            self.session, L.SetOperation("union", self.plan, other.plan, all_rows=True)
        )

    def intersect(self, other: "DataFrame") -> "DataFrame":
        return DataFrame(
            self.session, L.SetOperation("intersect", self.plan, other.plan)
        )

    # -- caching -----------------------------------------------------------------
    def _cache_fingerprints(self) -> List[str]:
        """Fingerprints of this plan's analyzed and optimized forms.

        Both are registered so the planner matches whether the cached plan
        appears verbatim or in the shape the optimizer rewrites it to when
        the DataFrame itself is executed.
        """
        from repro.sql.fingerprint import plan_fingerprint
        from repro.sql.optimizer import optimize

        fingerprints = [plan_fingerprint(self.plan)]
        optimized_fp = plan_fingerprint(optimize(self.plan))
        if optimized_fp not in fingerprints:
            fingerprints.append(optimized_fp)
        return fingerprints

    def persist(self) -> "DataFrame":
        """Mark this plan for executor-memory caching (Spark ``MEMORY_ONLY``).

        Lazy, like Spark: nothing materialises until an action runs.  The
        first execution fills the cache partition by partition; later
        executions of a structurally identical plan serve from memory and
        skip the scan entirely.  No-op when ``sql.cache.enabled`` is off.
        """
        manager = self.session.cache_manager
        if manager is not None:
            description = self.plan.describe()
            for fingerprint in self._cache_fingerprints():
                manager.register(fingerprint, description)
        return self

    cache = persist

    def unpersist(self) -> "DataFrame":
        """Drop this plan's cache registration and any materialised rows."""
        manager = self.session.cache_manager
        if manager is not None:
            for fingerprint in self._cache_fingerprints():
                manager.unregister(fingerprint)
        return self

    @property
    def is_cached(self) -> bool:
        """Whether this plan is currently registered in the partition cache."""
        manager = self.session.cache_manager
        if manager is None:
            return False
        return any(manager.is_registered(fp)
                   for fp in self._cache_fingerprints())

    # -- actions -----------------------------------------------------------------
    def run(self) -> "QueryResult":
        """Execute and return rows *plus* simulated time and metrics."""
        result = self.session.execute_plan(self.plan)
        if self._pending_metrics is not None:
            result.metrics.merge(self._pending_metrics)
        return result

    def collect(self) -> List[Row]:
        return self.run().rows

    def count(self) -> int:
        counted = DataFrame(
            self.session,
            L.Aggregate([], [E.Alias(E.Count(None), "count")], self.plan),
        )
        return counted.collect()[0][0]

    def show(self, n: int = 20) -> None:
        rows = self.limit(n).collect()
        names = self.columns
        widths = [
            max(len(name), *(len(str(r[i])) for r in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        line = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        print(line)
        print("|" + "|".join(f" {name:<{w}} " for name, w in zip(names, widths)) + "|")
        print(line)
        for row in rows:
            print("|" + "|".join(
                f" {str(v):<{w}} " for v, w in zip(row.values, widths)
            ) + "|")
        print(line)

    def explain(self, analyze: bool = False) -> str:
        """The optimized logical and physical plans, as text.

        With ``analyze=True`` the query is *executed* (once, with tracing
        on) and the physical plan comes back annotated per-operator with
        regions pruned vs. scanned, filters pushed vs. residual and
        locality hits, followed by a stage table and a query summary --
        see docs/observability.md.  The executed ``QueryResult`` is kept
        on ``self.last_analyzed`` for callers that want the trace object.
        """
        from repro.common.metrics import MetricsRegistry
        from repro.sql.optimizer import optimize
        from repro.sql.planner import Planner

        stats = self.session.cbo_stats()
        views_ctx = self.session.view_rewrite_context()
        plan_metrics = MetricsRegistry() \
            if stats is not None or views_ctx is not None else None
        if views_ctx is not None:
            views_ctx.metrics = plan_metrics
        optimized = optimize(self.plan, conf=self.session.conf,
                             stats=stats, metrics=plan_metrics,
                             views=views_ctx)
        physical = Planner(self.session.conf,
                           cache=self.session.cache_manager,
                           stats=stats,
                           metrics=plan_metrics).plan_query(optimized)
        if not analyze:
            from repro.sql.explain import views_section_lines

            extra = ""
            if views_ctx is not None:
                lines = views_section_lines(views_ctx.events)
                if lines:
                    extra = "\n" + "\n".join(lines)
            return (
                "== Optimized Logical Plan ==\n" + optimized.pretty()
                + "\n== Physical Plan ==\n" + physical.pretty()
                + extra
            )
        from repro.common.tracing import Span
        from repro.sql.explain import explain_analyze_report

        trace = Span("query", "query")
        result = self.session.execute_physical(physical, trace=trace,
                                               extra_metrics=plan_metrics)
        if views_ctx is not None:
            result.view_events = views_ctx.events
        self.last_analyzed = result
        return (
            "== Optimized Logical Plan ==\n" + optimized.pretty()
            + "\n" + explain_analyze_report(physical, result)
        )

    def create_or_replace_temp_view(self, name: str) -> None:
        self.session.catalog.register(name, self.plan)

    createOrReplaceTempView = create_or_replace_temp_view

    @property
    def write(self) -> "DataFrameWriter":
        return DataFrameWriter(self)

    # -- helpers -----------------------------------------------------------------
    def _to_expr(self, column: ColumnLike) -> E.Expression:
        if isinstance(column, str):
            return col(column).expr
        return column.expr

    def _to_named_expr(self, column: ColumnLike) -> E.Expression:
        expr = self._to_expr(column)
        return expr

    @staticmethod
    def _resolve_output(plan: L.LogicalPlan, name: str) -> E.Attribute:
        matches = [a for a in plan.output if a.name == name]
        if len(matches) != 1:
            raise AnalysisError(
                f"join column {name!r} matched {len(matches)} columns"
            )
        return matches[0]


class GroupedData:
    """Result of ``df.group_by(...)``; call ``agg`` / ``count`` to finish."""

    def __init__(self, df: DataFrame, groupings: List[E.Expression]) -> None:
        self._df = df
        self._groupings = groupings

    def agg(self, *aggregations: Column) -> DataFrame:
        if not aggregations:
            raise AnalysisError("agg() needs at least one aggregate column")
        items: List[E.Expression] = list(self._groupings)
        items.extend(a.expr for a in aggregations)
        plan = L.Aggregate(self._groupings, items, self._df.plan)
        return DataFrame(self._df.session, plan)

    def count(self) -> DataFrame:
        from repro.sql.functions import count as count_fn

        return self.agg(count_fn().alias("count"))


class DataFrameWriter:
    """``df.write.format(...).options(...).save()`` -- the insert path."""

    def __init__(self, df: DataFrame) -> None:
        self._df = df
        self._format: Optional[str] = None
        self._options: Dict[str, str] = {}
        self._mode = "append"

    def format(self, format_name: str) -> "DataFrameWriter":
        self._format = format_name
        return self

    def options(self, options: Dict[str, str]) -> "DataFrameWriter":
        self._options.update(options)
        return self

    def option(self, key: str, value: str) -> "DataFrameWriter":
        self._options[key] = value
        return self

    def mode(self, mode: str) -> "DataFrameWriter":
        if mode not in ("append", "overwrite", "errorifexists", "ignore"):
            raise AnalysisError(f"unsupported save mode {mode!r}")
        self._mode = mode
        return self

    def save(self) -> "WriteResult":
        if self._format is None:
            raise AnalysisError("write.format(...) must be set before save()")
        return self._df.session.execute_write(
            self._df.plan, self._format, dict(self._options), mode=self._mode,
        )

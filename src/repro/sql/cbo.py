"""Cost-based optimization: cardinality estimation and join reordering.

Built on the ANALYZE statistics in :mod:`repro.sql.stats` (docs/optimizer.md):

- :class:`CardinalityEstimator` propagates row counts, per-column NDVs and
  null fractions bottom-up through a logical plan, using the textbook
  System-R formulas (``1/ndv`` equality selectivity, histogram fractions
  for ranges, ``|L||R| / max(ndv_l, ndv_r)`` for equi-joins).
- :func:`reorder_joins` flattens maximal inner-join clusters and re-orders
  them by estimated cost -- exact left-deep dynamic programming up to
  ``sql.cbo.joinReorder.dpThreshold`` inputs, greedy smallest-intermediate
  above it.  Clusters whose inputs lack (or have stale) statistics keep
  their syntactic order, so un-ANALYZE'd queries behave exactly as before.
- :func:`semijoin_keep_fraction` is the planner's profitability test for
  semi-join reduction (:class:`~repro.sql.physical.SemiJoinReducedJoinExec`).

Everything here is gated by ``sql.cbo.enabled``: the optimizer and planner
only construct an estimator when the flag is on, so the default path never
touches this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.stats import (
    Histogram, StatsStore, compute_table_stats, hydrate_relation_stats,
    stats_key,
)

#: selectivity guessed for predicates the estimator cannot model
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: rows assumed for leaves with no statistics (estimates stay unconfident)
UNKNOWN_ROWS = float(1 << 30)

_FLIP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class ColumnEstimate:
    """What the estimator tracks per attribute as it walks the plan."""

    ndv: float
    null_frac: float = 0.0
    histogram: Optional[Histogram] = None
    min_value: Optional[object] = None
    max_value: Optional[object] = None

    def scaled(self, selectivity: float, rows: float) -> "ColumnEstimate":
        return ColumnEstimate(
            max(1.0, min(self.ndv * max(selectivity, 0.0), max(rows, 1.0))),
            self.null_frac, self.histogram, self.min_value, self.max_value,
        )


@dataclass
class Estimate:
    """Cardinality estimate for one plan node."""

    rows: float
    avg_row_bytes: float
    cols: Dict[int, ColumnEstimate] = field(default_factory=dict)
    #: True only when every contributing leaf had fresh ANALYZE statistics
    confident: bool = False

    @property
    def bytes(self) -> float:
        return self.rows * self.avg_row_bytes


class CardinalityEstimator:
    """Bottom-up estimates from the session's :class:`StatsStore`."""

    def __init__(self, store: StatsStore, conf: Dict[str, object],
                 metrics=None) -> None:
        self.store = store
        self.conf = conf
        self.metrics = metrics
        self.staleness_ratio = float(conf.get("sql.cbo.staleness.ratio", 2.0))

    def _incr(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    def estimate(self, plan: L.LogicalPlan) -> Estimate:
        est = self._est(plan)
        self._incr("sql.cbo.estimates")
        return est

    # -- node dispatch -------------------------------------------------------
    def _est(self, node: L.LogicalPlan) -> Estimate:
        if isinstance(node, L.LogicalRelation):
            return self._est_relation(node)
        if isinstance(node, L.LocalRelation):
            return self._est_local(node)
        if isinstance(node, L.SubqueryAlias):
            return self._est(node.children[0])
        if isinstance(node, L.Filter):
            return self._est_filter(node)
        if isinstance(node, L.Project):
            return self._est_project(node)
        if isinstance(node, L.Join):
            return self._est_join(node)
        if isinstance(node, L.Aggregate):
            return self._est_aggregate(node)
        if isinstance(node, L.Distinct):
            child = self._est(node.children[0])
            return Estimate(max(1.0, child.rows * 0.5), child.avg_row_bytes,
                            dict(child.cols), child.confident)
        if isinstance(node, L.Limit):
            child = self._est(node.children[0])
            return Estimate(min(child.rows, float(node.n)), child.avg_row_bytes,
                            dict(child.cols), child.confident)
        if isinstance(node, L.Sort):
            return self._est(node.children[0])
        if isinstance(node, L.SetOperation):
            left = self._est(node.children[0])
            right = self._est(node.children[1])
            rows = left.rows + right.rows if node.op == "union" \
                else min(left.rows, right.rows)
            return Estimate(rows, left.avg_row_bytes, dict(left.cols),
                            left.confident and right.confident)
        if len(node.children) == 1:
            return self._est(node.children[0])
        return Estimate(UNKNOWN_ROWS, 64.0, {}, False)

    # -- leaves --------------------------------------------------------------
    def _table_estimate(self, node: L.LogicalPlan, ts) -> Estimate:
        rows = float(max(ts.row_count, 0))
        cols: Dict[int, ColumnEstimate] = {}
        for attr in node.output:
            cs = ts.columns.get(attr.name)
            if cs is not None:
                cols[attr.attr_id] = ColumnEstimate(
                    float(max(1, cs.ndv)), cs.null_fraction(ts.row_count),
                    cs.histogram, cs.min_value, cs.max_value,
                )
        return Estimate(rows, ts.avg_row_bytes, cols, confident=True)

    def _est_relation(self, node: L.LogicalRelation) -> Estimate:
        key = stats_key(node)
        ts = self.store.get(key) if key is not None else None
        if ts is None and key is not None:
            ts = hydrate_relation_stats(self.store, key, node)
        if ts is not None and self._stale(node, ts):
            ts = None
        if ts is not None:
            return self._table_estimate(node, ts)
        size = node.relation.size_in_bytes()
        rows = max(1.0, size / 64.0) if size is not None else UNKNOWN_ROWS
        return Estimate(rows, 64.0, {}, confident=False)

    def _stale(self, node: L.LogicalRelation, ts) -> bool:
        """Stats whose recorded source size drifted too far are treated as
        absent (the query then keeps its syntactic plan)."""
        if ts.source_bytes is None or ts.source_bytes <= 0:
            return False
        current = node.relation.size_in_bytes()
        if current is None:
            return False
        ratio = max(1.0, self.staleness_ratio)
        if current > ts.source_bytes * ratio or current * ratio < ts.source_bytes:
            self._incr("sql.cbo.stats_stale")
            return True
        return False

    def _est_local(self, node: L.LocalRelation) -> Estimate:
        # driver-local rows are already in memory: exact stats are free and
        # deterministic, so LocalRelation never needs an ANALYZE
        key = stats_key(node)
        ts = self.store.get(key) if key is not None else None
        if ts is None:
            ts = compute_table_stats(node.rows, node.local_schema)
            if key is not None:
                self.store.put(key, ts)
        return self._table_estimate(node, ts)

    # -- unary operators -----------------------------------------------------
    def _est_filter(self, node: L.Filter) -> Estimate:
        child = self._est(node.children[0])
        cols = dict(child.cols)
        selectivity = 1.0
        for conjunct in E.split_conjuncts(node.condition):
            selectivity *= self._selectivity(conjunct, cols)
        rows = child.rows * selectivity
        scaled = {aid: ce.scaled(selectivity, rows) for aid, ce in cols.items()}
        return Estimate(rows, child.avg_row_bytes, scaled, child.confident)

    def _est_project(self, node: L.Project) -> Estimate:
        child = self._est(node.children[0])
        cols: Dict[int, ColumnEstimate] = {}
        for item in node.project_list:
            if isinstance(item, E.Attribute):
                ce = child.cols.get(item.attr_id)
                if ce is not None:
                    cols[item.attr_id] = ce
            elif isinstance(item, E.Alias) and isinstance(item.child, E.Attribute):
                ce = child.cols.get(item.child.attr_id)
                if ce is not None:
                    cols[item.attr_id] = ce
        width_ratio = max(1, len(node.output)) / max(1, len(node.children[0].output))
        avg = max(1.0, child.avg_row_bytes * min(1.0, width_ratio))
        return Estimate(child.rows, avg, cols, child.confident)

    def _est_aggregate(self, node: L.Aggregate) -> Estimate:
        child = self._est(node.children[0])
        if not node.groupings:
            return Estimate(1.0, 16.0 * max(1, len(node.output)), {}, child.confident)
        groups = 1.0
        cols: Dict[int, ColumnEstimate] = {}
        for g in node.groupings:
            if isinstance(g, E.Attribute) and g.attr_id in child.cols:
                ce = child.cols[g.attr_id]
                groups *= ce.ndv
                cols[g.attr_id] = ce
            else:
                groups *= max(1.0, child.rows ** 0.5)
        rows = max(1.0, min(child.rows, groups))
        return Estimate(rows, 16.0 * max(1, len(node.output)), cols,
                        child.confident)

    # -- joins ---------------------------------------------------------------
    def _est_join(self, node: L.Join) -> Estimate:
        from repro.sql.planner import _extract_equi_keys

        left = self._est(node.left)
        right = self._est(node.right)
        confident = left.confident and right.confident
        if node.how == "cross" or node.condition is None:
            return Estimate(left.rows * right.rows,
                            left.avg_row_bytes + right.avg_row_bytes,
                            {**left.cols, **right.cols}, confident)
        left_ids = {a.attr_id for a in node.left.output}
        right_ids = {a.attr_id for a in node.right.output}
        left_keys, right_keys, residual = _extract_equi_keys(
            node.condition, left_ids, right_ids
        )
        selectivity, keep = 1.0, 1.0
        cols = {**left.cols, **right.cols}
        for a, b in zip(left_keys, right_keys):
            ndv_l = self._key_ndv(a, left.cols)
            ndv_r = self._key_ndv(b, right.cols)
            if ndv_l is not None and ndv_r is not None:
                selectivity *= 1.0 / max(ndv_l, ndv_r, 1.0)
                keep *= min(1.0, ndv_r / max(ndv_l, 1.0))
                overlap = min(ndv_l, ndv_r)
                for key in (a, b):
                    if isinstance(key, E.Attribute) and key.attr_id in cols:
                        ce = cols[key.attr_id]
                        cols[key.attr_id] = ColumnEstimate(
                            max(1.0, overlap), 0.0, ce.histogram,
                            ce.min_value, ce.max_value,
                        )
            else:
                selectivity *= 1.0 / max(1.0, min(left.rows, right.rows) ** 0.5)
                keep *= 0.7
        if residual is not None:
            selectivity *= DEFAULT_SELECTIVITY ** len(E.split_conjuncts(residual))
            keep *= DEFAULT_SELECTIVITY
        inner_rows = left.rows * right.rows * selectivity
        if node.how == "inner":
            rows, avg = inner_rows, left.avg_row_bytes + right.avg_row_bytes
        elif node.how == "left":
            rows = max(inner_rows, left.rows)
            avg = left.avg_row_bytes + right.avg_row_bytes
        elif node.how == "semi":
            rows, avg, cols = left.rows * keep, left.avg_row_bytes, dict(left.cols)
        else:  # anti
            rows = max(0.0, left.rows * (1.0 - keep))
            avg, cols = left.avg_row_bytes, dict(left.cols)
        return Estimate(rows, avg, cols, confident)

    @staticmethod
    def _key_ndv(key: E.Expression, cols: Dict[int, ColumnEstimate]) -> Optional[float]:
        if isinstance(key, E.Attribute):
            ce = cols.get(key.attr_id)
            return ce.ndv if ce is not None else None
        return None

    # -- predicate selectivity -----------------------------------------------
    def _selectivity(self, expr: E.Expression,
                     cols: Dict[int, ColumnEstimate]) -> float:
        if isinstance(expr, E.And):
            return (self._selectivity(expr.children[0], cols)
                    * self._selectivity(expr.children[1], cols))
        if isinstance(expr, E.Or):
            a = self._selectivity(expr.children[0], cols)
            b = self._selectivity(expr.children[1], cols)
            return min(1.0, a + b - a * b)
        if isinstance(expr, E.Not):
            return max(0.0, 1.0 - self._selectivity(expr.children[0], cols))
        if isinstance(expr, E.IsNull) and isinstance(expr.children[0], E.Attribute):
            ce = cols.get(expr.children[0].attr_id)
            return ce.null_frac if ce is not None else DEFAULT_SELECTIVITY
        if isinstance(expr, E.IsNotNull) and isinstance(expr.children[0], E.Attribute):
            ce = cols.get(expr.children[0].attr_id)
            return 1.0 - ce.null_frac if ce is not None else 1.0
        if isinstance(expr, E.In) and isinstance(expr.value, E.Attribute):
            ce = cols.get(expr.value.attr_id)
            if ce is not None and all(isinstance(o, E.Literal) for o in expr.options):
                return min(1.0, len(expr.options) / max(ce.ndv, 1.0))
            return DEFAULT_SELECTIVITY
        if isinstance(expr, E.Comparison):
            oriented = self._orient(expr)
            if oriented is not None:
                attr, value, op = oriented
                ce = cols.get(attr.attr_id)
                if ce is not None:
                    return self._comparison_selectivity(ce, value, op)
        return DEFAULT_SELECTIVITY

    @staticmethod
    def _orient(expr: E.Comparison) -> Optional[Tuple[E.Attribute, object, str]]:
        a, b = expr.children
        if isinstance(a, E.Attribute) and isinstance(b, E.Literal):
            return a, b.value, expr.op
        if isinstance(b, E.Attribute) and isinstance(a, E.Literal):
            return b, a.value, _FLIP[expr.op]
        return None

    @staticmethod
    def _comparison_selectivity(ce: ColumnEstimate, value: object, op: str) -> float:
        non_null = max(0.0, 1.0 - ce.null_frac)
        if value is None:
            return 0.0
        if op == "=":
            return non_null / max(ce.ndv, 1.0)
        if op == "!=":
            return non_null * (1.0 - 1.0 / max(ce.ndv, 1.0))
        try:
            if ce.histogram is not None:
                leq = ce.histogram.fraction_leq(value, inclusive=op in ("<=", ">"))
                frac = leq if op in ("<", "<=") else 1.0 - leq
                return non_null * min(1.0, max(0.0, frac))
            if isinstance(value, (int, float)) \
                    and isinstance(ce.min_value, (int, float)) \
                    and isinstance(ce.max_value, (int, float)) \
                    and ce.max_value > ce.min_value:
                frac = (value - ce.min_value) / (ce.max_value - ce.min_value)
                frac = min(1.0, max(0.0, frac))
                return non_null * (frac if op in ("<", "<=") else 1.0 - frac)
        except TypeError:
            pass
        return DEFAULT_SELECTIVITY


# -- join reordering ---------------------------------------------------------

def reorder_joins(plan: L.LogicalPlan, store: StatsStore,
                  conf: Dict[str, object], metrics=None) -> L.LogicalPlan:
    """Re-order maximal inner-join clusters by estimated cost.

    Each reordered cluster is rebuilt left-deep and wrapped in a Project
    restoring the original column order, so downstream operators (and the
    query's answer) are unaffected.  Clusters with any unconfident input
    estimate are left in syntactic order (``sql.cbo.reorders_rejected``).
    """
    estimator = CardinalityEstimator(store, conf, metrics)
    dp_threshold = int(conf.get("sql.cbo.joinReorder.dpThreshold", 6))

    def transform(node: L.LogicalPlan) -> L.LogicalPlan:
        if isinstance(node, L.Join) and node.how == "inner":
            inputs, conjuncts = _flatten_inner(node)
            if len(inputs) >= 3:
                new_inputs = [transform(i) for i in inputs]
                replaced = _try_reorder(node, new_inputs, conjuncts,
                                        estimator, dp_threshold, metrics)
                if replaced is not None:
                    return replaced
                if all(n is o for n, o in zip(new_inputs, inputs)):
                    return node
                mapping = {id(o): n for o, n in zip(inputs, new_inputs)}
                return _rebuild(node, mapping)
        children = [transform(c) for c in node.children]
        if all(c is o for c, o in zip(children, node.children)):
            return node
        return node.with_new_children(children)

    return transform(plan)


def _flatten_inner(node: L.LogicalPlan) -> Tuple[List[L.LogicalPlan], List[E.Expression]]:
    """Collect the inputs and conjuncts of a maximal inner-join tree."""
    if isinstance(node, L.Join) and node.how == "inner":
        left_in, left_conj = _flatten_inner(node.left)
        right_in, right_conj = _flatten_inner(node.right)
        own = E.split_conjuncts(node.condition) if node.condition is not None else []
        return left_in + right_in, left_conj + right_conj + own
    return [node], []


def _rebuild(node: L.LogicalPlan, mapping: Dict[int, L.LogicalPlan]) -> L.LogicalPlan:
    """The original join-tree shape over transformed inputs."""
    if isinstance(node, L.Join) and node.how == "inner":
        return L.Join(_rebuild(node.left, mapping), _rebuild(node.right, mapping),
                      "inner", node.condition)
    return mapping[id(node)]


def _try_reorder(node: L.Join, inputs: List[L.LogicalPlan],
                 conjuncts: List[E.Expression],
                 estimator: CardinalityEstimator, dp_threshold: int,
                 metrics) -> Optional[L.LogicalPlan]:
    ests = [estimator.estimate(i) for i in inputs]
    if not all(e.confident for e in ests):
        if metrics is not None:
            metrics.incr("sql.cbo.reorders_rejected", 1)
        return None
    n = len(inputs)
    rows = [max(e.rows, 1.0) for e in ests]

    attr_to_input: Dict[int, int] = {}
    for i, inp in enumerate(inputs):
        for a in inp.output:
            attr_to_input[a.attr_id] = i

    conj_inputs: List[frozenset] = []
    conj_sel: List[float] = []
    for conjunct in conjuncts:
        refs = conjunct.references()
        idxs = {attr_to_input[r] for r in refs if r in attr_to_input}
        if not idxs or any(r not in attr_to_input for r in refs):
            idxs = set(range(n))  # defensive: only applicable at the very top
        conj_inputs.append(frozenset(idxs))
        conj_sel.append(_conjunct_selectivity(conjunct, ests, attr_to_input))

    def extend(state: Tuple[float, float, Tuple[int, ...], frozenset], j: int):
        cost, state_rows, order, used = state
        members = set(order) | {j}
        applicable = frozenset(
            c for c in range(len(conjuncts))
            if c not in used and conj_inputs[c] <= members
        )
        sel = 1.0
        for c in applicable:
            sel *= conj_sel[c]
        new_rows = state_rows * rows[j] * sel
        new_cost = cost + state_rows + rows[j] + new_rows
        return new_cost, new_rows, order + (j,), used | applicable

    if n <= dp_threshold:
        order = _dp_order(n, rows, extend)
    else:
        order = _greedy_order(n, rows, extend)

    if list(order) == list(range(n)):
        return None  # the syntactic order was already the cheapest

    # build the left-deep tree along `order`, attaching each conjunct at the
    # first join where all its inputs are available
    current = inputs[order[0]]
    state = (0.0, rows[order[0]], (order[0],), frozenset())
    for j in order[1:]:
        prev_used = state[3]
        state = extend(state, j)
        newly = state[3] - prev_used
        cond = E.combine_conjuncts([conjuncts[c] for c in sorted(newly)])
        current = L.Join(current, inputs[j], "inner", cond)
    leftover = [conjuncts[c] for c in range(len(conjuncts)) if c not in state[3]]
    if leftover:
        current = L.Filter(E.combine_conjuncts(leftover), current)
    if metrics is not None:
        metrics.incr("sql.cbo.reorders_applied", 1)
    return L.Project(list(node.output), current)


def _conjunct_selectivity(conjunct: E.Expression, ests: List[Estimate],
                          attr_to_input: Dict[int, int]) -> float:
    """Selectivity of one join conjunct for the reorder search."""
    if isinstance(conjunct, E.Comparison) and conjunct.op == "=":
        a, b = conjunct.children
        if isinstance(a, E.Attribute) and isinstance(b, E.Attribute):
            ndvs = []
            for attr in (a, b):
                idx = attr_to_input.get(attr.attr_id)
                ce = ests[idx].cols.get(attr.attr_id) if idx is not None else None
                if ce is None:
                    return DEFAULT_SELECTIVITY
                ndvs.append(ce.ndv)
            return 1.0 / max(max(ndvs), 1.0)
    return DEFAULT_SELECTIVITY


def _dp_order(n: int, rows: List[float], extend) -> Tuple[int, ...]:
    """Exact left-deep join order by DP over input subsets."""
    best: Dict[int, Tuple[float, float, Tuple[int, ...], frozenset]] = {}
    for i in range(n):
        best[1 << i] = (0.0, rows[i], (i,), frozenset())
    for mask in range(1, 1 << n):
        if mask not in best or bin(mask).count("1") == n:
            continue
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            candidate = extend(best[mask], j)
            new_mask = mask | bit
            incumbent = best.get(new_mask)
            # deterministic tie-break on the order tuple itself
            if incumbent is None or (candidate[0], candidate[2]) < \
                    (incumbent[0], incumbent[2]):
                best[new_mask] = candidate
    return best[(1 << n) - 1][2]


def _greedy_order(n: int, rows: List[float], extend) -> Tuple[int, ...]:
    """Smallest-intermediate-first greedy order for wide join sets."""
    start = min(range(n), key=lambda i: (rows[i], i))
    state = (0.0, rows[start], (start,), frozenset())
    remaining = set(range(n)) - {start}
    while remaining:
        choice = min(remaining, key=lambda j: (extend(state, j)[1], j))
        state = extend(state, choice)
        remaining.discard(choice)
    return state[2]


# -- semi-join reduction profitability --------------------------------------

def semijoin_keep_fraction(est_left: Estimate, est_right: Estimate,
                           left_keys: Sequence[E.Expression],
                           right_keys: Sequence[E.Expression]) -> Optional[float]:
    """Expected fraction of probe rows surviving a build-key pre-filter.

    ``None`` when any key column lacks NDV statistics -- the planner then
    skips the reduction rather than guessing.
    """
    keep = 1.0
    for a, b in zip(left_keys, right_keys):
        ndv_l = CardinalityEstimator._key_ndv(a, est_left.cols)
        ndv_r = CardinalityEstimator._key_ndv(b, est_right.cols)
        if ndv_l is None or ndv_r is None:
            return None
        keep *= min(1.0, ndv_r / max(ndv_l, 1.0))
    return keep

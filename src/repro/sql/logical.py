"""Logical query plans.

The parser produces *unresolved* plans (``UnresolvedRelation`` leaves and
``UnresolvedAttribute`` expression leaves); the analyzer rewrites them into
resolved plans whose every node exposes ``output`` -- the list of
:class:`~repro.sql.expressions.Attribute` it produces -- and the optimizer
then rewrites resolved plans into cheaper equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.sql import expressions as E
from repro.sql.sources import BaseRelation
from repro.sql.types import StructType


@dataclass(frozen=True)
class SortOrder:
    """One ORDER BY term."""

    expression: E.Expression
    ascending: bool = True


class LogicalPlan:
    """Base class; children accessible for tree rewrites."""

    children: Tuple["LogicalPlan", ...] = ()

    @property
    def output(self) -> List[E.Attribute]:
        raise NotImplementedError

    def schema(self) -> StructType:
        out = StructType()
        for attr in self.output:
            out = out.add(attr.name, attr.dtype)
        return out

    def with_new_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError

    def transform_up(self, fn) -> "LogicalPlan":
        new_children = [c.transform_up(fn) for c in self.children]
        node = self if all(a is b for a, b in zip(new_children, self.children)) \
            else self.with_new_children(new_children)
        replacement = fn(node)
        return replacement if replacement is not None else node

    def collect_nodes(self, predicate) -> List["LogicalPlan"]:
        found = [n for c in self.children for n in c.collect_nodes(predicate)]
        if predicate(self):
            found.append(self)
        return found

    def pretty(self, indent: int = 0) -> str:
        head = "  " * indent + self.describe()
        body = "\n".join(c.pretty(indent + 1) for c in self.children)
        return head + ("\n" + body if body else "")

    def describe(self) -> str:
        return type(self).__name__


class UnresolvedRelation(LogicalPlan):
    """A table name awaiting catalog lookup."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> List[E.Attribute]:
        raise AnalysisError(f"unresolved relation {self.name!r}")

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "UnresolvedRelation":
        return self

    def describe(self) -> str:
        return f"UnresolvedRelation({self.name})"


class LogicalRelation(LogicalPlan):
    """A resolved external data source."""

    def __init__(self, relation: BaseRelation, name: str = "",
                 output: Optional[List[E.Attribute]] = None) -> None:
        self.relation = relation
        self.name = name
        if output is None:
            output = [
                E.Attribute(f.name, f.dtype, qualifier=name or None)
                for f in relation.schema
            ]
        self._output = output

    @property
    def output(self) -> List[E.Attribute]:
        return self._output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "LogicalRelation":
        return self

    def new_instance(self) -> "LogicalRelation":
        """Fresh attribute ids -- required when the same table appears twice."""
        return LogicalRelation(
            self.relation, self.name, [a.renewed() for a in self._output]
        )

    def describe(self) -> str:
        return f"LogicalRelation({self.name or type(self.relation).__name__})"


class LocalRelation(LogicalPlan):
    """Driver-local rows (createDataFrame / test fixtures)."""

    def __init__(self, schema: StructType, rows: Sequence[tuple],
                 output: Optional[List[E.Attribute]] = None) -> None:
        self.local_schema = schema
        self.rows = [tuple(r) for r in rows]
        if output is None:
            output = [E.Attribute(f.name, f.dtype) for f in schema]
        self._output = output

    @property
    def output(self) -> List[E.Attribute]:
        return self._output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "LocalRelation":
        return self

    def new_instance(self) -> "LocalRelation":
        return LocalRelation(self.local_schema, self.rows,
                             [a.renewed() for a in self._output])

    def describe(self) -> str:
        return f"LocalRelation({len(self.rows)} rows)"


class Project(LogicalPlan):
    """SELECT list: named expressions over the child."""

    def __init__(self, project_list: Sequence[E.Expression], child: LogicalPlan) -> None:
        self.project_list = list(project_list)
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        out = []
        for expr in self.project_list:
            if isinstance(expr, E.Alias):
                out.append(expr.to_attribute())
            elif isinstance(expr, E.Attribute):
                out.append(expr)
            else:
                raise AnalysisError(f"unnamed projection {expr!r}")
        return out

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Project":
        return Project(self.project_list, children[0])

    def describe(self) -> str:
        return f"Project({self.project_list!r})"


class Filter(LogicalPlan):
    """WHERE/HAVING: keeps rows whose condition is exactly True."""

    def __init__(self, condition: E.Expression, child: LogicalPlan) -> None:
        self.condition = condition
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return self.child.output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        return Filter(self.condition, children[0])

    def describe(self) -> str:
        return f"Filter({self.condition!r})"


class Join(LogicalPlan):
    """Binary join (inner / left outer / cross / left-semi / left-anti)."""

    TYPES = ("inner", "left", "cross", "semi", "anti")

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 how: str = "inner", condition: Optional[E.Expression] = None) -> None:
        if how not in self.TYPES:
            raise AnalysisError(f"unsupported join type {how!r}")
        self.how = how
        self.condition = condition
        self.children = (left, right)

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    @property
    def output(self) -> List[E.Attribute]:
        if self.how in ("semi", "anti"):
            return list(self.left.output)
        return list(self.left.output) + list(self.right.output)

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Join":
        return Join(children[0], children[1], self.how, self.condition)

    def describe(self) -> str:
        return f"Join({self.how}, {self.condition!r})"


class Aggregate(LogicalPlan):
    """GROUP BY: ``aggregate_list`` entries must be Alias or Attribute."""

    def __init__(self, groupings: Sequence[E.Expression],
                 aggregate_list: Sequence[E.Expression], child: LogicalPlan) -> None:
        self.groupings = list(groupings)
        self.aggregate_list = list(aggregate_list)
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        out = []
        for expr in self.aggregate_list:
            if isinstance(expr, E.Alias):
                out.append(expr.to_attribute())
            elif isinstance(expr, E.Attribute):
                out.append(expr)
            else:
                raise AnalysisError(f"unnamed aggregate output {expr!r}")
        return out

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        return Aggregate(self.groupings, self.aggregate_list, children[0])

    def describe(self) -> str:
        return f"Aggregate(by {self.groupings!r})"


class Sort(LogicalPlan):
    """ORDER BY (total order; NULLS FIRST ascending)."""

    def __init__(self, orders: Sequence[SortOrder], child: LogicalPlan) -> None:
        self.orders = list(orders)
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return self.child.output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        return Sort(self.orders, children[0])


class Limit(LogicalPlan):
    """LIMIT n."""

    def __init__(self, n: int, child: LogicalPlan) -> None:
        if n < 0:
            raise AnalysisError("LIMIT must be non-negative")
        self.n = n
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return self.child.output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        return Limit(self.n, children[0])

    def describe(self) -> str:
        return f"Limit({self.n})"


class Distinct(LogicalPlan):
    """SELECT DISTINCT over the full row."""

    def __init__(self, child: LogicalPlan) -> None:
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return self.child.output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        return Distinct(children[0])


class SetOperation(LogicalPlan):
    """UNION [ALL] / INTERSECT: children must be schema-compatible."""

    def __init__(self, op: str, left: LogicalPlan, right: LogicalPlan,
                 all_rows: bool = False) -> None:
        if op not in ("union", "intersect"):
            raise AnalysisError(f"unsupported set operation {op!r}")
        self.op = op
        self.all_rows = all_rows
        self.children = (left, right)

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    @property
    def output(self) -> List[E.Attribute]:
        return self.left.output

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "SetOperation":
        return SetOperation(self.op, children[0], children[1], self.all_rows)

    def describe(self) -> str:
        suffix = " ALL" if self.all_rows else ""
        return f"{self.op.upper()}{suffix}"


class ShowTables(LogicalPlan):
    """``SHOW TABLES``: lists the session's registered temp views."""

    @property
    def output(self) -> List[E.Attribute]:
        from repro.sql.types import StringType

        return [E.Attribute("tableName", StringType)]

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "ShowTables":
        return self


class DropView(LogicalPlan):
    """``DROP VIEW <name>``: unregisters a temp view."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> List[E.Attribute]:
        return []

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "DropView":
        return self


class AnalyzeTable(LogicalPlan):
    """``ANALYZE TABLE <name> COMPUTE STATISTICS``: collect catalog stats."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> List[E.Attribute]:
        return []

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "AnalyzeTable":
        return self


class CreateMaterializedView(LogicalPlan):
    """``CREATE MATERIALIZED VIEW <name> AS <select>`` (docs/views.md).

    The child is the *unresolved* defining query; the session analyzes it,
    derives the view's storage layout and materializes it eagerly.
    """

    def __init__(self, name: str, child: LogicalPlan) -> None:
        self.name = name
        self.children = (child,)

    @property
    def output(self) -> List[E.Attribute]:
        return []

    def with_new_children(
        self, children: Sequence[LogicalPlan]
    ) -> "CreateMaterializedView":
        return CreateMaterializedView(self.name, children[0])


class DropMaterializedView(LogicalPlan):
    """``DROP MATERIALIZED VIEW <name>``: drop storage and subscription."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> List[E.Attribute]:
        return []

    def with_new_children(
        self, children: Sequence[LogicalPlan]
    ) -> "DropMaterializedView":
        return self


class RefreshMaterializedView(LogicalPlan):
    """``REFRESH MATERIALIZED VIEW <name>``: full recomputation."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def output(self) -> List[E.Attribute]:
        return []

    def with_new_children(
        self, children: Sequence[LogicalPlan]
    ) -> "RefreshMaterializedView":
        return self


class ShowMaterializedViews(LogicalPlan):
    """``SHOW MATERIALIZED VIEWS``: list this session's registered views."""

    @property
    def output(self) -> List[E.Attribute]:
        from repro.sql.types import StringType

        return [E.Attribute("viewName", StringType)]

    def with_new_children(
        self, children: Sequence[LogicalPlan]
    ) -> "ShowMaterializedViews":
        return self


class ExplainStatement(LogicalPlan):
    """``EXPLAIN <query>``: renders the plans instead of running the query."""

    def __init__(self, child: LogicalPlan) -> None:
        self.children = (child,)

    @property
    def output(self) -> List[E.Attribute]:
        from repro.sql.types import StringType

        return [E.Attribute("plan", StringType)]

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "ExplainStatement":
        return ExplainStatement(children[0])


class UnresolvedInlineValues(LogicalPlan):
    """``VALUES (...), (...)`` awaiting the target schema for typing."""

    def __init__(self, rows: Sequence[Sequence[E.Expression]]) -> None:
        self.rows = [list(r) for r in rows]

    @property
    def output(self) -> List[E.Attribute]:
        raise AnalysisError("inline VALUES need a target table for typing")

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "UnresolvedInlineValues":
        return self

    def describe(self) -> str:
        return f"UnresolvedInlineValues({len(self.rows)} rows)"


class InsertIntoTable(LogicalPlan):
    """``INSERT INTO <view> (SELECT ... | VALUES ...)``.

    The analyzer resolves ``table_name`` to a writable relation view and
    aligns the child's output with the target schema; the session executes
    it through the relation's insert path.
    """

    def __init__(self, table_name: str, child: LogicalPlan,
                 overwrite: bool = False,
                 relation: Optional[BaseRelation] = None) -> None:
        self.table_name = table_name
        self.overwrite = overwrite
        self.relation = relation
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return []  # DML produces no rows

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "InsertIntoTable":
        return InsertIntoTable(self.table_name, children[0], self.overwrite,
                               self.relation)

    def describe(self) -> str:
        mode = "overwrite" if self.overwrite else "into"
        return f"InsertIntoTable({self.table_name}, {mode})"


class SubqueryAlias(LogicalPlan):
    """Scopes a child under a name (``FROM (...) t`` / table aliases)."""

    def __init__(self, alias: str, child: LogicalPlan) -> None:
        self.alias = alias
        self.children = (child,)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def output(self) -> List[E.Attribute]:
        return [attr.with_qualifier(self.alias) for attr in self.child.output]

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "SubqueryAlias":
        return SubqueryAlias(self.alias, children[0])

    def describe(self) -> str:
        return f"SubqueryAlias({self.alias})"

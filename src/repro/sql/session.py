"""The SparkSession-like entry point tying the SQL layer to the engine.

A session owns a compute cluster (hosts + executors granted by the YARN-like
resource manager), the temp-view catalog, the session configuration, and a
thread pool for concurrent query execution (Table I's "Thread pool" row).
``execute_plan`` runs the full Catalyst pipeline -- analyze, optimize, plan,
execute -- and returns rows together with simulated seconds and metrics.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.cost import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import AnalysisError
from repro.common.metrics import MetricsRegistry
from repro.common.simclock import SimClock
from repro.common.tracing import NOOP_SPAN, Span
from repro.engine.cachemanager import CacheManager
from repro.engine.cluster import ComputeCluster, YarnResourceManager
from repro.engine.scheduler import StageInfo, TaskScheduler
from repro.sql.analyzer import Analyzer, Catalog
from repro.sql.logical import LocalRelation, LogicalPlan, LogicalRelation
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.sql.physical import ExecContext
from repro.sql.planner import Planner
from repro.sql.row import Row
from repro.sql.sources import lookup_provider
from repro.sql.stats import StatsStore
from repro.sql.types import StructType, type_from_name


@dataclass
class QueryResult:
    """Rows plus the simulated cost of producing them."""

    rows: List[Row]
    schema: StructType
    seconds: float
    metrics: MetricsRegistry
    stages: List[StageInfo] = field(default_factory=list)
    wall_clock_s: float = 0.0
    #: per-operator runtime stats keyed by PhysicalPlan.op_id (always on)
    operator_stats: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: root Span of the query trace, or None when tracing was disabled
    trace: Optional[Span] = None
    #: adaptive re-optimisation decisions (sql.aqe.enabled), in decision
    #: order; empty for non-adaptive runs
    reopt_events: List[Dict[str, object]] = field(default_factory=list)
    #: front-door admission record stamped by the serving layer (tenant,
    #: queue wait, breaker state, leased slots); None for direct runs --
    #: see docs/serving.md and the EXPLAIN ANALYZE serving section
    serving: Optional[Dict[str, object]] = None
    #: materialized-view rewrite decisions (sql.view.enabled), in match
    #: order; empty when no view was considered -- see docs/views.md and
    #: the EXPLAIN ANALYZE "Materialized Views" section
    view_events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def shuffle_bytes(self) -> float:
        return self.metrics.get("engine.shuffle_write_bytes")

    @property
    def peak_memory_bytes(self) -> float:
        return self.metrics.peak("engine.peak_stage_bytes")


@dataclass
class WriteResult:
    """Outcome of a DataFrame write."""

    rows_written: int
    seconds: float
    metrics: MetricsRegistry


DEFAULT_CONF: Dict[str, object] = {
    "sql.shuffle.partitions": 8,
    # per-query span-tree tracing (docs/observability.md); off by default so
    # the hot path runs against the no-op recorder
    "tracing.enabled": False,
    "sql.autoBroadcastJoinThreshold": 128 * 1024,
    # adaptive query execution (docs/adaptive.md): re-optimise plans at
    # shuffle-stage barriers from measured partition sizes.  Off by default
    # -- the non-adaptive path must stay byte-identical
    "sql.aqe.enabled": False,
    # rule 2/3 sizing: coalesce small reduce partitions toward this many
    # bytes per task, and cap each skew-split chunk at it
    "sql.aqe.targetPartitionBytes": 64 * 1024,
    # rule 3 trigger: a partition is skewed when larger than `factor` x the
    # median partition AND over the absolute threshold
    "sql.aqe.skewedPartitionFactor": 4.0,
    "sql.aqe.skewedPartitionThresholdBytes": 64 * 1024,
    # partitions for driver-local (VALUES / createDataFrame) scans
    "sql.local.scan.partitions": 2,
    # cost-based optimization (docs/optimizer.md): use ANALYZE statistics to
    # estimate cardinalities, re-order multi-way inner joins, and inform the
    # planner's broadcast decisions.  Off by default -- without it planning
    # is purely syntactic and byte-identical to the seed
    "sql.cbo.enabled": False,
    # semi-join reduction (needs sql.cbo.enabled): pre-filter a large probe
    # scan by the distinct join keys of a small build side before shuffling
    "sql.cbo.semijoin": True,
    # exact left-deep DP join ordering up to this many inputs; greedy above
    "sql.cbo.joinReorder.dpThreshold": 6,
    # equi-height histogram buckets collected per column by ANALYZE
    "sql.cbo.histogram.buckets": 8,
    # stats whose recorded size drifted by more than this factor from the
    # relation's current size are treated as absent (fall back to syntactic)
    "sql.cbo.staleness.ratio": 2.0,
    # semi-join reduction applies only when the build side is estimated at
    # or under this many rows ...
    "sql.cbo.semijoin.maxBuildRows": 10000,
    # ... and the probe is expected to shrink by at least this factor ...
    "sql.cbo.semijoin.minReduction": 2.0,
    # ... and (checked at runtime) the build yields at most this many
    # distinct keys; above it the reduction aborts and joins normally
    "sql.cbo.semijoin.maxKeys": 16384,
    # vectorized batch execution (docs/vectorized.md): rewrite planned trees
    # into batch-at-a-time operators over RecordBatch column vectors.  Off by
    # default -- the row path must stay byte-identical
    "sql.vectorized.enabled": False,
    # rows per RecordBatch at scan/transition boundaries
    "sql.vectorized.batchSize": 1024,
    # collapse scan -> filter -> project chains into one whole-stage pass;
    # turned off only by the fusion ablation leg
    "sql.vectorized.fusion": True,
    # DataFrame.cache()/persist(): executor-memory partition cache.  The
    # enabled flag gates persist() itself -- with it off (or with no
    # persist() calls, the default state) planning and execution are
    # byte-identical to an uncached session
    "sql.cache.enabled": True,
    "sql.cache.max.bytes": 64 * 1024 * 1024,
    "engine.locality.enabled": True,
    # thread-pool stage runner: one worker per executor slot; turn off for
    # the serial driver-thread baseline the parallelism ablation measures
    "engine.parallel.enabled": True,
    # delay scheduling: events a task waits for a preferred slot (locality)
    "engine.locality.wait.skips": 2,
    # real seconds slept per simulated task-second, to emulate the I/O wait
    # a real scan spends off-CPU (0 = off; benchmarks opt in)
    "engine.realtime.scale": 0.0,
    # workers in the session's concurrent-query pool (Table I "Thread pool")
    "engine.query.pool.size": 8,
    # speculative execution: duplicate a tail task once `quantile` of the
    # stage finished and it has run `multiplier` x the median task duration
    # (off by default; chaos/straggler runs opt in)
    "engine.speculation.enabled": False,
    "engine.speculation.multiplier": 1.5,
    "engine.speculation.quantile": 0.5,
    # blacklist a host after this many failed task attempts (0 disables)
    "engine.blacklist.max.failures": 2,
    # capped exponential backoff between task retries (simulated seconds)
    "engine.retry.backoff.s": 0.05,
    "engine.retry.backoff.max.s": 2.0,
    # multi-tenant serving front door (docs/serving.md).  None of these keys
    # affect a session used directly -- they are only read when a
    # repro.serving.QueryServer is constructed over the session, which is
    # itself the opt-in (the direct path stays byte-identical)
    "serving.enabled": True,
    "serving.queue.max.depth": 16,          # bounded admission queue
    "serving.slots.per.query": 2,           # executor slots leased per query
    "serving.deadline.s": None,             # shed when queue wait eats this
    "serving.breaker.window": 8,            # sliding outcome window
    "serving.breaker.min.samples": 4,
    "serving.breaker.failure.threshold": 0.5,
    "serving.breaker.cooldown.s": 30.0,     # open -> half-open (simulated)
    "serving.breaker.max.cooldown.s": 240.0,
    "serving.breaker.probe.count": 2,       # half-open probe arrivals
    "serving.breaker.retry.signal": 2,      # hbase.retries that flag degraded
    "serving.breaker.latency.threshold.s": None,
    # materialized views (docs/views.md): CREATE MATERIALIZED VIEW persists
    # aggregations/joins as HBase tables maintained incrementally from a
    # WAL-tailing CDC feed, and the optimizer rewrites matching queries onto
    # fresh-enough views.  Off by default -- with the flag off (or on but no
    # view created) planning and every ledger are byte-identical to the seed
    "sql.view.enabled": False,
    # maximum CDC lag (simulated seconds of unshipped WAL tail) a view may
    # carry and still answer queries; 0.0 = only fully caught-up views
    "sql.view.staleness": 0.0,
}


class SparkSession:
    """One application context."""

    def __init__(
        self,
        hosts: Sequence[str],
        executors_requested: int = 5,
        cores_per_executor: int = 2,
        cost_model: Optional[CostModel] = None,
        clock: Optional[SimClock] = None,
        conf: Optional[Dict[str, object]] = None,
        resource_manager: Optional[YarnResourceManager] = None,
    ) -> None:
        self.cost = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.clock = clock if clock is not None else SimClock()
        self.conf: Dict[str, object] = dict(DEFAULT_CONF)
        # CI's flag-matrix tier-1 legs flip defaults without editing every
        # test; an explicit session conf still wins (applied after)
        if os.environ.get("REPRO_SQL_VECTORIZED"):
            self.conf["sql.vectorized.enabled"] = True
        if os.environ.get("REPRO_SQL_CBO"):
            self.conf["sql.cbo.enabled"] = True
        if os.environ.get("REPRO_SQL_AQE"):
            self.conf["sql.aqe.enabled"] = True
        if os.environ.get("REPRO_SQL_VIEWS"):
            self.conf["sql.view.enabled"] = True
        if conf:
            self.conf.update(conf)
        self.cluster = ComputeCluster(
            hosts, executors_requested, cores_per_executor, resource_manager
        )
        self.catalog = Catalog()
        self._analyzer = Analyzer(self.catalog)
        #: ANALYZE statistics catalog (docs/optimizer.md); read only when
        #: sql.cbo.enabled is on
        self.stats = StatsStore()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        #: optional FaultInjector for engine-side fault points; None = off
        self.faults = None
        #: executor-side partition cache behind DataFrame.persist(); None
        #: when sql.cache.enabled is off (persist() then no-ops)
        self.cache_manager: Optional[CacheManager] = None
        if bool(self.conf.get("sql.cache.enabled", True)):
            self.cache_manager = CacheManager(
                int(self.conf.get("sql.cache.max.bytes", 64 * 1024 * 1024))
            )
        #: lazy ViewManager (docs/views.md); stays None until the first
        #: view statement, so view-free sessions never touch the module
        self._view_manager = None

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.common.faults.FaultInjector` (None removes it).

        Covers the engine fault points (slow hosts, shuffle fetches) of
        schedulers created *after* the call; substrate faults are installed
        separately via ``HBaseCluster.install_fault_injector``.
        """
        self.faults = injector

    # -- plan plumbing ------------------------------------------------------------
    def analyze(self, plan: LogicalPlan) -> LogicalPlan:
        return self._analyzer.analyze(plan)

    def new_scheduler(self, trace=NOOP_SPAN, slots=None,
                      queued_s: float = 0.0) -> TaskScheduler:
        return TaskScheduler(
            self.cluster, self.cost,
            trace=trace,
            slots=slots,
            queued_s=queued_s,
            locality_enabled=bool(self.conf.get("engine.locality.enabled", True)),
            parallel=bool(self.conf.get("engine.parallel.enabled", True)),
            locality_wait_skips=int(self.conf.get("engine.locality.wait.skips", 2)),
            realtime_scale=float(self.conf.get("engine.realtime.scale", 0.0)),
            faults=self.faults,
            speculation_enabled=bool(
                self.conf.get("engine.speculation.enabled", False)),
            speculation_multiplier=float(
                self.conf.get("engine.speculation.multiplier", 1.5)),
            speculation_quantile=float(
                self.conf.get("engine.speculation.quantile", 0.5)),
            blacklist_max_failures=int(
                self.conf.get("engine.blacklist.max.failures", 2)),
            retry_backoff_s=float(self.conf.get("engine.retry.backoff.s", 0.05)),
            retry_backoff_max_s=float(
                self.conf.get("engine.retry.backoff.max.s", 2.0)),
        )

    # -- data ingestion --------------------------------------------------------------
    def create_dataframe(self, data: Sequence[tuple], schema: StructType):
        from repro.sql.dataframe import DataFrame

        return DataFrame(self, LocalRelation(schema, data))

    createDataFrame = create_dataframe

    @property
    def read(self) -> "DataFrameReader":
        return DataFrameReader(self)

    def table(self, name: str):
        from repro.sql.dataframe import DataFrame
        from repro.sql.logical import UnresolvedRelation

        return DataFrame(self, UnresolvedRelation(name))

    # -- SQL ---------------------------------------------------------------------------
    def sql(self, text: str):
        from repro.sql.dataframe import DataFrame
        from repro.sql.logical import InsertIntoTable, LocalRelation

        plan = parse(text)
        from repro.sql.logical import (
            AnalyzeTable, CreateMaterializedView, DropMaterializedView,
            DropView, ExplainStatement, RefreshMaterializedView,
            ShowMaterializedViews, ShowTables,
        )

        if isinstance(plan, AnalyzeTable):
            return self.analyze_table(plan.name)
        if isinstance(plan, (CreateMaterializedView, DropMaterializedView,
                             RefreshMaterializedView, ShowMaterializedViews)):
            return self._view_statement(plan, text)
        if isinstance(plan, ShowTables):
            schema = StructType().add("tableName", type_from_name("string"))
            names = [(name,) for name in self.catalog.names()]
            return DataFrame(self, LocalRelation(schema, names))
        if isinstance(plan, DropView):
            self.catalog.drop(plan.name)
            schema = StructType().add("dropped", type_from_name("string"))
            return DataFrame(self, LocalRelation(schema, [(plan.name,)]))
        if isinstance(plan, ExplainStatement):
            inner = DataFrame(self, plan.children[0])
            schema = StructType().add("plan", type_from_name("string"))
            lines = [(line,) for line in inner.explain().splitlines()]
            return DataFrame(self, LocalRelation(schema, lines))
        if isinstance(plan, InsertIntoTable):
            # DML runs eagerly, like Spark commands; the returned DataFrame
            # carries the rows-written count
            result = self.execute_plan(self.analyze(plan))
            rows = [tuple(r.values) for r in result.rows]
            return DataFrame(self, LocalRelation(result.schema, rows))
        return DataFrame(self, plan)

    # -- materialized views (docs/views.md) --------------------------------------
    @property
    def views(self):
        """The session's view manager, created on first use."""
        if self._view_manager is None:
            from repro.sql.views import ViewManager

            self._view_manager = ViewManager(self)
        return self._view_manager

    def view_rewrite_context(self):
        """Per-query rewrite state, or None when views cannot apply.

        None is the common case -- flag off, or no view ever created in
        this session -- and keeps the planning path allocation-identical
        to the seed.
        """
        if self._view_manager is None:
            return None
        if not bool(self.conf.get("sql.view.enabled", False)):
            return None
        from repro.sql.views import build_rewrite_context

        return build_rewrite_context(self)

    def _view_statement(self, plan, text: str):
        """Run one of the eager MATERIALIZED VIEW statements."""
        from repro.sql.dataframe import DataFrame
        from repro.sql.logical import (
            CreateMaterializedView, DropMaterializedView, LocalRelation,
            RefreshMaterializedView,
        )

        if not bool(self.conf.get("sql.view.enabled", False)):
            raise AnalysisError(
                "materialized views are disabled; set sql.view.enabled"
            )
        if isinstance(plan, CreateMaterializedView):
            schema, rows, metrics = self.views.create(
                plan.name, plan.children[0], text)
        elif isinstance(plan, RefreshMaterializedView):
            schema, rows, metrics = self.views.refresh(plan.name)
        elif isinstance(plan, DropMaterializedView):
            schema, rows, metrics = self.views.drop(plan.name)
        else:
            schema, rows, metrics = self.views.show()
        return DataFrame(self, LocalRelation(schema, rows),
                         pending_metrics=metrics)

    def analyze_table(self, name: str):
        """``ANALYZE TABLE name COMPUTE STATISTICS``: scan once, keep stats.

        The collection scan pays the normal simulated cost (it is a real
        query over the table).  Stats land in the session's
        :class:`~repro.sql.stats.StatsStore` under the leaf's durable
        identity, and -- for HBase-backed tables -- are persisted alongside
        the table's schema metadata so later sessions start warm.  Works
        for temp views too, keyed by plan fingerprint.
        """
        from repro.sql.dataframe import DataFrame
        from repro.sql.logical import LocalRelation as LocalRel, UnresolvedRelation
        from repro.sql.stats import (
            analysis_keys, compute_table_stats, persist_relation_stats,
        )

        analyzed = self.analyze(UnresolvedRelation(name))
        result = self.execute_plan(analyzed)
        buckets = int(self.conf.get("sql.cbo.histogram.buckets", 8))
        stats = compute_table_stats(
            [tuple(r.values) for r in result.rows], result.schema, buckets
        )
        # the collection scan's ledger rides onto the summary row the
        # statement returns, so ANALYZE's cost and counters are observable
        collected = MetricsRegistry()
        collected.merge(result.metrics)
        collected.incr("sql.cbo.stats_collected", len(stats.columns))
        leaves = analyzed.collect_nodes(lambda n: isinstance(n, LogicalRelation))
        if len(leaves) == 1:
            # baseline for the staleness check: the source's own size, the
            # same number a later session will compare against
            stats.source_bytes = leaves[0].relation.size_in_bytes()
        for key in analysis_keys(analyzed):
            self.stats.put(key, stats)
        persisted = False
        for leaf in leaves:
            persisted = persist_relation_stats(leaf, stats) or persisted
        schema = (
            StructType()
            .add("table", type_from_name("string"))
            .add("row_count", type_from_name("bigint"))
            .add("columns_analyzed", type_from_name("bigint"))
            .add("persisted", type_from_name("boolean"))
        )
        rows = [(name, stats.row_count, len(stats.columns), persisted)]
        return DataFrame(self, LocalRel(schema, rows), pending_metrics=collected)

    def submit_sql(self, text: str) -> "Future[QueryResult]":
        """Run a SQL query on the session's thread pool (concurrent execution)."""
        with self._pool_lock:
            if self._pool is None:
                workers = int(self.conf.get("engine.query.pool.size", 8))
                self._pool = ThreadPoolExecutor(max_workers=max(1, workers),
                                                thread_name_prefix="shc-query")
            pool = self._pool
        return pool.submit(lambda: self.sql(text).run())

    def shutdown(self) -> None:
        """Stop the query pool and release cached partitions.

        Dropping the partition cache here mirrors the shuffle-store cleanup
        on job abort: a long-lived process that opens and closes sessions
        must not accumulate unreachable cached rows.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self.cache_manager is not None:
            self.cache_manager.clear()

    # -- execution -----------------------------------------------------------------------
    def query_trace(self, trace=None) -> "Span | object":
        """The root span for a query: the caller's, a fresh one when
        ``tracing.enabled`` is set, or the no-op recorder."""
        if trace is not None:
            return trace
        if bool(self.conf.get("tracing.enabled", False)):
            return Span("query", "query")
        return NOOP_SPAN

    def execute_plan(self, plan: LogicalPlan, trace=None, slots=None,
                     queued_s: float = 0.0) -> QueryResult:
        from repro.sql.logical import InsertIntoTable

        if isinstance(plan, InsertIntoTable):
            return self._execute_insert(plan)
        trace = self.query_trace(trace)
        stats = self.cbo_stats()
        views_ctx = self.view_rewrite_context()
        # planning-time CBO/view counters (reorders, estimates, rewrites)
        # ride into the query's registry; None keeps the default path
        # allocation-identical
        plan_metrics = MetricsRegistry() \
            if stats is not None or views_ctx is not None else None
        if views_ctx is not None:
            views_ctx.metrics = plan_metrics
        span = trace.child("optimize", "plan", order=(0, 0))
        optimized = optimize(plan, conf=self.conf, stats=stats,
                             metrics=plan_metrics, views=views_ctx)
        span.finish()
        span = trace.child("plan", "plan", order=(0, 1))
        physical = Planner(self.conf, cache=self.cache_manager, stats=stats,
                           metrics=plan_metrics).plan_query(optimized)
        span.finish()
        result = self.execute_physical(physical, trace=trace, slots=slots,
                                       queued_s=queued_s,
                                       extra_metrics=plan_metrics)
        if views_ctx is not None:
            result.view_events = views_ctx.events
        return result

    def cbo_stats(self) -> Optional[StatsStore]:
        """The stats store when ``sql.cbo.enabled`` is on, else None."""
        if bool(self.conf.get("sql.cbo.enabled", False)):
            return self.stats
        return None

    def execute_physical(self, physical, trace=NOOP_SPAN, slots=None,
                         queued_s: float = 0.0,
                         extra_metrics: Optional[MetricsRegistry] = None) -> QueryResult:
        """Run an already-planned physical operator tree.

        Shared by ``execute_plan`` and ``DataFrame.explain(analyze=True)``,
        which needs the physical plan object itself to annotate.  ``slots``
        restricts execution to a leased subset of the cluster's executor
        slots and ``queued_s`` is admission-queue wait charged against
        client operation deadlines -- both set only by the serving front
        door (:mod:`repro.serving`), and both defaulting to the
        byte-identical direct path.
        """
        trace = trace if trace is not None else NOOP_SPAN
        ctx = ExecContext(self.new_scheduler(trace, slots=slots,
                                             queued_s=queued_s),
                          self.cost, self.conf,
                          trace=trace)
        if extra_metrics is not None:
            ctx.metrics.merge(extra_metrics)
        rdd = physical.execute(ctx)
        job = ctx.run_job(rdd)
        schema = StructType()
        for attr in physical.output:
            schema = schema.add(attr.name, attr.dtype)
        rows = [Row(values, schema) for values in job.rows()]
        seconds = self.cost.driver_overhead_s + ctx.driver_seconds + ctx.job_seconds
        self.clock.advance(seconds)
        if trace.enabled:
            trace.set(rows=len(rows), stages=len(ctx.all_stages))
            trace.finish(sim_seconds=seconds, metrics=ctx.metrics.snapshot())
        return QueryResult(rows, schema, seconds, ctx.metrics, ctx.all_stages,
                           wall_clock_s=ctx.wall_seconds,
                           operator_stats=ctx.operator_stats,
                           trace=trace if trace.enabled else None,
                           reopt_events=ctx.reopt_events)

    def _execute_insert(self, plan) -> QueryResult:
        """Run ``INSERT INTO view SELECT/VALUES`` through the relation."""
        ctx = ExecContext(self.new_scheduler(), self.cost, self.conf)
        stats = self.cbo_stats()
        optimized = optimize(plan.children[0], conf=self.conf, stats=stats,
                             metrics=ctx.metrics if stats is not None else None)
        physical = Planner(self.conf, stats=stats,
                           metrics=ctx.metrics if stats is not None else None
                           ).plan_query(optimized)
        rdd = physical.execute(ctx)
        schema = StructType()
        for attr in physical.output:
            schema = schema.add(attr.name, attr.dtype)
        written = plan.relation.insert(rdd, schema, ctx,
                                       overwrite=plan.overwrite) or 0
        seconds = self.cost.driver_overhead_s + ctx.driver_seconds + ctx.job_seconds
        self.clock.advance(seconds)
        result_schema = StructType().add("rows_written", type_from_name("bigint"))
        return QueryResult([Row((written,), result_schema)], result_schema,
                           seconds, ctx.metrics, ctx.all_stages)

    def execute_write(self, plan: LogicalPlan, format_name: str,
                      options: Dict[str, str], overwrite: bool = False,
                      mode: Optional[str] = None) -> WriteResult:
        if mode is None:
            mode = "overwrite" if overwrite else "append"
        provider = lookup_provider(format_name)
        relation = provider.create_relation(options, self)
        if mode in ("errorifexists", "ignore"):
            exists = getattr(relation, "cluster", None) is not None and \
                relation.cluster.has_table(relation.catalog.qualified_name)
            if exists and mode == "errorifexists":
                raise AnalysisError(
                    f"table {relation.catalog.name!r} already exists "
                    f"(save mode errorifexists)"
                )
            if exists and mode == "ignore":
                return WriteResult(0, 0.0, MetricsRegistry())
        ctx = ExecContext(self.new_scheduler(), self.cost, self.conf)
        stats = self.cbo_stats()
        optimized = optimize(plan, conf=self.conf, stats=stats,
                             metrics=ctx.metrics if stats is not None else None)
        physical = Planner(self.conf, stats=stats,
                           metrics=ctx.metrics if stats is not None else None
                           ).plan_query(optimized)
        rdd = physical.execute(ctx)
        schema = StructType()
        for attr in physical.output:
            schema = schema.add(attr.name, attr.dtype)
        rows_written = relation.insert(rdd, schema, ctx,
                                       overwrite=(mode == "overwrite"))
        seconds = self.cost.driver_overhead_s + ctx.driver_seconds + ctx.job_seconds
        self.clock.advance(seconds)
        return WriteResult(rows_written or 0, seconds, ctx.metrics)


class DataFrameReader:
    """``session.read.format(...).options(...).load()``."""

    def __init__(self, session: SparkSession) -> None:
        self._session = session
        self._format: Optional[str] = None
        self._options: Dict[str, str] = {}

    def format(self, format_name: str) -> "DataFrameReader":
        self._format = format_name
        return self

    def options(self, options: Dict[str, str]) -> "DataFrameReader":
        self._options.update(options)
        return self

    def option(self, key: str, value: str) -> "DataFrameReader":
        self._options[key] = value
        return self

    def load(self):
        from repro.sql.dataframe import DataFrame

        if self._format is None:
            raise AnalysisError("read.format(...) must be set before load()")
        provider = lookup_provider(self._format)
        relation = provider.create_relation(dict(self._options), self._session)
        return DataFrame(self._session, LogicalRelation(relation))

"""Physical operators: resolved logical plans compiled onto engine RDDs.

Each operator's ``execute(ctx)`` returns an RDD of positional tuples aligned
with its ``output`` attributes.  Narrow operators (scan residual filters,
projections) pipeline via ``map_partitions`` inside the upstream task; wide
operators (aggregation, shuffled joins, distinct, intersect) introduce
exchanges whose volume the scheduler meters -- that metering is Figure 5.

Broadcast hash joins run a sub-job to collect the build side at the driver
and charge the redistribution to driver time, mirroring Spark's
``autoBroadcastJoinThreshold`` behaviour; whether a join *can* broadcast
depends on the relation's size estimate, which is exactly where SHC and the
vanilla connector diverge (SHC knows region sizes, a generic scan does not).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import AnalysisError
from repro.common.metrics import MetricsRegistry
from repro.common.tracing import NOOP_SPAN
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import JobResult, TaskScheduler
from repro.engine.shuffle import estimate_size
from repro.sql import expressions as E
from repro.sql import logical as L
from repro.sql.sources import BaseRelation, Filter as SourceFilter


class ExecContext:
    """Per-query execution context: scheduler access + cost accounting.

    Accumulation is guarded by a lock: operators that run sub-jobs (the
    broadcast joins) may be evaluated from a session thread-pool worker
    while other plan fragments of the same query charge driver time, and
    the accounting must stay consistent either way.
    """

    def __init__(self, scheduler: TaskScheduler, cost, conf: Dict[str, object],
                 trace=NOOP_SPAN) -> None:
        self.scheduler = scheduler
        self.cost = cost
        self.conf = conf
        self.metrics = MetricsRegistry()
        self.job_seconds = 0.0
        self.driver_seconds = 0.0
        self.wall_seconds = 0.0
        self.all_stages = []
        #: root span of the query's trace (NOOP_SPAN = tracing disabled)
        self.trace = trace if trace is not None else NOOP_SPAN
        #: per-operator runtime stats keyed by ``PhysicalPlan.op_id``,
        #: recorded by operators as they execute; EXPLAIN ANALYZE renders
        #: these as plan annotations.  Always on: a couple of dict writes
        #: per operator per query.
        self.operator_stats: Dict[int, Dict[str, object]] = {}
        #: adaptive query execution (docs/adaptive.md); off by default so
        #: the non-adaptive path stays byte-identical
        self.adaptive = bool(conf.get("sql.aqe.enabled", False))
        #: re-optimisation decisions taken at stage barriers, in decision
        #: order; EXPLAIN ANALYZE renders these as the adaptive section
        self.reopt_events: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def record_operator(self, op: "PhysicalPlan", **stats: object) -> None:
        """Attach runtime stats to ``op`` for EXPLAIN ANALYZE."""
        with self._lock:
            self.operator_stats.setdefault(op.op_id, {}).update(stats)

    def accumulate_operator(self, op: "PhysicalPlan", **deltas: float) -> None:
        """Numerically accumulate runtime stats onto ``op`` (thread-safe).

        Unlike :meth:`record_operator` this *adds* -- join tasks on several
        partitions each contribute their slice of ``rows_out``.
        """
        with self._lock:
            stats = self.operator_stats.setdefault(op.op_id, {})
            for key, delta in deltas.items():
                stats[key] = stats.get(key, 0) + delta

    def record_reopt(self, op: "PhysicalPlan", rule: str, detail: str) -> None:
        """Log one adaptive re-optimisation decision for ``op``."""
        with self._lock:
            self.reopt_events.append(
                {"op_id": op.op_id, "rule": rule, "detail": detail}
            )
        self.metrics.incr("engine.aqe.reoptimizations", 1)
        if self.trace.enabled:
            self.trace.event("reopt", op=op.op_id, rule=rule, detail=detail)

    def materialize_stage(self, shuffled: RDD):
        """Run map stages up to ``shuffled``'s exchange; fold in their cost.

        The adaptive executor's stage barrier: returns the materialised
        shuffle's :class:`~repro.engine.shuffle.ShuffleRuntimeStats` so the
        caller can re-plan the reduce side from actual sizes.
        """
        stages, metrics, stats = self.scheduler.materialize_shuffle(shuffled)
        with self._lock:
            self.job_seconds += sum(s.duration_s for s in stages)
            self.wall_seconds += sum(s.wall_clock_s for s in stages)
            self.all_stages.extend(stages)
        self.metrics.merge(metrics)
        peak = max((s.output_bytes for s in stages), default=0)
        self.metrics.record_peak("engine.peak_stage_bytes", peak)
        self.metrics.incr("engine.aqe.stages_materialized", len(stages))
        return stats

    def run_job(self, rdd: RDD) -> JobResult:
        result = self.scheduler.run_job(rdd)
        with self._lock:
            self.job_seconds += result.seconds
            self.wall_seconds += result.wall_clock_s
            self.all_stages.extend(result.stages)
        self.metrics.merge(result.metrics)
        return result

    def charge_driver(self, seconds: float, counter: Optional[str] = None,
                      amount: float = 1.0) -> None:
        with self._lock:
            self.driver_seconds += seconds
        if counter is not None:
            self.metrics.incr(counter, amount)

    def shuffle_partitions(self) -> int:
        return int(self.conf.get("sql.shuffle.partitions", 8))


#: process-wide operator id sequence; ids only need to be unique within a
#: query, a global counter trivially guarantees it
_op_ids = itertools.count(1)


class PhysicalPlan:
    """Base class for physical operators.

    Every operator gets a unique ``op_id`` at construction;
    ``ExecContext.operator_stats`` and ``StageInfo.scope`` refer back to it,
    which is how EXPLAIN ANALYZE joins runtime numbers onto plan nodes.
    """

    #: True when ``execute`` returns an RDD of
    #: :class:`~repro.sql.columnar.RecordBatch` instead of row tuples; the
    #: vectorizing planner pass (:mod:`repro.sql.vectorized`) inserts
    #: explicit transitions wherever producer and consumer modes differ
    columnar_output = False

    def __init__(self, output: Sequence[E.Attribute],
                 children: Sequence["PhysicalPlan"] = ()) -> None:
        self.output = list(output)
        self.children = list(children)
        self.op_id = next(_op_ids)

    def execute(self, ctx: ExecContext) -> RDD:
        raise NotImplementedError

    def pretty(self, indent: int = 0,
               annotations: Optional[Dict[int, Sequence[str]]] = None,
               overrides: Optional[Dict[int, str]] = None) -> str:
        """Render the subtree; ``overrides`` swaps an operator's headline.

        EXPLAIN ANALYZE uses overrides to print the *final* adaptive plan:
        the tree shape is the planned one, but operators the runtime
        re-optimised show what actually executed (docs/adaptive.md).
        """
        described = overrides.get(self.op_id) if overrides else None
        head = "  " * indent + (described if described is not None else self.describe())
        lines = [head]
        if annotations:
            for note in annotations.get(self.op_id, ()):
                lines.append("  " * indent + "  +- " + note)
        lines.extend(c.pretty(indent + 1, annotations, overrides)
                     for c in self.children)
        return "\n".join(lines)

    def walk(self) -> Iterable["PhysicalPlan"]:
        """Pre-order traversal of this operator subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def describe(self) -> str:
        return type(self).__name__

    def _record_cbo_estimate(self, ctx: ExecContext) -> None:
        """Surface the planner's row estimate (``cbo_rows``, stamped only
        under ``sql.cbo.enabled``) so EXPLAIN ANALYZE can print estimated
        vs. actual cardinality per join."""
        estimate = getattr(self, "cbo_rows", None)
        if estimate is not None:
            ctx.record_operator(self, cbo_rows=estimate)


def _cpu_charged(rows: Iterable[tuple], ctx_task, per_row: float) -> Iterable[tuple]:
    count = 0
    for row in rows:
        count += 1
        yield row
    ctx_task.ledger.charge(per_row * count, "engine.rows_processed", count)


class DataSourceScanExec(PhysicalPlan):
    """Scan a pluggable relation with pruned columns and offered filters."""

    def __init__(
        self,
        relation: BaseRelation,
        output: Sequence[E.Attribute],
        pushed_filters: Sequence[SourceFilter],
        residual: Optional[E.Expression],
        relation_name: str = "",
        handled_filters: Optional[Sequence[SourceFilter]] = None,
    ) -> None:
        super().__init__(output)
        self.relation = relation
        self.pushed_filters = list(pushed_filters)
        self.residual = residual
        self.relation_name = relation_name
        #: the subset of ``pushed_filters`` the relation actually handles
        #: (offered minus ``unhandled_filters``); what EXPLAIN ANALYZE
        #: reports as "pushed", since unhandled offers run again as residual
        self.handled_filters = (list(handled_filters)
                                if handled_filters is not None
                                else list(pushed_filters))
        #: best-effort source filters injected after planning (the semi-join
        #: reduction's build-key IN list); advisory only -- exactness is
        #: enforced engine-side by whoever injected them
        self.runtime_filters: List[SourceFilter] = []

    def execute_source(self, ctx: ExecContext) -> RDD:
        """Build the relation scan and record its stats -- residual not applied.

        Split out of :meth:`execute` so the vectorized scan
        (:class:`~repro.sql.vectorized.VectorScanExec`) can reuse the exact
        pushdown/pruning/accounting path while applying the residual filter
        batch-at-a-time instead of row-at-a-time.
        """
        required = [a.name for a in self.output]
        span = ctx.trace.child(
            f"scan-plan:{self.relation_name or type(self.relation).__name__}",
            "scan-plan", order=(1, self.op_id), op=self.op_id,
        )
        offered = (self.pushed_filters + self.runtime_filters
                   if self.runtime_filters else self.pushed_filters)
        rdd = self.relation.build_scan(required, offered)
        #: stamp the scan operator onto the RDD so the scheduler can
        #: attribute downstream stages (and their locality) back to this
        #: plan node -- see TaskScheduler._stage_scope
        rdd.scope = self.op_id
        residual_count = (len(E.split_conjuncts(self.residual))
                          if self.residual is not None else 0)
        stats: Dict[str, object] = {
            "relation": self.relation_name or type(self.relation).__name__,
            "filters_pushed": len(self.handled_filters),
            "filters_residual": residual_count,
        }
        if self.runtime_filters:
            stats["filters_runtime"] = len(self.runtime_filters)
        # counters never charge simulated seconds, so cost totals are
        # unchanged whether or not anyone is looking
        ctx.metrics.incr("shc.filters_pushed", len(self.handled_filters))
        ctx.metrics.incr("shc.filters_residual", residual_count)
        scan_parts = getattr(rdd, "scan_partitions", None)
        if scan_parts is not None:
            scanned = sum(len(p.work) for p in scan_parts)
            total = getattr(rdd, "regions_total", scanned)
            stats.update(regions_total=total, regions_scanned=scanned,
                         regions_pruned=max(0, total - scanned),
                         partitions=len(scan_parts))
            ctx.metrics.incr("shc.regions_scanned", scanned)
            ctx.metrics.incr("shc.regions_pruned", max(0, total - scanned))
        routing = getattr(rdd, "replica_routing", None)
        if routing is not None:
            # replica-aware routing engaged (docs/replication.md): surface
            # the decisions in EXPLAIN ANALYZE and the per-query metrics
            stats.update(
                replica_scans=routing.get("replica_scans", 0),
                replica_split_regions=routing.get("split_regions", 0),
                replica_stale_excluded=routing.get("stale_excluded", 0),
            )
            fallbacks = routing.get("primary_fallbacks", 0)
            if fallbacks:
                stats["replica_primary_fallbacks"] = fallbacks
                ctx.metrics.incr("hbase.replica.primary_fallbacks", fallbacks)
        if getattr(self, "replica_reads", False):
            stats["replica_reads"] = True
        ctx.record_operator(self, **stats)
        if span.enabled:
            span.set(**stats)
            span.finish()
        return rdd

    def execute(self, ctx: ExecContext) -> RDD:
        rdd = self.execute_source(ctx)
        if self.residual is not None:
            bound = E.bind_expression(self.residual, self.output)
            per_row = ctx.cost.row_cpu_s

            def apply_residual(rows, task_ctx):
                kept = (r for r in rows if bound.eval(r) is True)
                return _cpu_charged(kept, task_ctx, per_row)

            rdd = rdd.map_partitions(apply_residual)
        return rdd

    def describe(self) -> str:
        return (
            f"DataSourceScan({self.relation_name or type(self.relation).__name__}, "
            f"columns={[a.name for a in self.output]}, "
            f"pushed={self.pushed_filters!r}, residual={self.residual!r})"
        )


class CachedRelationExec(PhysicalPlan):
    """Serve a fully-materialised partition-cache entry, skipping its subtree.

    The planner substitutes this leaf for any persisted subtree whose every
    partition is already published -- the in-memory relation of Spark's
    ``InMemoryTableScanExec``.  Rows come from an eviction-safe snapshot, so
    the job cannot lose partitions to concurrent cache pressure mid-run.
    """

    def __init__(self, output: Sequence[E.Attribute], fingerprint: str,
                 snapshot: Dict[int, object], description: str = "") -> None:
        super().__init__(output)
        self.fingerprint = fingerprint
        self.snapshot = snapshot
        self.description = description

    def execute(self, ctx: ExecContext) -> RDD:
        from repro.engine.cachemanager import CachedRDD

        span = ctx.trace.child(
            f"cached-scan:{self.description or self.fingerprint}",
            "scan-plan", order=(1, self.op_id), op=self.op_id,
        )
        rdd = CachedRDD(self.fingerprint, self.snapshot)
        rdd.scope = self.op_id
        nbytes = sum(p.nbytes for p in self.snapshot.values())
        stats: Dict[str, object] = {
            "relation": self.description or "cached",
            "cached_partitions": len(self.snapshot),
            "cached_bytes": nbytes,
        }
        ctx.record_operator(self, **stats)
        if span.enabled:
            span.set(**stats)
            span.finish()
        return rdd

    def describe(self) -> str:
        return (f"CachedRelation({self.description or self.fingerprint}, "
                f"partitions={len(self.snapshot)})")


class CacheMaterializeExec(PhysicalPlan):
    """Write-through wrapper filling the partition cache as its child runs.

    Used for persisted plans whose cache entry is absent or partial: each
    partition serves from cache when published and otherwise computes the
    child lineage, publishing atomically on completion (attempt-safe -- see
    :mod:`repro.engine.cachemanager`).
    """

    def __init__(self, fingerprint: str, manager, child: PhysicalPlan,
                 description: str = "") -> None:
        super().__init__(child.output, [child])
        self.fingerprint = fingerprint
        self.manager = manager
        self.description = description

    def execute(self, ctx: ExecContext) -> RDD:
        from repro.engine.cachemanager import CachingRDD

        rdd = CachingRDD(self.children[0].execute(ctx), self.manager,
                         self.fingerprint)
        ctx.record_operator(self, cached_fingerprint=self.fingerprint,
                            cached_bytes=self.manager.cached_bytes(self.fingerprint))
        return rdd

    def describe(self) -> str:
        return f"CacheMaterialize({self.description or self.fingerprint})"


class LocalScanExec(PhysicalPlan):
    """Driver-local rows distributed over a few partitions."""

    def __init__(self, output: Sequence[E.Attribute], rows: Sequence[tuple],
                 num_partitions: int = 2) -> None:
        super().__init__(output)
        self.rows = list(rows)
        self.num_partitions = num_partitions

    def execute(self, ctx: ExecContext) -> RDD:
        return ParallelCollectionRDD(self.rows, self.num_partitions)

    def describe(self) -> str:
        return f"LocalScan({len(self.rows)} rows)"


class FilterExec(PhysicalPlan):
    """Engine-side filter (the "second layer" of section VI.A.3)."""

    def __init__(self, condition: E.Expression, child: PhysicalPlan) -> None:
        super().__init__(child.output, [child])
        self.condition = condition

    def execute(self, ctx: ExecContext) -> RDD:
        bound = E.bind_expression(self.condition, self.children[0].output)
        per_row = ctx.cost.row_cpu_s

        def apply(rows, task_ctx):
            kept = (r for r in rows if bound.eval(r) is True)
            return _cpu_charged(kept, task_ctx, per_row)

        return self.children[0].execute(ctx).map_partitions(apply)

    def describe(self) -> str:
        return f"Filter({self.condition!r})"


class ProjectExec(PhysicalPlan):
    """Row-by-row expression evaluation into a new tuple layout."""

    def __init__(self, project_list: Sequence[E.Expression], child: PhysicalPlan) -> None:
        output = []
        for item in project_list:
            if isinstance(item, E.Alias):
                output.append(item.to_attribute())
            elif isinstance(item, E.Attribute):
                output.append(item)
            else:
                raise AnalysisError(f"unnamed projection {item!r}")
        super().__init__(output, [child])
        self.project_list = list(project_list)

    def execute(self, ctx: ExecContext) -> RDD:
        bound = [
            E.bind_expression(
                item.child if isinstance(item, E.Alias) else item,
                self.children[0].output,
            )
            for item in self.project_list
        ]
        per_row = ctx.cost.row_cpu_s

        def apply(rows, task_ctx):
            projected = (tuple(b.eval(r) for b in bound) for r in rows)
            return _cpu_charged(projected, task_ctx, per_row)

        return self.children[0].execute(ctx).map_partitions(apply)

    def describe(self) -> str:
        return f"Project({[a.name for a in self.output]})"


# -- aggregation -----------------------------------------------------------------

class _KeyRef(E.Expression):
    """Evaluates a grouping value out of the (key, finished_aggs) pair."""

    def __init__(self, position: int, dtype) -> None:
        self.position = position
        self.dtype = dtype

    def eval(self, row: tuple) -> object:
        return row[0][self.position]

    def data_type(self):
        return self.dtype

    def with_new_children(self, children):
        return self


class _AggRef(E.Expression):
    """Evaluates a finished aggregate out of the (key, finished_aggs) pair."""

    def __init__(self, position: int, dtype) -> None:
        self.position = position
        self.dtype = dtype

    def eval(self, row: tuple) -> object:
        return row[1][self.position]

    def data_type(self):
        return self.dtype

    def with_new_children(self, children):
        return self


class HashAggregateExec(PhysicalPlan):
    """Two-phase hash aggregation (partial -> shuffle by key -> final)."""

    def __init__(self, groupings: Sequence[E.Expression],
                 aggregate_list: Sequence[E.Expression], child: PhysicalPlan) -> None:
        output = []
        for item in aggregate_list:
            if isinstance(item, E.Alias):
                output.append(item.to_attribute())
            elif isinstance(item, E.Attribute):
                output.append(item)
            else:
                raise AnalysisError(f"unnamed aggregate output {item!r}")
        super().__init__(output, [child])
        self.groupings = list(groupings)
        self.aggregate_list = list(aggregate_list)

    def _agg_setup(self):
        """Bind groupings, aggregate instances and result expressions.

        Shared with the vectorized subclass
        (:class:`~repro.sql.vectorized.VectorHashAggregateExec`), which only
        swaps the partial-build closure: accumulator protocol, merge and
        result evaluation stay this exact code on both paths.
        """
        child_attrs = self.children[0].output
        bound_groupings = [E.bind_expression(g, child_attrs) for g in self.groupings]

        # collect the distinct aggregate function instances, in plan order
        agg_instances: List[E.AggregateExpression] = []
        seen_ids: set = set()
        for item in self.aggregate_list:
            expr = item.child if isinstance(item, E.Alias) else item
            for node in expr.collect(lambda e: isinstance(e, E.AggregateExpression)):
                if id(node) not in seen_ids:
                    seen_ids.add(id(node))
                    agg_instances.append(node)
        bound_aggs = [
            agg.with_new_children(
                (E.bind_expression(agg.children[0], child_attrs),)
            ) if agg.children else agg
            for agg in agg_instances
        ]

        # map grouping attr ids to key positions for result evaluation
        key_position: Dict[int, int] = {}
        for i, g in enumerate(self.groupings):
            if isinstance(g, E.Attribute):
                key_position[g.attr_id] = i
        agg_position = {id(agg): i for i, agg in enumerate(agg_instances)}

        result_exprs = [
            self._result_expr(item, key_position, agg_position, self.groupings)
            for item in self.aggregate_list
        ]
        return bound_groupings, bound_aggs, result_exprs

    def _make_partial(self, ctx: ExecContext, bound_groupings, bound_aggs):
        """The map-side build closure: rows in, ``(key, accs)`` pairs out."""
        per_row = ctx.cost.row_cpu_s

        def partial(rows, task_ctx):
            table: Dict[tuple, list] = {}
            count = 0
            for row in rows:
                count += 1
                key = tuple(g.eval(row) for g in bound_groupings)
                accs = table.get(key)
                if accs is None:
                    accs = [a.init_acc() for a in bound_aggs]
                    table[key] = accs
                for i, agg in enumerate(bound_aggs):
                    accs[i] = agg.update(accs[i], row)
            task_ctx.ledger.charge(per_row * count, "engine.rows_processed", count)
            return iter(table.items())

        return partial

    def execute(self, ctx: ExecContext) -> RDD:
        child = self.children[0]
        bound_groupings, bound_aggs, result_exprs = self._agg_setup()
        per_row = ctx.cost.row_cpu_s
        global_agg = not self.groupings
        partial = self._make_partial(ctx, bound_groupings, bound_aggs)

        def final(pairs, task_ctx):
            table: Dict[tuple, list] = {}
            for key, accs in pairs:
                merged = table.get(key)
                if merged is None:
                    table[key] = list(accs)
                else:
                    for i, agg in enumerate(bound_aggs):
                        merged[i] = agg.merge(merged[i], accs[i])
            if not table and global_agg:
                table[()] = [a.init_acc() for a in bound_aggs]
            out = []
            for key, accs in table.items():
                finished = tuple(
                    agg.finish(accs[i]) for i, agg in enumerate(bound_aggs)
                )
                env = (key, finished)
                out.append(tuple(expr.eval(env) for expr in result_exprs))
            task_ctx.ledger.charge(per_row * len(out), "engine.rows_processed", len(out))
            return iter(out)

        partial_rdd = child.execute(ctx).map_partitions(partial)
        num_parts = 1 if global_agg else ctx.shuffle_partitions()
        if ctx.adaptive and num_parts > 1:
            from repro.sql.adaptive import adaptive_exchange

            return adaptive_exchange(ctx, partial_rdd, num_parts,
                                     lambda kv: kv[0], final, self)
        return partial_rdd.partition_by(num_parts, key_fn=lambda kv: kv[0],
                                        post_shuffle=final)

    def _result_expr(self, item: E.Expression, key_position: Dict[int, int],
                     agg_position: Dict[int, int],
                     groupings: Sequence[E.Expression]) -> E.Expression:
        expr = item.child if isinstance(item, E.Alias) else item

        # AggregateExpression children are bound separately, so the rewrite
        # is top-down and stops at aggregate / grouping-expression boundaries
        def safe_transform(node: E.Expression) -> E.Expression:
            if isinstance(node, E.AggregateExpression):
                return _AggRef(agg_position[id(node)], node.data_type())
            # a subtree that IS one of the grouping expressions evaluates to
            # that key component (covers expression groupings like "k % 2")
            for position, grouping in enumerate(groupings):
                if E.same_expression(node, grouping):
                    return _KeyRef(position, grouping.data_type()
                                   if not isinstance(grouping, E.Attribute)
                                   else grouping.dtype)
            if isinstance(node, E.Attribute):
                position = key_position.get(node.attr_id)
                if position is None:
                    raise AnalysisError(
                        f"aggregate output {item!r} references non-grouping "
                        f"column {node!r}"
                    )
                return _KeyRef(position, node.dtype)
            if not node.children:
                return node
            return node.with_new_children([safe_transform(c) for c in node.children])

        return safe_transform(expr)

    def describe(self) -> str:
        return f"HashAggregate(keys={self.groupings!r}, out={[a.name for a in self.output]})"


# -- joins ------------------------------------------------------------------------

def _combine_rows(left: Optional[tuple], right: Optional[tuple],
                  left_width: int, right_width: int) -> tuple:
    left_part = left if left is not None else (None,) * left_width
    right_part = right if right is not None else (None,) * right_width
    return tuple(left_part) + tuple(right_part)


def _join_output(left: PhysicalPlan, right: PhysicalPlan, how: str):
    if how in ("semi", "anti"):
        return list(left.output)
    return list(left.output) + list(right.output)


def _make_join_reducer(how: str, left_width: int, right_width: int,
                       residual_bound: Optional[E.Expression], per_row: float,
                       on_output: Callable[[int, int], None]):
    """Build the reduce-side closure of a shuffled hash join.

    Consumes ``(key, side, row)`` entries for one reduce partition (side 1
    builds, side 0 streams), emits joined rows, and surfaces its output
    through the ``engine.join.rows_out`` / ``engine.join.bytes_out``
    counters plus the ``on_output(rows, bytes)`` callback -- that is how
    EXPLAIN ANALYZE join rows reconcile with the ledger.  Shared between
    :class:`ShuffledHashJoinExec` and the adaptive executor so both paths
    join (and count) identically.
    """

    def join_partition(entries, task_ctx):
        build: Dict[tuple, List[tuple]] = {}
        stream: List[Tuple[tuple, tuple]] = []
        for key, side, row in entries:
            if side == 1:
                build.setdefault(key, []).append(row)
            else:
                stream.append((key, row))
        out = []
        for key, left_row in stream:
            if None in key:
                matches: List[tuple] = []
            else:
                matches = build.get(key, [])
            emitted = False
            for right_row in matches:
                combined = _combine_rows(left_row, right_row, left_width, right_width)
                if residual_bound is None or residual_bound.eval(combined) is True:
                    emitted = True
                    if how in ("semi", "anti"):
                        break
                    out.append(combined)
            if how == "left" and not emitted:
                out.append(_combine_rows(left_row, None, left_width, right_width))
            elif how == "semi" and emitted:
                out.append(left_row)
            elif how == "anti" and not emitted:
                out.append(left_row)
        nbytes = sum(estimate_size(r) for r in out)
        task_ctx.ledger.count("engine.join.rows_out", len(out))
        task_ctx.ledger.count("engine.join.bytes_out", nbytes)
        on_output(len(out), nbytes)
        task_ctx.ledger.charge(per_row * len(out), "engine.rows_processed", len(out))
        return iter(out)

    return join_partition


def _make_keyed_probe(table: Dict[tuple, List[tuple]], how: str,
                      left_width: int, right_width: int,
                      residual_bound: Optional[E.Expression], per_row: float,
                      on_output: Callable[[int, int], None]):
    """Probe a broadcast ``table`` with pre-keyed ``(key, row)`` pairs.

    The join body shared by the row probe (:func:`_make_broadcast_probe`)
    and the vectorized probe, which computes its keys batch-at-a-time
    (:class:`~repro.sql.vectorized.VectorBroadcastHashJoinExec`); both paths
    therefore match, filter and count output identically.
    """

    def probe_keyed(keyed_rows, task_ctx):
        out_count = 0
        out_bytes = 0
        for key, left_row in keyed_rows:
            matches = table.get(key, []) if None not in key else []
            emitted = False
            for right_row in matches:
                combined = _combine_rows(left_row, right_row, left_width, right_width)
                if residual_bound is None or residual_bound.eval(combined) is True:
                    emitted = True
                    if how in ("semi", "anti"):
                        break
                    out_count += 1
                    out_bytes += estimate_size(combined)
                    yield combined
            if how == "left" and not emitted:
                filled = _combine_rows(left_row, None, left_width, right_width)
                out_count += 1
                out_bytes += estimate_size(filled)
                yield filled
            elif how == "semi" and emitted:
                out_count += 1
                out_bytes += estimate_size(left_row)
                yield left_row
            elif how == "anti" and not emitted:
                out_count += 1
                out_bytes += estimate_size(left_row)
                yield left_row
        task_ctx.ledger.count("engine.join.rows_out", out_count)
        task_ctx.ledger.count("engine.join.bytes_out", out_bytes)
        on_output(out_count, out_bytes)
        task_ctx.ledger.charge(per_row * out_count, "engine.rows_processed", out_count)

    return probe_keyed


def _make_broadcast_probe(table: Dict[tuple, List[tuple]],
                          bound_keys: Sequence[E.Expression], how: str,
                          left_width: int, right_width: int,
                          residual_bound: Optional[E.Expression], per_row: float,
                          on_output: Callable[[int, int], None]):
    """Build the probe-side closure of a broadcast hash join.

    Streams the big side against the broadcast ``table``; like
    :func:`_make_join_reducer` it counts its output rows/bytes so join
    volume is observable regardless of strategy.  Shared between
    :class:`BroadcastHashJoinExec` and the adaptive executor's
    broadcast-conversion rule.
    """
    probe_keyed = _make_keyed_probe(table, how, left_width, right_width,
                                    residual_bound, per_row, on_output)

    def probe(rows, task_ctx):
        keyed = ((tuple(k.eval(r) for k in bound_keys), r) for r in rows)
        return probe_keyed(keyed, task_ctx)

    return probe


class ShuffledHashJoinExec(PhysicalPlan):
    """Equi-join where both sides are shuffled by the join key."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 left_keys: Sequence[E.Expression], right_keys: Sequence[E.Expression],
                 how: str, residual: Optional[E.Expression]) -> None:
        super().__init__(_join_output(left, right, how), [left, right])
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.how = how
        self.residual = residual

    def execute(self, ctx: ExecContext) -> RDD:
        self._record_cbo_estimate(ctx)
        left, right = self.children
        bound_left = [E.bind_expression(k, left.output) for k in self.left_keys]
        bound_right = [E.bind_expression(k, right.output) for k in self.right_keys]
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        how = self.how
        per_row = ctx.cost.row_cpu_s

        def tag_left(rows, task_ctx):
            tagged = ((tuple(k.eval(r) for k in bound_left), 0, r) for r in rows)
            return _cpu_charged(tagged, task_ctx, per_row)

        def tag_right(rows, task_ctx):
            tagged = ((tuple(k.eval(r) for k in bound_right), 1, r) for r in rows)
            return _cpu_charged(tagged, task_ctx, per_row)

        join_partition = _make_join_reducer(
            how, left_width, right_width, residual_bound, per_row,
            lambda rows_out, bytes_out: ctx.accumulate_operator(
                self, rows_out=rows_out, bytes_out=bytes_out),
        )

        tagged = left.execute(ctx).map_partitions(tag_left).union(
            right.execute(ctx).map_partitions(tag_right)
        )
        shuffled = tagged.partition_by(
            ctx.shuffle_partitions(), key_fn=lambda e: e[0], post_shuffle=join_partition
        )
        # the reduce stage's lineage stops at this exchange, so stamping the
        # join operator here attributes that stage to the join in EXPLAIN
        # ANALYZE (like DataSourceScanExec stamps scan stages)
        shuffled.scope = self.op_id
        return shuffled

    def describe(self) -> str:
        return f"ShuffledHashJoin({self.how}, {self.left_keys!r} = {self.right_keys!r})"


class BroadcastHashJoinExec(PhysicalPlan):
    """Equi-join broadcasting the (small) right side to every executor."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 left_keys: Sequence[E.Expression], right_keys: Sequence[E.Expression],
                 how: str, residual: Optional[E.Expression]) -> None:
        super().__init__(_join_output(left, right, how), [left, right])
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.how = how
        self.residual = residual

    def _broadcast_build(self, ctx: ExecContext) -> Dict[tuple, List[tuple]]:
        """Collect the (small) right side as a driver sub-job and hash it.

        Shared with the vectorized variant: broadcast volume accounting and
        table layout are identical whichever probe consumes the table.
        """
        right = self.children[1]
        bound_right = [E.bind_expression(k, right.output) for k in self.right_keys]
        build_rows = ctx.run_job(right.execute(ctx)).rows()
        build_bytes = sum(estimate_size(r) for r in build_rows)
        executors = len(ctx.scheduler.cluster.executors)
        ctx.charge_driver(
            build_bytes * executors / ctx.cost.network_bytes_per_sec,
            "engine.broadcast_bytes", build_bytes * executors,
        )
        table: Dict[tuple, List[tuple]] = {}
        for row in build_rows:
            key = tuple(k.eval(row) for k in bound_right)
            if None not in key:
                table.setdefault(key, []).append(row)
        return table

    def execute(self, ctx: ExecContext) -> RDD:
        self._record_cbo_estimate(ctx)
        left, right = self.children
        bound_left = [E.bind_expression(k, left.output) for k in self.left_keys]
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        how = self.how
        per_row = ctx.cost.row_cpu_s
        table = self._broadcast_build(ctx)

        probe = _make_broadcast_probe(
            table, bound_left, how, left_width, right_width, residual_bound,
            per_row,
            lambda rows_out, bytes_out: ctx.accumulate_operator(
                self, rows_out=rows_out, bytes_out=bytes_out),
        )
        # no scope stamp: the probe pipelines inside the big side's scan
        # stage, whose scope already belongs to the scan operator
        return left.execute(ctx).map_partitions(probe)

    def describe(self) -> str:
        return f"BroadcastHashJoin({self.how}, {self.left_keys!r} = {self.right_keys!r})"


class SemiJoinReducedJoinExec(ShuffledHashJoinExec):
    """Shuffled equi-join with a semi-join reduction on the probe side.

    Chosen by the cost-based planner (docs/optimizer.md) when statistics say
    the build side is small and its join keys prune most probe rows.  The
    build side runs once as a driver sub-job; its distinct key tuples are
    broadcast (charged like a broadcast build) and applied in three places:

    1. as best-effort ``In`` source filters on the probe's scan -- for an
       HBase row-key column this prunes whole regions before any I/O;
    2. as an exact engine-side membership pre-filter, so rows the source
       could not eliminate never enter the shuffle;
    3. the already-collected build rows re-enter the join as a driver-local
       collection, so the build side is neither scanned nor shuffled twice.

    If the build yields more than ``max_keys`` distinct tuples the reduction
    aborts at runtime (``sql.cbo.semijoins_rejected``) and the operator
    degrades to the plain shuffled join it subclasses.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 left_keys: Sequence[E.Expression], right_keys: Sequence[E.Expression],
                 how: str, residual: Optional[E.Expression],
                 max_keys: int = 16384) -> None:
        super().__init__(left, right, left_keys, right_keys, how, residual)
        self.max_keys = max_keys

    def execute(self, ctx: ExecContext) -> RDD:
        self._record_cbo_estimate(ctx)
        left, right = self.children
        bound_left = [E.bind_expression(k, left.output) for k in self.left_keys]
        bound_right = [E.bind_expression(k, right.output) for k in self.right_keys]
        per_row = ctx.cost.row_cpu_s

        # collect the (small) build side once at the driver
        build_rows = list(ctx.run_job(right.execute(ctx)).rows())
        keys = set()
        for row in build_rows:
            key = tuple(k.eval(row) for k in bound_right)
            if None not in key:
                keys.add(key)

        if len(keys) > self.max_keys:
            # runtime abort: stats undercounted the build's distinct keys
            ctx.metrics.incr("sql.cbo.semijoins_rejected", 1)
            ctx.record_operator(
                self, semijoin=f"aborted ({len(keys)} keys > max {self.max_keys})"
            )
            probe = left.execute(ctx)
        else:
            ctx.metrics.incr("sql.cbo.semijoin.keys", len(keys))
            ctx.record_operator(self, semijoin_keys=len(keys))
            key_bytes = sum(estimate_size(k) for k in keys)
            executors = len(ctx.scheduler.cluster.executors)
            ctx.charge_driver(
                key_bytes * executors / ctx.cost.network_bytes_per_sec,
                "engine.broadcast_bytes", key_bytes * executors,
            )
            pushed = self._push_runtime_filters(left, keys)
            if pushed:
                ctx.record_operator(self, semijoin_scan_filters=pushed)
            probe = left.execute(ctx).map_partitions(
                self._make_prefilter(ctx, bound_left, keys, per_row)
            )

        # from here on: the plain shuffled-join body over the reduced probe,
        # with the already-collected build rows re-parallelised
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        how = self.how

        def tag_left(rows, task_ctx):
            tagged = ((tuple(k.eval(r) for k in bound_left), 0, r) for r in rows)
            return _cpu_charged(tagged, task_ctx, per_row)

        def tag_right(rows, task_ctx):
            tagged = ((tuple(k.eval(r) for k in bound_right), 1, r) for r in rows)
            return _cpu_charged(tagged, task_ctx, per_row)

        join_partition = _make_join_reducer(
            how, left_width, right_width, residual_bound, per_row,
            lambda rows_out, bytes_out: ctx.accumulate_operator(
                self, rows_out=rows_out, bytes_out=bytes_out),
        )
        build_rdd = ParallelCollectionRDD(
            build_rows, min(ctx.shuffle_partitions(), max(1, len(build_rows)))
        )
        tagged = probe.map_partitions(tag_left).union(
            build_rdd.map_partitions(tag_right)
        )
        shuffled = tagged.partition_by(
            ctx.shuffle_partitions(), key_fn=lambda e: e[0],
            post_shuffle=join_partition,
        )
        shuffled.scope = self.op_id
        return shuffled

    def _make_prefilter(self, ctx: ExecContext,
                        bound_left: Sequence[E.Expression], keys: set,
                        per_row: float):
        """Exact membership filter the probe pays per row seen."""

        def prefilter(rows, task_ctx):
            kept = []
            seen = 0
            for row in rows:
                seen += 1
                if tuple(k.eval(row) for k in bound_left) in keys:
                    kept.append(row)
            task_ctx.ledger.count("sql.cbo.semijoin.rows_pruned", seen - len(kept))
            task_ctx.ledger.charge(per_row * seen, "engine.rows_processed", seen)
            ctx.accumulate_operator(self, semijoin_rows_in=seen,
                                    semijoin_rows_kept=len(kept))
            return iter(kept)

        return prefilter

    def _push_runtime_filters(self, left: PhysicalPlan, keys: set) -> int:
        """Attach per-column ``In`` source filters to the probe's single scan.

        Only bare-attribute keys on columns the scan outputs qualify; with
        zero or several scans under the probe nothing is pushed (the exact
        engine-side pre-filter still applies either way).
        """
        from repro.sql import sources as S

        scans = [op for op in left.walk() if isinstance(op, DataSourceScanExec)]
        if len(scans) != 1:
            return 0
        scan = scans[0]
        scan_ids = {a.attr_id for a in scan.output}
        pushed = 0
        for i, key in enumerate(self.left_keys):
            if not isinstance(key, E.Attribute) or key.attr_id not in scan_ids:
                continue
            values = {k[i] for k in keys}
            try:
                ordered = sorted(values)
            except TypeError:
                ordered = sorted(values, key=repr)
            scan.runtime_filters.append(S.In(key.name, tuple(ordered)))
            pushed += 1
        return pushed

    def describe(self) -> str:
        return (f"SemiJoinReducedJoin({self.how}, "
                f"{self.left_keys!r} = {self.right_keys!r})")


class BroadcastNestedLoopJoinExec(PhysicalPlan):
    """Fallback join without equi keys: broadcast right, test the condition."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, how: str,
                 condition: Optional[E.Expression]) -> None:
        super().__init__(_join_output(left, right, how), [left, right])
        self.how = how
        self.condition = condition

    def execute(self, ctx: ExecContext) -> RDD:
        left, right = self.children
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        bound = (
            E.bind_expression(self.condition, combined_attrs)
            if self.condition is not None else None
        )
        how = self.how
        build_rows = ctx.run_job(right.execute(ctx)).rows()
        build_bytes = sum(estimate_size(r) for r in build_rows)
        executors = len(ctx.scheduler.cluster.executors)
        ctx.charge_driver(
            build_bytes * executors / ctx.cost.network_bytes_per_sec,
            "engine.broadcast_bytes", build_bytes * executors,
        )
        per_row = ctx.cost.row_cpu_s

        def probe(rows, task_ctx):
            count = 0
            for left_row in rows:
                emitted = False
                for right_row in build_rows:
                    combined = _combine_rows(left_row, right_row, left_width, right_width)
                    count += 1
                    if bound is None or bound.eval(combined) is True:
                        emitted = True
                        if how in ("semi", "anti"):
                            break
                        yield combined
                if how == "left" and not emitted:
                    yield _combine_rows(left_row, None, left_width, right_width)
                elif how == "semi" and emitted:
                    yield left_row
                elif how == "anti" and not emitted:
                    yield left_row
            task_ctx.ledger.charge(per_row * count, "engine.rows_processed", count)

        return left.execute(ctx).map_partitions(probe)


# -- ordering / limiting / set ops --------------------------------------------------

def _sort_key(orders_bound: Sequence[Tuple[E.Expression, bool]]) -> Callable:
    def key(row: tuple):
        parts = []
        for expr, ascending in orders_bound:
            value = expr.eval(row)
            # NULLS FIRST on ascending, LAST on descending (Spark default)
            null_rank = value is None
            rank = (null_rank, value) if value is not None else (null_rank, 0)
            parts.append(_Reversed(rank) if not ascending else rank)
        return tuple(parts)

    return key


class _Reversed:
    """Inverts comparison for descending sort terms."""

    __slots__ = ("inner",)

    def __init__(self, inner) -> None:
        self.inner = inner

    def __lt__(self, other: "_Reversed") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.inner == other.inner


class SortExec(PhysicalPlan):
    """Total ordering: gather to one partition, then sort."""

    def __init__(self, orders: Sequence[L.SortOrder], child: PhysicalPlan) -> None:
        super().__init__(child.output, [child])
        self.orders = list(orders)

    def execute(self, ctx: ExecContext) -> RDD:
        bound = [
            (E.bind_expression(o.expression, self.children[0].output), o.ascending)
            for o in self.orders
        ]
        key = _sort_key(bound)
        per_row = ctx.cost.row_cpu_s

        def do_sort(rows, task_ctx):
            data = sorted(rows, key=key)
            task_ctx.ledger.charge(per_row * len(data), "engine.rows_processed", len(data))
            return iter(data)

        gathered = self.children[0].execute(ctx).coalesce_to_driver()
        return gathered.map_partitions(do_sort)


class LimitExec(PhysicalPlan):
    """Per-partition limit followed by a single-partition global limit."""

    def __init__(self, n: int, child: PhysicalPlan) -> None:
        super().__init__(child.output, [child])
        self.n = n

    def execute(self, ctx: ExecContext) -> RDD:
        n = self.n

        def local_limit(rows, task_ctx):
            out = []
            for row in rows:
                if len(out) >= n:
                    break
                out.append(row)
            return iter(out)

        def global_limit(rows, task_ctx):
            return local_limit(rows, task_ctx)

        limited = self.children[0].execute(ctx).map_partitions(local_limit)
        return limited.coalesce_to_driver().map_partitions(global_limit)

    def describe(self) -> str:
        return f"Limit({self.n})"


class UnionExec(PhysicalPlan):
    """Bag union (UNION ALL): concatenates partitions, no exchange.

    Each side streams through a counting pass-through, so EXPLAIN ANALYZE
    can reconcile the operator's output with ``engine.setop.rows_out``
    exactly like joins reconcile with ``engine.join.rows_out`` (set
    operators were left behind when joins gained this accounting).
    Counters never charge simulated seconds.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan) -> None:
        super().__init__(left.output, [left, right])

    def execute(self, ctx: ExecContext) -> RDD:
        def count_side(rows, task_ctx):
            out = 0
            for row in rows:
                out += 1
                yield row
            task_ctx.ledger.count("engine.setop.rows_out", out)
            ctx.accumulate_operator(self, setop_rows_out=out)

        return self.children[0].execute(ctx).map_partitions(count_side).union(
            self.children[1].execute(ctx).map_partitions(count_side)
        )


class DistinctExec(PhysicalPlan):
    """Whole-row dedup through a hash exchange."""

    def __init__(self, child: PhysicalPlan) -> None:
        super().__init__(child.output, [child])

    def execute(self, ctx: ExecContext) -> RDD:
        def dedupe(rows, task_ctx):
            seen = set()
            out = 0
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    out += 1
                    yield row
            task_ctx.ledger.count("engine.setop.rows_out", out)
            ctx.accumulate_operator(self, setop_rows_out=out)

        child_rdd = self.children[0].execute(ctx)
        num_parts = ctx.shuffle_partitions()
        if ctx.adaptive and num_parts > 1:
            from repro.sql.adaptive import adaptive_exchange

            return adaptive_exchange(ctx, child_rdd, num_parts,
                                     lambda r: r, dedupe, self)
        shuffled = child_rdd.partition_by(
            num_parts, key_fn=lambda r: r, post_shuffle=dedupe
        )
        # stamp the reduce stage onto this operator (like joins do), so
        # StageInfo.setop_rows_out attributes back to the plan node
        shuffled.scope = self.op_id
        return shuffled


class IntersectExec(PhysicalPlan):
    """Set intersection (distinct) via a shuffle on the whole row."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan) -> None:
        super().__init__(left.output, [left, right])

    def execute(self, ctx: ExecContext) -> RDD:
        def tag(side: int):
            def fn(rows, task_ctx):
                return ((row, side) for row in rows)

            return fn

        def intersect(pairs, task_ctx):
            left_seen: set = set()
            right_seen: set = set()
            for row, side in pairs:
                (left_seen if side == 0 else right_seen).add(row)
            both = left_seen & right_seen
            task_ctx.ledger.count("engine.setop.rows_out", len(both))
            ctx.accumulate_operator(self, setop_rows_out=len(both))
            return iter(both)

        tagged = self.children[0].execute(ctx).map_partitions(tag(0)).union(
            self.children[1].execute(ctx).map_partitions(tag(1))
        )
        num_parts = ctx.shuffle_partitions()
        if ctx.adaptive and num_parts > 1:
            from repro.sql.adaptive import adaptive_exchange

            return adaptive_exchange(ctx, tagged, num_parts,
                                     lambda p: p[0], intersect, self)
        shuffled = tagged.partition_by(
            num_parts, key_fn=lambda p: p[0], post_shuffle=intersect
        )
        shuffled.scope = self.op_id
        return shuffled

"""Vectorized physical operators and the batch-mode planner pass.

With ``sql.vectorized.enabled`` the planner hands its finished physical tree
to :func:`vectorize_plan`, which rewrites it bottom-up into batch-at-a-time
form: scans decode rows into :class:`~repro.sql.columnar.RecordBatch` column
vectors once at the scan boundary, filters/projections/aggregate builds and
hash-join build+probe run compiled column kernels, and adjacent narrow
operators over a scan (scan -> filter -> project) fuse into a single
whole-stage pass (:class:`VectorScanExec`) so each batch is traversed once.

Operators that stay on the row path (sorts, limits, set operators, adaptive
joins, anything whose expressions the kernel compiler rejects) interoperate
through explicit :class:`ColumnarToRowExec` / :class:`RowToColumnarExec`
transitions inserted here -- never implicitly.  Execution surfaces
``engine.vectorized.*`` counters (batches, rows, fused operators,
transitions) that EXPLAIN ANALYZE reconciles against per-operator stats.
With the flag off none of this module runs and cost ledgers stay
byte-identical to the row engine (tests/integration/test_vectorized_invariance.py).
See docs/vectorized.md.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.engine.rdd import RDD
from repro.sql import columnar as C
from repro.sql import expressions as E
from repro.sql import physical as P


def _as_columnar(child: P.PhysicalPlan, batch_size: int) -> P.PhysicalPlan:
    """Ensure ``child`` produces batches, inserting a transition if needed."""
    if child.columnar_output:
        return child
    return RowToColumnarExec(child, batch_size)


def _as_rows(child: P.PhysicalPlan) -> P.PhysicalPlan:
    """Ensure ``child`` produces rows, inserting a transition if needed."""
    if child.columnar_output:
        return ColumnarToRowExec(child)
    return child


class RowToColumnarExec(P.PhysicalPlan):
    """Transition: pack a row stream into column batches inside the task."""

    columnar_output = True

    def __init__(self, child: P.PhysicalPlan, batch_size: int) -> None:
        super().__init__(child.output, [child])
        self.batch_size = batch_size

    def execute(self, ctx: P.ExecContext) -> RDD:
        width = len(self.output)
        batch_size = self.batch_size
        op = self
        ctx.record_operator(self, vec_mode="batch")

        def to_batches(rows, task_ctx):
            for batch in C.batches_from_rows(rows, width, batch_size):
                yield batch
            task_ctx.ledger.count("engine.vectorized.transitions", 1)
            ctx.accumulate_operator(op, conversions=1)

        return self.children[0].execute(ctx).map_partitions(to_batches)

    def describe(self) -> str:
        return f"RowToColumnar(batch={self.batch_size})"


class ColumnarToRowExec(P.PhysicalPlan):
    """Transition: unpack column batches back into row tuples."""

    columnar_output = False

    def __init__(self, child: P.PhysicalPlan) -> None:
        super().__init__(child.output, [child])

    def execute(self, ctx: P.ExecContext) -> RDD:
        op = self
        ctx.record_operator(self, vec_mode="row")

        def to_rows(batches, task_ctx):
            for batch in batches:
                yield from batch.to_rows()
            task_ctx.ledger.count("engine.vectorized.transitions", 1)
            ctx.accumulate_operator(op, conversions=1)

        return self.children[0].execute(ctx).map_partitions(to_rows)

    def describe(self) -> str:
        return "ColumnarToRow"


class VectorScanExec(P.PhysicalPlan):
    """Batch-producing scan, optionally fused with filters and a projection.

    Wraps a :class:`~repro.sql.physical.DataSourceScanExec` (reusing its
    pushdown / pruning / stats path via ``execute_source``) or a
    :class:`~repro.sql.physical.LocalScanExec`.  One ``map_partitions`` pass
    per partition: decode rows into batches once, apply every fused
    predicate as a column mask, then evaluate the fused projection --
    so each batch is traversed once per kernel instead of once per row per
    expression node.  The scan's own residual filter always runs here
    (vectorized); ``fused`` additionally names collapsed upstream operators
    when ``sql.vectorized.fusion`` folded them in.
    """

    columnar_output = True

    def __init__(self, scan: P.PhysicalPlan, conditions: Sequence[E.Expression],
                 project_list: Optional[Sequence[E.Expression]],
                 output: Sequence[E.Attribute], batch_size: int,
                 fused: Sequence[str] = ("Scan",)) -> None:
        super().__init__(output, [scan])
        self.conditions = list(conditions)
        self.project_list = list(project_list) if project_list is not None else None
        self.batch_size = batch_size
        self.fused = list(fused)

    def with_condition(self, condition: E.Expression) -> "VectorScanExec":
        """Fuse an upstream filter's predicate into the whole-stage pass."""
        return VectorScanExec(
            self.children[0],
            self.conditions + E.split_conjuncts(condition),
            self.project_list, self.output, self.batch_size,
            self.fused + ["Filter"],
        )

    def with_project(self, project: P.ProjectExec) -> "VectorScanExec":
        """Fuse an upstream projection into the whole-stage pass."""
        return VectorScanExec(
            self.children[0], self.conditions, project.project_list,
            project.output, self.batch_size, self.fused + ["Project"],
        )

    def execute(self, ctx: P.ExecContext) -> RDD:
        scan = self.children[0]
        if isinstance(scan, P.DataSourceScanExec):
            rdd = scan.execute_source(ctx)
        else:
            rdd = scan.execute(ctx)
        width = len(scan.output)
        batch_size = self.batch_size
        cond_kernels = [C.compile_bound(c, scan.output) for c in self.conditions]
        proj_kernels = None
        if self.project_list is not None:
            proj_kernels = [
                C.compile_bound(
                    item.child if isinstance(item, E.Alias) else item,
                    scan.output,
                )
                for item in self.project_list
            ]
        if any(k is None for k in cond_kernels) or (
                proj_kernels is not None and any(k is None for k in proj_kernels)):
            raise RuntimeError(
                "planner fused a non-vectorizable expression into a "
                "VectorScanExec -- vectorize_plan must keep such operators "
                "on the row path"
            )
        per_row = ctx.cost.vector_row_cpu_s
        stats: Dict[str, object] = {"vec_mode": "batch"}
        if len(self.fused) > 1:
            ctx.metrics.incr("engine.vectorized.fused_operators", len(self.fused))
            stats["fused"] = len(self.fused)
        ctx.record_operator(self, **stats)
        op = self

        def scan_batches(rows, task_ctx):
            nbatches = 0
            nrows = 0
            for batch in C.batches_from_rows(rows, width, batch_size):
                nbatches += 1
                nrows += batch.num_rows
                for kernel in cond_kernels:
                    if batch.num_rows:
                        mask = kernel(batch.columns, batch.num_rows)
                        batch = C.apply_mask(batch, mask)
                if proj_kernels is not None:
                    n = batch.num_rows
                    batch = C.RecordBatch(
                        [k(batch.columns, n) for k in proj_kernels], n)
                yield batch
            task_ctx.ledger.count("engine.vectorized.batches", nbatches)
            task_ctx.ledger.count("engine.vectorized.rows", nrows)
            task_ctx.ledger.charge(per_row * nrows, "engine.rows_processed", nrows)
            ctx.accumulate_operator(op, batches=nbatches, rows=nrows)

        return rdd.map_partitions(scan_batches)

    def describe(self) -> str:
        if len(self.fused) > 1:
            return (f"VectorizedWholeStage({'+'.join(self.fused)}, "
                    f"batch={self.batch_size})")
        return (f"VectorizedScan(batch={self.batch_size}, "
                f"residual={len(self.conditions)})")


class VectorFilterExec(P.FilterExec):
    """Batch filter: predicate kernel -> mask -> ``itertools.compress``."""

    columnar_output = True

    def execute(self, ctx: P.ExecContext) -> RDD:
        kernel = C.compile_bound(self.condition, self.children[0].output)
        if kernel is None:
            raise RuntimeError(f"non-vectorizable filter {self.condition!r}")
        per_row = ctx.cost.vector_row_cpu_s
        ctx.record_operator(self, vec_mode="batch")
        op = self

        def apply(batches, task_ctx):
            nbatches = 0
            nrows = 0
            for batch in batches:
                nbatches += 1
                nrows += batch.num_rows
                if batch.num_rows:
                    batch = C.apply_mask(
                        batch, kernel(batch.columns, batch.num_rows))
                yield batch
            task_ctx.ledger.count("engine.vectorized.batches", nbatches)
            task_ctx.ledger.count("engine.vectorized.rows", nrows)
            task_ctx.ledger.charge(per_row * nrows, "engine.rows_processed", nrows)
            ctx.accumulate_operator(op, batches=nbatches, rows=nrows)

        return self.children[0].execute(ctx).map_partitions(apply)

    def describe(self) -> str:
        return f"VectorizedFilter({self.condition!r})"


class VectorProjectExec(P.ProjectExec):
    """Batch projection: one compiled kernel per output column."""

    columnar_output = True

    def execute(self, ctx: P.ExecContext) -> RDD:
        kernels = [
            C.compile_bound(
                item.child if isinstance(item, E.Alias) else item,
                self.children[0].output,
            )
            for item in self.project_list
        ]
        if any(k is None for k in kernels):
            raise RuntimeError(f"non-vectorizable projection {self.project_list!r}")
        per_row = ctx.cost.vector_row_cpu_s
        ctx.record_operator(self, vec_mode="batch")
        op = self

        def apply(batches, task_ctx):
            nbatches = 0
            nrows = 0
            for batch in batches:
                nbatches += 1
                nrows += batch.num_rows
                n = batch.num_rows
                yield C.RecordBatch([k(batch.columns, n) for k in kernels], n)
            task_ctx.ledger.count("engine.vectorized.batches", nbatches)
            task_ctx.ledger.count("engine.vectorized.rows", nrows)
            task_ctx.ledger.charge(per_row * nrows, "engine.rows_processed", nrows)
            ctx.accumulate_operator(op, batches=nbatches, rows=nrows)

        return self.children[0].execute(ctx).map_partitions(apply)

    def describe(self) -> str:
        return f"VectorizedProject({[a.name for a in self.output]})"


class VectorHashAggregateExec(P.HashAggregateExec):
    """Hash aggregation whose map-side build consumes batches.

    Grouping keys and aggregate arguments evaluate as column kernels; the
    accumulator table then updates through the *same* bound
    ``AggregateExpression`` protocol as the row path (each aggregate rebound
    to read its precomputed argument slot), so partial states, merge and
    finish semantics are shared code.  Output pairs flow into the exact
    shuffle/final machinery of the parent class.
    """

    columnar_output = False  # emits (key, accs) pairs into the row shuffle

    @staticmethod
    def _column_fold(agg: E.AggregateExpression):
        """A whole-column accumulator fold for ``agg``, or ``None``.

        Each fold visits values in row order and performs the *same*
        arithmetic in the same order as per-row ``update`` calls, so float
        accumulation is bit-identical to the row path -- only the per-row
        dispatch (method call, argument-tuple build) is amortised away.
        """
        if type(agg) is E.Count and not agg.distinct:
            if agg.child is None:
                return lambda acc, col, n: acc + n
            return lambda acc, col, n: acc + (n - col.count(None))
        if type(agg) is E.Sum and not agg.distinct:
            def fold_sum(acc, col, n):
                for v in col:
                    if v is not None:
                        acc = v if acc is None else acc + v
                return acc

            return fold_sum
        if type(agg) is E.Avg and not agg.distinct:
            def fold_avg(acc, col, n):
                total, count = acc
                for v in col:
                    if v is not None:
                        total = total + v
                        count += 1
                return (total, count)

            return fold_avg
        if type(agg) is E.Min:
            def fold_min(acc, col, n):
                for v in col:
                    if v is not None and (acc is None or v < acc):
                        acc = v
                return acc

            return fold_min
        if type(agg) is E.Max:
            def fold_max(acc, col, n):
                for v in col:
                    if v is not None and (acc is None or v > acc):
                        acc = v
                return acc

            return fold_max
        return None

    def _make_partial(self, ctx: P.ExecContext, bound_groupings, bound_aggs):
        key_kernels = [C.compile_kernel(g) for g in bound_groupings]
        arg_kernels = [
            C.compile_kernel(agg.children[0]) if agg.children else None
            for agg in bound_aggs
        ]
        if any(k is None for k in key_kernels) or any(
                agg.children and k is None
                for agg, k in zip(bound_aggs, arg_kernels)):
            raise RuntimeError(
                f"non-vectorizable aggregate {self.aggregate_list!r}")
        slot_aggs = [
            agg.with_new_children(
                (E.BoundReference(j, agg.children[0].data_type()),)
            ) if agg.children else agg
            for j, agg in enumerate(bound_aggs)
        ]
        has_args = any(k is not None for k in arg_kernels)
        per_row = ctx.cost.vector_row_cpu_s
        ctx.record_operator(self, vec_mode="batch")
        op = self

        folds = ([self._column_fold(a) for a in bound_aggs]
                 if not self.groupings else [])
        if folds and all(f is not None for f in folds):
            # global aggregation over foldable aggregates: fold whole
            # argument columns instead of materialising per-row arg tuples.
            # Emission matches the row path: nothing for empty partitions.
            def fold_partial(batches, task_ctx):
                accs = None
                nbatches = 0
                nrows = 0
                for batch in batches:
                    cols, n = batch.columns, batch.num_rows
                    nbatches += 1
                    nrows += n
                    if not n:
                        continue
                    if accs is None:
                        accs = [a.init_acc() for a in bound_aggs]
                    for j, fold in enumerate(folds):
                        kernel = arg_kernels[j]
                        col = kernel(cols, n) if kernel is not None else None
                        accs[j] = fold(accs[j], col, n)
                task_ctx.ledger.count("engine.vectorized.batches", nbatches)
                task_ctx.ledger.count("engine.vectorized.rows", nrows)
                task_ctx.ledger.charge(per_row * nrows,
                                       "engine.rows_processed", nrows)
                ctx.accumulate_operator(op, batches=nbatches, rows=nrows)
                return iter([] if accs is None else [((), accs)])

            return fold_partial

        def partial(batches, task_ctx):
            table: Dict[tuple, list] = {}
            nbatches = 0
            nrows = 0
            for batch in batches:
                cols, n = batch.columns, batch.num_rows
                nbatches += 1
                nrows += n
                if not n:
                    continue
                keys = C.key_tuples(key_kernels, cols, n)
                if has_args:
                    arg_rows = zip(*(k(cols, n) if k is not None else [None] * n
                                     for k in arg_kernels))
                else:
                    arg_rows = itertools.repeat((), n)
                for key, arg_row in zip(keys, arg_rows):
                    accs = table.get(key)
                    if accs is None:
                        accs = [a.init_acc() for a in slot_aggs]
                        table[key] = accs
                    for j, agg in enumerate(slot_aggs):
                        accs[j] = agg.update(accs[j], arg_row)
            task_ctx.ledger.count("engine.vectorized.batches", nbatches)
            task_ctx.ledger.count("engine.vectorized.rows", nrows)
            task_ctx.ledger.charge(per_row * nrows, "engine.rows_processed", nrows)
            ctx.accumulate_operator(op, batches=nbatches, rows=nrows)
            return iter(table.items())

        return partial

    def describe(self) -> str:
        return (f"VectorizedHashAggregate(keys={self.groupings!r}, "
                f"out={[a.name for a in self.output]})")


class VectorShuffledHashJoinExec(P.ShuffledHashJoinExec):
    """Shuffled hash join whose build/stream tagging is batch-at-a-time.

    Join keys evaluate as column kernels and rows re-materialise through a
    C-level transpose; the tagged stream then feeds the *same* reduce
    closure as the row join (``_make_join_reducer``), so matching, residual
    filtering and ``engine.join.*`` accounting are shared code.
    """

    def execute(self, ctx: P.ExecContext) -> RDD:
        left, right = self.children
        left_kernels = [
            C.compile_bound(k, left.output) for k in self.left_keys]
        right_kernels = [
            C.compile_bound(k, right.output) for k in self.right_keys]
        if any(k is None for k in left_kernels + right_kernels):
            raise RuntimeError(f"non-vectorizable join keys {self.left_keys!r}")
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        per_row = ctx.cost.row_cpu_s
        vec_row = ctx.cost.vector_row_cpu_s
        ctx.record_operator(self, vec_mode="batch")
        op = self

        def make_tag(kernels, side):
            def tag(batches, task_ctx):
                nbatches = 0
                nrows = 0
                for batch in batches:
                    cols, n = batch.columns, batch.num_rows
                    nbatches += 1
                    nrows += n
                    if not n:
                        continue
                    for key, row in zip(C.key_tuples(kernels, cols, n),
                                        batch.to_rows()):
                        yield (key, side, row)
                task_ctx.ledger.count("engine.vectorized.batches", nbatches)
                task_ctx.ledger.count("engine.vectorized.rows", nrows)
                task_ctx.ledger.charge(vec_row * nrows,
                                       "engine.rows_processed", nrows)
                ctx.accumulate_operator(op, batches=nbatches, rows=nrows)

            return tag

        join_partition = P._make_join_reducer(
            self.how, left_width, right_width, residual_bound, per_row,
            lambda rows_out, bytes_out: ctx.accumulate_operator(
                self, rows_out=rows_out, bytes_out=bytes_out),
        )
        tagged = left.execute(ctx).map_partitions(make_tag(left_kernels, 0)).union(
            right.execute(ctx).map_partitions(make_tag(right_kernels, 1))
        )
        shuffled = tagged.partition_by(
            ctx.shuffle_partitions(), key_fn=lambda e: e[0],
            post_shuffle=join_partition,
        )
        shuffled.scope = self.op_id
        return shuffled

    def describe(self) -> str:
        return (f"VectorizedShuffledHashJoin({self.how}, "
                f"{self.left_keys!r} = {self.right_keys!r})")


class VectorBroadcastHashJoinExec(P.BroadcastHashJoinExec):
    """Broadcast hash join probing the build table batch-at-a-time.

    The build side stays a row sub-job (identical collection/broadcast
    accounting via ``_broadcast_build``); the probe computes stream keys as
    column kernels and delegates matching to the shared keyed probe
    (``_make_keyed_probe``), so output rows and ``engine.join.*`` counters
    are computed by the same code as the row path.
    """

    def execute(self, ctx: P.ExecContext) -> RDD:
        left, right = self.children
        kernels = [C.compile_bound(k, left.output) for k in self.left_keys]
        if any(k is None for k in kernels):
            raise RuntimeError(f"non-vectorizable join keys {self.left_keys!r}")
        left_width, right_width = len(left.output), len(right.output)
        combined_attrs = list(left.output) + list(right.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        table = self._broadcast_build(ctx)
        probe_keyed = P._make_keyed_probe(
            table, self.how, left_width, right_width, residual_bound,
            ctx.cost.vector_row_cpu_s,
            lambda rows_out, bytes_out: ctx.accumulate_operator(
                self, rows_out=rows_out, bytes_out=bytes_out),
        )
        ctx.record_operator(self, vec_mode="batch")
        op = self

        def probe(batches, task_ctx):
            nbatches = 0
            nrows = 0

            def keyed():
                nonlocal nbatches, nrows
                for batch in batches:
                    cols, n = batch.columns, batch.num_rows
                    nbatches += 1
                    nrows += n
                    if not n:
                        continue
                    yield from zip(C.key_tuples(kernels, cols, n),
                                   batch.to_rows())

            yield from probe_keyed(keyed(), task_ctx)
            task_ctx.ledger.count("engine.vectorized.batches", nbatches)
            task_ctx.ledger.count("engine.vectorized.rows", nrows)
            ctx.accumulate_operator(op, batches=nbatches, rows=nrows)

        # like the row probe, pipelines inside the stream side's stage
        return left.execute(ctx).map_partitions(probe)

    def describe(self) -> str:
        return (f"VectorizedBroadcastHashJoin({self.how}, "
                f"{self.left_keys!r} = {self.right_keys!r})")


# -- the planner pass ---------------------------------------------------------

def _aggregate_vectorizable(op: P.HashAggregateExec,
                            attrs: Sequence[E.Attribute]) -> bool:
    """All grouping keys and aggregate arguments compile to kernels."""
    if not all(C.supports_vectorized(g, attrs) for g in op.groupings):
        return False
    for item in op.aggregate_list:
        expr = item.child if isinstance(item, E.Alias) else item
        for agg in expr.collect(lambda e: isinstance(e, E.AggregateExpression)):
            if agg.children and not C.supports_vectorized(agg.children[0], attrs):
                return False
    return True


def _reattach(op: P.PhysicalPlan,
              children: List[P.PhysicalPlan]) -> P.PhysicalPlan:
    """Keep ``op`` (same op_id) with its rewritten children."""
    op.children = children
    return op


def _rewrite(op: P.PhysicalPlan, batch_size: int,
             fusion: bool) -> P.PhysicalPlan:
    """Bottom-up rewrite of one subtree into batch form where supported."""
    if isinstance(op, P.DataSourceScanExec):
        if op.residual is None or C.supports_vectorized(op.residual, op.output):
            conditions = (E.split_conjuncts(op.residual)
                          if op.residual is not None else [])
            return VectorScanExec(op, conditions, None, list(op.output),
                                  batch_size)
        return op  # residual the compiler rejects: stay row-at-a-time
    if isinstance(op, P.LocalScanExec):
        return VectorScanExec(op, [], None, list(op.output), batch_size)
    if not op.children:
        return op

    children = [_rewrite(c, batch_size, fusion) for c in op.children]

    if type(op) is P.FilterExec:
        child = children[0]
        if C.supports_vectorized(op.condition, child.output):
            if (fusion and isinstance(child, VectorScanExec)
                    and child.project_list is None):
                return child.with_condition(op.condition)
            return VectorFilterExec(op.condition,
                                    _as_columnar(child, batch_size))
        return _reattach(op, [_as_rows(child)])
    if type(op) is P.ProjectExec:
        child = children[0]
        exprs = [item.child if isinstance(item, E.Alias) else item
                 for item in op.project_list]
        if all(C.supports_vectorized(e, child.output) for e in exprs):
            if (fusion and isinstance(child, VectorScanExec)
                    and child.project_list is None):
                return child.with_project(op)
            return VectorProjectExec(op.project_list,
                                     _as_columnar(child, batch_size))
        return _reattach(op, [_as_rows(child)])
    if type(op) is P.HashAggregateExec:
        child = children[0]
        if _aggregate_vectorizable(op, child.output):
            return VectorHashAggregateExec(op.groupings, op.aggregate_list,
                                           _as_columnar(child, batch_size))
        return _reattach(op, [_as_rows(child)])
    if type(op) is P.ShuffledHashJoinExec:
        left, right = children
        if (all(C.supports_vectorized(k, left.output) for k in op.left_keys)
                and all(C.supports_vectorized(k, right.output)
                        for k in op.right_keys)):
            return VectorShuffledHashJoinExec(
                _as_columnar(left, batch_size), _as_columnar(right, batch_size),
                op.left_keys, op.right_keys, op.how, op.residual,
            )
        return _reattach(op, [_as_rows(left), _as_rows(right)])
    if type(op) is P.BroadcastHashJoinExec:
        left, right = children
        if all(C.supports_vectorized(k, left.output) for k in op.left_keys):
            # the build side is collected as rows by a driver sub-job
            return VectorBroadcastHashJoinExec(
                _as_columnar(left, batch_size), _as_rows(right),
                op.left_keys, op.right_keys, op.how, op.residual,
            )
        return _reattach(op, [_as_rows(left), _as_rows(right)])
    # every other operator consumes rows: sorts, limits, set operators,
    # adaptive joins, cache wrappers, writes ... transition as needed
    return _reattach(op, [_as_rows(c) for c in children])


def vectorize_plan(physical: P.PhysicalPlan,
                   conf: Dict[str, object]) -> P.PhysicalPlan:
    """Rewrite a planned tree for batch execution (``sql.vectorized.enabled``).

    Applies :func:`_rewrite` bottom-up and guarantees the root hands rows to
    the session (a trailing :class:`ColumnarToRowExec` if the root is
    columnar).  ``sql.vectorized.fusion`` (default on) controls whether
    scan -> filter -> project chains collapse into one whole-stage pass;
    with it off each vector operator traverses its batches separately --
    the ablation axis of ``benchmarks/bench_ablation_vectorized.py``.
    """
    batch_size = max(1, int(conf.get("sql.vectorized.batchSize", 1024)))
    fusion = bool(conf.get("sql.vectorized.fusion", True))
    return _as_rows(_rewrite(physical, batch_size, fusion))


__all__ = [
    "ColumnarToRowExec",
    "RowToColumnarExec",
    "VectorBroadcastHashJoinExec",
    "VectorFilterExec",
    "VectorHashAggregateExec",
    "VectorProjectExec",
    "VectorScanExec",
    "VectorShuffledHashJoinExec",
    "vectorize_plan",
]

"""The analyzer: unresolved plans -> resolved plans.

Responsibilities mirroring Catalyst's resolution batch:

- look table names up in the session catalog, giving each reference a *fresh*
  set of attribute ids (so self-joins like q39's inv1/inv2 stay unambiguous);
- expand ``*`` / ``t.*``;
- resolve column names (optionally qualified) against child outputs;
- auto-name unnamed projections;
- validate GROUP BY (non-aggregate outputs must be grouping expressions);
- resolve HAVING, adding hidden aggregate columns when the condition uses
  aggregates that are not in the select list;
- resolve ORDER BY against the select output with fallback to child columns
  (adding hidden pass-through columns when needed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import AnalysisError
from repro.sql import expressions as E
from repro.sql import logical as L


class Catalog:
    """Session-level registry of temp views (name -> logical plan)."""

    def __init__(self) -> None:
        self._views: Dict[str, L.LogicalPlan] = {}

    def register(self, name: str, plan: L.LogicalPlan) -> None:
        self._views[name.lower()] = plan

    def drop(self, name: str) -> None:
        self._views.pop(name.lower(), None)

    def lookup(self, name: str) -> L.LogicalPlan:
        plan = self._views.get(name.lower())
        if plan is None:
            raise AnalysisError(
                f"table or view not found: {name!r}; known: {sorted(self._views)}"
            )
        return fresh_plan(plan)

    def names(self) -> List[str]:
        return sorted(self._views)


def fresh_plan(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Deep-copy a plan with brand-new attribute ids throughout.

    Every time a view is referenced it must produce distinct attribute ids,
    otherwise two references to the same view in one query (a self-join)
    could not be told apart during resolution.
    """
    mapping: Dict[int, E.Attribute] = {}

    def remap_expr(expr: E.Expression) -> E.Expression:
        def rewrite(node: E.Expression) -> Optional[E.Expression]:
            if isinstance(node, E.Attribute):
                replacement = mapping.get(node.attr_id)
                if replacement is not None:
                    return E.Attribute(
                        node.name, replacement.dtype, replacement.attr_id, node.qualifier
                    )
                return None
            if isinstance(node, E.Alias):
                fresh = E.Alias(node.child, node.name)
                mapping[node.attr_id] = fresh.to_attribute()
                return fresh
            return None

        return expr.transform(rewrite)

    def visit(node: L.LogicalPlan) -> L.LogicalPlan:
        children = [visit(c) for c in node.children]
        if isinstance(node, (L.LogicalRelation, L.LocalRelation)):
            fresh = node.new_instance()
            for old, new in zip(node.output, fresh.output):
                mapping[old.attr_id] = new
            return fresh
        if isinstance(node, L.Project):
            return L.Project([remap_expr(e) for e in node.project_list], children[0])
        if isinstance(node, L.Filter):
            return L.Filter(remap_expr(node.condition), children[0])
        if isinstance(node, L.Join):
            condition = remap_expr(node.condition) if node.condition is not None else None
            return L.Join(children[0], children[1], node.how, condition)
        if isinstance(node, L.Aggregate):
            groupings = [remap_expr(g) for g in node.groupings]
            aggs = [remap_expr(a) for a in node.aggregate_list]
            return L.Aggregate(groupings, aggs, children[0])
        if isinstance(node, L.Sort):
            orders = [L.SortOrder(remap_expr(o.expression), o.ascending) for o in node.orders]
            return L.Sort(orders, children[0])
        return node.with_new_children(children)

    return visit(plan)


class Analyzer:
    """Resolves one plan against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def analyze(self, plan: L.LogicalPlan) -> L.LogicalPlan:
        resolved = self._resolve(plan)
        _validate(resolved)
        return resolved

    # -- plan resolution -------------------------------------------------------
    def _resolve(self, node: L.LogicalPlan) -> L.LogicalPlan:
        if isinstance(node, L.UnresolvedRelation):
            return self.catalog.lookup(node.name)

        if isinstance(node, L.InsertIntoTable):
            return self._resolve_insert(node)

        # resolve HAVING-style Filter over Aggregate with aggregate extraction
        if isinstance(node, L.Filter) and isinstance(node.children[0], L.Aggregate):
            aggregate = self._resolve(node.children[0])
            if isinstance(aggregate, L.Aggregate):
                return self._resolve_having(node.condition, aggregate)

        children = [self._resolve(c) for c in node.children]

        if isinstance(node, L.Project):
            return self._resolve_project(node, children[0])
        if isinstance(node, L.Filter):
            rewritten = self._rewrite_subquery_predicates(
                node.condition, children[0]
            )
            if rewritten is not None:
                return rewritten
            condition = self._resolve_expr(node.condition, children[0].output)
            return L.Filter(condition, children[0])
        if isinstance(node, L.Join):
            condition = None
            if node.condition is not None:
                scope = list(children[0].output) + list(children[1].output)
                condition = self._resolve_expr(node.condition, scope)
            return L.Join(children[0], children[1], node.how, condition)
        if isinstance(node, L.Aggregate):
            return self._resolve_aggregate(node, children[0])
        if isinstance(node, L.Sort):
            return self._resolve_sort(node, children[0])
        if isinstance(node, L.SetOperation):
            left, right = children
            if len(left.output) != len(right.output):
                raise AnalysisError(
                    f"{node.op.upper()} sides have {len(left.output)} vs "
                    f"{len(right.output)} columns"
                )
            return L.SetOperation(node.op, left, right, node.all_rows)
        return node.with_new_children(children)

    def _resolve_insert(self, node: L.InsertIntoTable) -> L.LogicalPlan:
        target = self.catalog.lookup(node.table_name)
        # see through the registration wrapper to the writable relation
        inner = target
        while isinstance(inner, L.SubqueryAlias):
            inner = inner.children[0]
        if not isinstance(inner, L.LogicalRelation):
            raise AnalysisError(
                f"{node.table_name!r} is not a writable data source view"
            )
        target_schema = inner.relation.schema
        if isinstance(node.children[0], L.UnresolvedInlineValues):
            child = self._resolve_inline_values(node.children[0], target_schema)
        else:
            child = self._resolve(node.children[0])
        if len(child.output) != len(target_schema):
            raise AnalysisError(
                f"INSERT INTO {node.table_name}: query produces "
                f"{len(child.output)} columns, table has {len(target_schema)}"
            )
        # align output names with the target columns (positional semantics)
        aligned = L.Project(
            [E.Alias(attr, field.name)
             for attr, field in zip(child.output, target_schema)],
            child,
        )
        return L.InsertIntoTable(node.table_name, aligned, node.overwrite,
                                 inner.relation)

    def _resolve_inline_values(self, node: "L.UnresolvedInlineValues",
                               target_schema) -> L.LogicalPlan:
        rows = []
        for exprs in node.rows:
            if len(exprs) != len(target_schema):
                raise AnalysisError(
                    f"VALUES row has {len(exprs)} columns, table has "
                    f"{len(target_schema)}"
                )
            values = []
            for expr, field in zip(exprs, target_schema):
                resolved = self._resolve_expr(expr, [])
                value = resolved.eval(())
                if value is not None and field.dtype.python_type is float:
                    value = float(value)
                values.append(value)
            rows.append(tuple(values))
        from repro.sql.types import StructType

        return L.LocalRelation(
            StructType(list(target_schema.fields)), rows
        )

    # -- node-specific helpers ----------------------------------------------------
    def _resolve_project(self, node: L.Project, child: L.LogicalPlan) -> L.LogicalPlan:
        items = self._expand_stars(node.project_list, child.output)
        resolved: List[E.Expression] = []
        for i, item in enumerate(items):
            expr = self._resolve_expr(item, child.output)
            resolved.append(_named(expr, i))
        return L.Project(resolved, child)

    def _resolve_aggregate(self, node: L.Aggregate, child: L.LogicalPlan) -> L.LogicalPlan:
        items = self._expand_stars(node.aggregate_list, child.output)
        groupings = [self._resolve_expr(g, child.output) for g in node.groupings]
        resolved: List[E.Expression] = []
        for i, item in enumerate(items):
            expr = self._resolve_expr(item, child.output)
            resolved.append(_named(expr, i))
        aggregate = L.Aggregate(groupings, resolved, child)
        _check_aggregate(aggregate)
        return aggregate

    def _resolve_having(self, condition: E.Expression,
                        aggregate: L.Aggregate) -> L.LogicalPlan:
        """HAVING: prefer select aliases, else extract hidden aggregates."""
        if not E.contains_aggregate(condition):
            try:
                resolved = self._resolve_expr(condition, aggregate.output)
                return L.Filter(resolved, aggregate)
            except AnalysisError:
                pass

        hidden: List[E.Expression] = []
        child_scope = aggregate.child.output

        def rewrite(expr: E.Expression) -> E.Expression:
            if isinstance(expr, E.AggregateExpression):
                inner = (
                    self._resolve_expr(expr.children[0], child_scope)
                    if expr.children else None
                )
                agg = expr.with_new_children((inner,) if inner is not None else ())
                alias = E.Alias(agg, f"_having_{len(hidden)}")
                hidden.append(alias)
                return alias.to_attribute()
            if isinstance(expr, E.UnresolvedAttribute):
                # select-list aliases first, then grouping columns
                try:
                    return self._resolve_attr(expr, aggregate.output)
                except AnalysisError:
                    return self._resolve_attr(expr, child_scope)
            return expr.with_new_children(
                [rewrite(c) for c in expr.children]
            ) if expr.children else expr

        condition = rewrite(condition)
        extended = L.Aggregate(
            aggregate.groupings, aggregate.aggregate_list + hidden, aggregate.child
        )
        _check_aggregate(extended)
        filtered = L.Filter(condition, extended)
        visible = list(aggregate.output)
        return L.Project(visible, filtered)

    def _rewrite_subquery_predicates(
        self, condition: E.Expression, child: L.LogicalPlan
    ) -> Optional[L.LogicalPlan]:
        """IN (SELECT ...) / EXISTS become LEFT SEMI / LEFT ANTI joins.

        Only top-level (conjunctive) subquery predicates are supported, and
        only the uncorrelated form; ``NOT IN (subquery)`` is rejected because
        its NULL semantics need a null-aware anti join we do not implement.
        """
        conjuncts = E.split_conjuncts(condition)
        if not any(
            c.collect(lambda e: isinstance(e, (E.InSubquery, E.Exists)))
            for c in conjuncts
        ):
            return None
        plan = child
        plain: List[E.Expression] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, E.InSubquery):
                plan = self._semi_join(plan, conjunct, "semi")
            elif isinstance(conjunct, E.Exists):
                plan = self._exists_join(plan, conjunct, "semi")
            elif isinstance(conjunct, E.Not) and isinstance(
                conjunct.children[0], E.Exists
            ):
                plan = self._exists_join(plan, conjunct.children[0], "anti")
            elif isinstance(conjunct, E.Not) and isinstance(
                conjunct.children[0], E.InSubquery
            ):
                raise AnalysisError(
                    "NOT IN (subquery) is not supported (its NULL semantics "
                    "need a null-aware anti join); use NOT EXISTS"
                )
            elif conjunct.collect(
                lambda e: isinstance(e, (E.InSubquery, E.Exists))
            ):
                raise AnalysisError(
                    "subquery predicates are only supported as top-level "
                    f"conjuncts, not inside {conjunct!r}"
                )
            else:
                plain.append(conjunct)
        if plain:
            resolved = self._resolve_expr(
                E.combine_conjuncts(plain), child.output
            )
            plan = L.Filter(resolved, plan) if not isinstance(plan, L.Join)                 else L.Filter(resolved, plan)
        return self._resolve(plan) if _has_unresolved(plan) else plan

    def _semi_join(self, left: L.LogicalPlan, predicate: E.InSubquery,
                   how: str) -> L.LogicalPlan:
        subplan = self._resolve(predicate.subquery)
        if len(subplan.output) != 1:
            raise AnalysisError(
                "an IN subquery must produce exactly one column"
            )
        needle = self._resolve_expr(predicate.value, left.output)
        condition = E.Comparison("=", needle, subplan.output[0])
        return L.Join(left, subplan, how, condition)

    def _exists_join(self, left: L.LogicalPlan, predicate: E.Exists,
                     how: str) -> L.LogicalPlan:
        subplan = self._resolve(predicate.subquery)
        # uncorrelated EXISTS: any row in the subquery keeps/drops all rows;
        # model it as a semi/anti join on a constant key over (at most) one
        # subquery row -- an empty subquery must yield an empty right side
        const = E.Alias(E.Literal(1, E.lit_of(1).dtype), "_exists_key")
        right = L.Limit(1, L.Project([const], subplan))
        left_key = E.Literal(1, E.lit_of(1).dtype)
        condition = E.Comparison("=", left_key, right.output[0])
        return L.Join(left, right, how, condition)

    def _resolve_sort(self, node: L.Sort, child: L.LogicalPlan) -> L.LogicalPlan:
        orders: List[L.SortOrder] = []
        hidden_needed: List[E.Attribute] = []
        for order in node.orders:
            if isinstance(order.expression, E.SortOrdinal):
                position = order.expression.position
                if position > len(child.output):
                    raise AnalysisError(
                        f"ORDER BY position {position} exceeds the "
                        f"{len(child.output)}-column select list"
                    )
                orders.append(L.SortOrder(child.output[position - 1],
                                          order.ascending))
                continue
            try:
                expr = self._resolve_expr(order.expression, child.output)
            except AnalysisError:
                if isinstance(child, L.Project):
                    expr = self._resolve_expr(
                        order.expression, child.children[0].output
                    )
                    for attr_id in expr.references():
                        if attr_id not in {a.attr_id for a in child.output}:
                            for attr in child.children[0].output:
                                if attr.attr_id == attr_id:
                                    hidden_needed.append(attr)
                else:
                    raise
            orders.append(L.SortOrder(expr, order.ascending))
        if hidden_needed:
            widened = L.Project(child.project_list + hidden_needed, child.children[0])
            return L.Project(list(child.output), L.Sort(orders, widened))
        return L.Sort(orders, child)

    # -- expression resolution -------------------------------------------------------
    def _expand_stars(self, items: Sequence[E.Expression],
                      scope: Sequence[E.Attribute]) -> List[E.Expression]:
        out: List[E.Expression] = []
        for item in items:
            if isinstance(item, E.Star):
                matches = [
                    a for a in scope
                    if item.qualifier is None or a.qualifier == item.qualifier
                ]
                if not matches:
                    raise AnalysisError(f"cannot expand {item!r}")
                out.extend(matches)
            else:
                out.append(item)
        return out

    def _resolve_expr(self, expr: E.Expression,
                      scope: Sequence[E.Attribute]) -> E.Expression:
        def rewrite(node: E.Expression) -> Optional[E.Expression]:
            if isinstance(node, E.UnresolvedAttribute):
                return self._resolve_attr(node, scope)
            return None

        return expr.transform(rewrite)

    def _resolve_attr(self, node: E.UnresolvedAttribute,
                      scope: Sequence[E.Attribute]) -> E.Attribute:
        exact = [
            a for a in scope
            if a.name == node.name
            and (node.qualifier is None or a.qualifier == node.qualifier)
        ]
        if not exact:
            lowered = node.name.lower()
            exact = [
                a for a in scope
                if a.name.lower() == lowered
                and (node.qualifier is None or a.qualifier == node.qualifier)
            ]
        if not exact:
            raise AnalysisError(
                f"cannot resolve column {node.display()!r}; "
                f"candidates: {[repr(a) for a in scope]}"
            )
        distinct_ids = {a.attr_id for a in exact}
        if len(distinct_ids) > 1:
            raise AnalysisError(f"ambiguous column {node.display()!r}: {exact!r}")
        return exact[0]


def _has_unresolved(plan: L.LogicalPlan) -> bool:
    """Does the plan still contain unresolved relations (needs another pass)?"""
    return bool(plan.collect_nodes(
        lambda n: isinstance(n, L.UnresolvedRelation)
    ))


def _named(expr: E.Expression, position: int) -> E.Expression:
    """Ensure a select item carries a name (Alias or Attribute)."""
    if isinstance(expr, (E.Alias, E.Attribute)):
        return expr
    import re as _re

    name = _re.sub(r"#\d+", "", repr(expr))
    name = _re.sub(r"\b\w+\.", "", name)  # drop qualifiers
    if len(name) > 40:
        name = f"_c{position}"
    return E.Alias(expr, name)


def _check_aggregate(aggregate: L.Aggregate) -> None:
    """Non-aggregate outputs must be functions of the grouping expressions."""
    grouping_ids: set = set()
    for g in aggregate.groupings:
        grouping_ids |= g.references()
    for item in aggregate.aggregate_list:
        expr = item.child if isinstance(item, E.Alias) else item
        if E.contains_aggregate(expr):
            continue
        refs = expr.references()
        if not refs <= grouping_ids:
            raise AnalysisError(
                f"expression {item!r} is neither aggregated nor in GROUP BY"
            )


def _comparable(left: E.Expression, right: E.Expression) -> bool:
    """May these operands meet in a comparison / IN?  NULL matches anything."""
    from repro.sql.types import is_numeric

    for side in (left, right):
        if isinstance(side, E.Literal) and side.value is None:
            return True
    try:
        left_t, right_t = left.data_type(), right.data_type()
    except AnalysisError:
        return True  # a deeper error will surface with a better message
    if left_t is right_t:
        return True
    return is_numeric(left_t) and is_numeric(right_t)


def _check_expression_types(expr: E.Expression) -> None:
    for node in expr.collect(lambda e: isinstance(e, (E.Comparison, E.In))):
        if isinstance(node, E.Comparison):
            left, right = node.children
            if not _comparable(left, right):
                raise AnalysisError(
                    f"cannot compare {left.data_type()} with "
                    f"{right.data_type()} in {node!r}"
                )
        else:
            for option in node.options:
                if not _comparable(node.value, option):
                    raise AnalysisError(
                        f"IN list mixes {node.value.data_type()} with "
                        f"{option.data_type()} in {node!r}"
                    )


def _validate(plan: L.LogicalPlan) -> None:
    """Post-condition: no unresolved leaves anywhere; comparisons type-check."""
    def check_exprs(exprs: Sequence[E.Expression]) -> None:
        for expr in exprs:
            bad = expr.collect(
                lambda e: isinstance(e, (E.UnresolvedAttribute, E.Star,
                                         E.SortOrdinal, E.InSubquery,
                                         E.Exists))
            )
            if bad:
                raise AnalysisError(f"unresolved expression(s) {bad!r} in plan")
            _check_expression_types(expr)

    def visit(node: L.LogicalPlan) -> None:
        if isinstance(node, L.UnresolvedRelation):
            raise AnalysisError(f"unresolved relation {node.name!r}")
        if isinstance(node, L.UnresolvedInlineValues):
            raise AnalysisError("VALUES outside INSERT INTO")
        if isinstance(node, L.Project):
            check_exprs(node.project_list)
        elif isinstance(node, L.Filter):
            check_exprs([node.condition])
        elif isinstance(node, L.Aggregate):
            check_exprs(node.groupings + node.aggregate_list)
        elif isinstance(node, L.Join) and node.condition is not None:
            check_exprs([node.condition])
        elif isinstance(node, L.Sort):
            check_exprs([o.expression for o in node.orders])
        for child in node.children:
            visit(child)

    visit(plan)

"""The rule-based optimizer (Catalyst's optimization batch).

Rules, applied in the same spirit as Spark SQL:

- ``EliminateSubqueryAliases`` -- scoping nodes are only needed for analysis;
- ``CombineFilters`` -- collapse stacked filters into one conjunction;
- ``PushDownPredicates`` -- move filters below projects, into join sides and
  below aggregates, so they land directly on relation scans where the planner
  can offer them to the data source (SHC's raison d'etre);
- ``ConstantFolding`` + boolean simplification;
- ``ColumnPruning`` -- inserts minimal projections above every relation so
  sources only materialise the columns a query actually touches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.sql import expressions as E
from repro.sql import logical as L


def optimize(plan: L.LogicalPlan, conf: Optional[Dict[str, object]] = None,
             stats=None, metrics=None, views=None) -> L.LogicalPlan:
    """Run the full rule pipeline to (practical) fixpoint.

    With ``sql.cbo.enabled`` and a stats store, the cost-based join-reorder
    rule (:func:`repro.sql.cbo.reorder_joins`) runs after predicate pushdown
    -- so its input cardinalities see pushed filters -- and before column
    pruning, which then minimises the reordered tree's projections.

    With ``views`` (a :class:`repro.sql.views.ViewRewriteContext`, built only
    when ``sql.view.enabled`` is on and a view exists), the materialized-view
    rewrite runs after predicate pushdown -- so group-column filters already
    sit directly over the base relation, which is exactly the shape the
    matcher prices -- and before join reordering, so a rewritten aggregate
    no longer participates in the CBO's join search.
    """
    plan = eliminate_subquery_aliases(plan)
    for __ in range(3):
        plan = combine_filters(plan)
        plan = push_down_predicates(plan)
        plan = constant_folding(plan)
    if views is not None:
        from repro.sql.views import rewrite_with_views

        plan = rewrite_with_views(plan, views)
        plan = push_down_predicates(plan)
    if stats is not None and conf is not None \
            and bool(conf.get("sql.cbo.enabled", False)):
        from repro.sql.cbo import reorder_joins

        plan = reorder_joins(plan, stats, conf, metrics)
        plan = push_down_predicates(plan)
    plan = prune_columns(plan)
    plan = combine_filters(plan)
    return plan


# -- rule: eliminate subquery aliases ---------------------------------------------

def eliminate_subquery_aliases(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Drop scoping nodes; they only matter during analysis."""
    def rule(node: L.LogicalPlan) -> Optional[L.LogicalPlan]:
        if isinstance(node, L.SubqueryAlias):
            return node.children[0]
        return None

    return plan.transform_up(rule)


# -- rule: combine adjacent filters ----------------------------------------------

def combine_filters(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Collapse stacked Filters into one conjunction."""
    def rule(node: L.LogicalPlan) -> Optional[L.LogicalPlan]:
        if isinstance(node, L.Filter) and isinstance(node.children[0], L.Filter):
            inner = node.children[0]
            return L.Filter(E.And(inner.condition, node.condition), inner.children[0])
        return None

    return plan.transform_up(rule)


# -- rule: predicate pushdown ---------------------------------------------------

def push_down_predicates(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Sink filters through projects, into join sides, below aggregates."""
    def rule(node: L.LogicalPlan) -> Optional[L.LogicalPlan]:
        if not isinstance(node, L.Filter):
            return None
        child = node.children[0]
        if isinstance(child, L.Project):
            return _push_through_project(node, child)
        if isinstance(child, L.Join):
            return _push_into_join(node, child)
        if isinstance(child, L.Aggregate):
            return _push_below_aggregate(node, child)
        if isinstance(child, L.Distinct):
            return L.Distinct(L.Filter(node.condition, child.children[0]))
        return None

    # repeat so a filter can sink through several levels
    for __ in range(5):
        new_plan = plan.transform_up(rule)
        if new_plan is plan:
            return plan
        plan = new_plan
    return plan


def _substitution_for(project_list: Sequence[E.Expression]) -> Dict[int, E.Expression]:
    mapping: Dict[int, E.Expression] = {}
    for item in project_list:
        if isinstance(item, E.Alias):
            mapping[item.attr_id] = item.child
        elif isinstance(item, E.Attribute):
            mapping[item.attr_id] = item
    return mapping


def _substitute(expr: E.Expression, mapping: Dict[int, E.Expression]) -> E.Expression:
    def rewrite(node: E.Expression) -> Optional[E.Expression]:
        if isinstance(node, E.Attribute):
            replacement = mapping.get(node.attr_id)
            if replacement is not None and replacement is not node:
                return replacement
        return None

    return expr.transform(rewrite)


def _push_through_project(flt: L.Filter, project: L.Project) -> Optional[L.LogicalPlan]:
    if any(E.contains_aggregate(item) for item in project.project_list):
        return None
    mapping = _substitution_for(project.project_list)
    if not flt.condition.references() <= set(mapping):
        return None
    pushed = _substitute(flt.condition, mapping)
    return L.Project(project.project_list, L.Filter(pushed, project.children[0]))


def _push_into_join(flt: L.Filter, join: L.Join) -> Optional[L.LogicalPlan]:
    left_ids = {a.attr_id for a in join.left.output}
    right_ids = {a.attr_id for a in join.right.output}
    left_pushed: List[E.Expression] = []
    right_pushed: List[E.Expression] = []
    kept: List[E.Expression] = []
    for conjunct in E.split_conjuncts(flt.condition):
        refs = conjunct.references()
        if refs and refs <= left_ids:
            left_pushed.append(conjunct)
        elif refs and refs <= right_ids and join.how != "left":
            # for LEFT joins, filters on the right side change semantics
            right_pushed.append(conjunct)
        else:
            kept.append(conjunct)
    if not left_pushed and not right_pushed:
        return None
    left = join.left
    right = join.right
    if left_pushed:
        left = L.Filter(E.combine_conjuncts(left_pushed), left)
    if right_pushed:
        right = L.Filter(E.combine_conjuncts(right_pushed), right)
    new_join = L.Join(left, right, join.how, join.condition)
    remaining = E.combine_conjuncts(kept)
    return L.Filter(remaining, new_join) if remaining is not None else new_join


def _push_below_aggregate(flt: L.Filter, agg: L.Aggregate) -> Optional[L.LogicalPlan]:
    """Push conjuncts that only reference grouping-passthrough attributes."""
    passthrough: Set[int] = set()
    for item in agg.aggregate_list:
        if isinstance(item, E.Attribute):
            passthrough.add(item.attr_id)
    pushable: List[E.Expression] = []
    kept: List[E.Expression] = []
    for conjunct in E.split_conjuncts(flt.condition):
        refs = conjunct.references()
        if refs and refs <= passthrough and not E.contains_aggregate(conjunct):
            pushable.append(conjunct)
        else:
            kept.append(conjunct)
    if not pushable:
        return None
    new_child = L.Filter(E.combine_conjuncts(pushable), agg.children[0])
    new_agg = L.Aggregate(agg.groupings, agg.aggregate_list, new_child)
    remaining = E.combine_conjuncts(kept)
    return L.Filter(remaining, new_agg) if remaining is not None else new_agg


# -- rule: constant folding ------------------------------------------------------

_FOLDABLE = (
    E.BinaryArithmetic, E.Comparison, E.Not, E.Cast, E.ScalarFunction, E.IsNull,
    E.IsNotNull,
)


def _fold_expr(expr: E.Expression) -> E.Expression:
    def rewrite(node: E.Expression) -> Optional[E.Expression]:
        if isinstance(node, E.And):
            left, right = node.children
            if isinstance(left, E.Literal):
                if left.value is True:
                    return right
                if left.value is False:
                    return E.Literal(False, left.dtype)
            if isinstance(right, E.Literal):
                if right.value is True:
                    return left
                if right.value is False:
                    return E.Literal(False, right.dtype)
            return None
        if isinstance(node, E.Or):
            left, right = node.children
            if isinstance(left, E.Literal):
                if left.value is False:
                    return right
                if left.value is True:
                    return E.Literal(True, left.dtype)
            if isinstance(right, E.Literal):
                if right.value is False:
                    return left
                if right.value is True:
                    return E.Literal(True, right.dtype)
            return None
        if isinstance(node, _FOLDABLE) and node.children and all(
            isinstance(c, E.Literal) for c in node.children
        ):
            return E.Literal(node.eval(()), node.data_type())
        return None

    return expr.transform(rewrite)


def constant_folding(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Evaluate literal-only subtrees and simplify trivial booleans."""
    def rule(node: L.LogicalPlan) -> Optional[L.LogicalPlan]:
        if isinstance(node, L.Filter):
            return L.Filter(_fold_expr(node.condition), node.children[0])
        if isinstance(node, L.Project):
            return L.Project([_fold_expr(e) for e in node.project_list], node.children[0])
        return None

    return plan.transform_up(rule)


# -- rule: column pruning ----------------------------------------------------------

def prune_columns(plan: L.LogicalPlan) -> L.LogicalPlan:
    """Top-down required-column propagation; scans get minimal Projects."""
    required = {a.attr_id for a in plan.output}
    return _prune(plan, required)


def _prune(node: L.LogicalPlan, required: Set[int]) -> L.LogicalPlan:
    if isinstance(node, L.Project):
        kept = [
            item for item in node.project_list
            if _output_id(item) in required
        ]
        if not kept:  # keep at least one column (e.g. count(*) over project)
            kept = node.project_list[:1]
        child_required: Set[int] = set()
        for item in kept:
            child_required |= item.references()
        child = _prune(node.children[0], child_required)
        return L.Project(kept, child)

    if isinstance(node, L.Filter):
        child_required = set(required) | node.condition.references()
        child = _prune(node.children[0], child_required)
        return L.Filter(node.condition, child)

    if isinstance(node, L.Join):
        needed = set(required)
        if node.condition is not None:
            needed |= node.condition.references()
        left = _prune_side(node.children[0], needed)
        right = _prune_side(node.children[1], needed)
        return L.Join(left, right, node.how, node.condition)

    if isinstance(node, L.Aggregate):
        kept = [
            item for item in node.aggregate_list if _output_id(item) in required
        ]
        if not kept:
            kept = node.aggregate_list[:1]
        child_required = set()
        for g in node.groupings:
            child_required |= g.references()
        for item in kept:
            child_required |= item.references()
        child = _prune(node.children[0], child_required)
        return L.Aggregate(node.groupings, kept, child)

    if isinstance(node, L.Sort):
        needed = set(required)
        for order in node.orders:
            needed |= order.expression.references()
        return L.Sort(node.orders, _prune(node.children[0], needed))

    if isinstance(node, (L.Limit, L.Distinct)):
        # Distinct semantics depend on the full row: keep every column
        child_required = {a.attr_id for a in node.children[0].output} \
            if isinstance(node, L.Distinct) else set(required)
        return node.with_new_children([_prune(node.children[0], child_required)])

    if isinstance(node, L.SetOperation):
        # positional semantics: keep every column on both sides
        left = _prune(node.children[0], {a.attr_id for a in node.children[0].output})
        right = _prune(node.children[1], {a.attr_id for a in node.children[1].output})
        return L.SetOperation(node.op, left, right, node.all_rows)

    if isinstance(node, (L.LogicalRelation, L.LocalRelation)):
        needed = [a for a in node.output if a.attr_id in required]
        if not needed:
            needed = node.output[:1]
        if len(needed) < len(node.output):
            return L.Project(needed, node)
        return node

    return node.with_new_children([_prune(c, required) for c in node.children])


def _prune_side(side: L.LogicalPlan, required: Set[int]) -> L.LogicalPlan:
    side_ids = {a.attr_id for a in side.output}
    needed = required & side_ids
    pruned = _prune(side, needed)
    # if the side still exposes more than needed, cap it with a Project
    if needed and len(needed) < len(pruned.output):
        keep = [a for a in pruned.output if a.attr_id in needed]
        return L.Project(keep, pruned)
    return pruned


def _output_id(item: E.Expression) -> Optional[int]:
    if isinstance(item, E.Alias):
        return item.attr_id
    if isinstance(item, E.Attribute):
        return item.attr_id
    return None

"""Adaptive query execution: re-optimise plans from runtime shuffle stats.

The compile-time planner fixes join strategy and shuffle layout from *size
estimates* before a single byte is scanned.  With ``sql.aqe.enabled`` the
physical plan instead gains :class:`QueryStageExec` barriers at shuffle
boundaries: each exchange's map side materialises eagerly, the scheduler
hands back :class:`~repro.engine.shuffle.ShuffleRuntimeStats` (actual rows,
bytes and hot keys per reduce partition), and the reduce side is re-planned
before it runs.  Three rules, mirroring Spark's AQE:

1. **Broadcast conversion** -- a planned shuffled join whose build side
   *measured* under ``sql.autoBroadcastJoinThreshold`` becomes a broadcast
   hash join (for inner joins the small *left* side can also swap into the
   build role).
2. **Partition coalescing** -- adjacent small reduce partitions merge until
   each task reads about ``sql.aqe.targetPartitionBytes``, cutting task
   launch overhead on near-empty exchanges.
3. **Skew splitting** -- a reduce partition much larger than the median
   splits into several tasks that each fetch a disjoint subset of map
   outputs (joins only: the build side is duplicated per split, so every
   stream row still sees the full build table).

When the flag is off none of this code runs and cost ledgers stay
byte-identical to the non-adaptive engine.  See docs/adaptive.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.rdd import RDD, ShuffleReadRDD
from repro.engine.shuffle import ShuffleRuntimeStats, estimate_size
from repro.sql import expressions as E
from repro.sql.physical import (
    ExecContext,
    PhysicalPlan,
    _cpu_charged,
    _combine_rows,
    _join_output,
    _make_broadcast_probe,
    _make_join_reducer,
)

#: a read spec: (shuffle_id, reduce_partition, optional map-id subset)
ReadSpec = Tuple[int, int, Optional[frozenset]]


class QueryStageExec(PhysicalPlan):
    """Stage barrier: this subtree materialises before downstream planning.

    A passthrough marker in the plan tree -- execution semantics live in the
    parent operator (e.g. :class:`AdaptiveJoinExec`), which materialises the
    stage's exchange through :meth:`ExecContext.materialize_stage` and
    re-plans from the resulting runtime statistics.
    """

    def __init__(self, child: PhysicalPlan) -> None:
        super().__init__(child.output, [child])

    def execute(self, ctx: ExecContext) -> RDD:
        return self.children[0].execute(ctx)

    def describe(self) -> str:
        return "QueryStage"


def plan_coalesced_reads(
    stats_list: Sequence[ShuffleRuntimeStats], target_bytes: int
) -> Tuple[List[List[ReadSpec]], int]:
    """Group adjacent reduce partitions toward ``target_bytes`` per task.

    All stats in ``stats_list`` share the same partitioning (e.g. the two
    sides of a join keyed identically), so partition ``p`` of every shuffle
    lands in the same group and key co-location is preserved.  Returns the
    read specs plus how many partitions were merged away.
    """
    num = stats_list[0].num_partitions
    specs: List[List[ReadSpec]] = []
    group: List[ReadSpec] = []
    group_bytes = 0
    for p in range(num):
        p_bytes = sum(s.partition_bytes[p] for s in stats_list)
        if group and group_bytes + p_bytes > target_bytes:
            specs.append(group)
            group, group_bytes = [], 0
        group.extend((s.shuffle_id, p, None) for s in stats_list)
        group_bytes += p_bytes
    if group:
        specs.append(group)
    return specs, num - len(specs)


def plan_skew_chunks(stats: ShuffleRuntimeStats, partition: int,
                     target_bytes: int) -> List[List[int]]:
    """Partition the map outputs feeding one reduce partition into chunks.

    Each chunk groups map tasks whose blocks for ``partition`` total about
    ``target_bytes``; a skewed partition then runs as one task per chunk,
    each fetching a disjoint ``map_ids`` subset.
    """
    chunks: List[List[int]] = []
    current: List[int] = []
    current_bytes = 0
    for map_id, per_reduce in enumerate(stats.block_bytes):
        nbytes = per_reduce[partition]
        if nbytes <= 0:
            continue
        if current and current_bytes + nbytes > target_bytes:
            chunks.append(current)
            current, current_bytes = [], 0
        current.append(map_id)
        current_bytes += nbytes
    if current:
        chunks.append(current)
    return chunks or [[]]


def adaptive_exchange(ctx: ExecContext, rdd: RDD, num_partitions: int,
                      key_fn, post_shuffle, op: PhysicalPlan) -> RDD:
    """Materialise an exchange, then coalesce small reduce partitions.

    Used by aggregation/distinct/intersect operators: the map side runs at a
    stage barrier, and the reduce side is re-planned as
    :class:`~repro.engine.rdd.ShuffleReadRDD` tasks sized toward
    ``sql.aqe.targetPartitionBytes``.  Coalescing never splits a key across
    tasks, so hash-grouped ``post_shuffle`` closures are unaffected.  (Skew
    splitting is join-only -- a split would hand the same group key to two
    aggregation tasks.)
    """
    shuffled = rdd.partition_by(num_partitions, key_fn)
    stats = ctx.materialize_stage(shuffled)
    target = int(ctx.conf.get("sql.aqe.targetPartitionBytes", 64 * 1024))
    specs, merged = plan_coalesced_reads([stats], target)
    if merged:
        ctx.metrics.incr("engine.aqe.partitions_coalesced", merged)
        ctx.record_reopt(
            op, "coalesce",
            f"{num_partitions} -> {len(specs)} reduce tasks "
            f"(target {target}B, shuffle wrote {stats.total_bytes}B)",
        )
        ctx.record_operator(op, aqe_partitions=len(specs))
    out = ShuffleReadRDD(specs, post_shuffle)
    out.scope = op.op_id
    return out


class AdaptiveJoinExec(PhysicalPlan):
    """Equi-join whose strategy is finalised at runtime, not plan time.

    Planned where the compile-time planner would emit a
    :class:`~repro.sql.physical.ShuffledHashJoinExec`.  Both inputs sit
    behind :class:`QueryStageExec` barriers; executing materialises the
    build-side exchange first and then picks, from measured bytes: broadcast
    conversion (rule 1, including the swapped inner-join variant), partition
    coalescing (rule 2) or skew splitting (rule 3) for the shuffled fallback.
    Join closures are shared with the static operators, so rows, bytes and
    ledger charges are computed identically whichever strategy wins.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan,
                 left_keys: Sequence[E.Expression],
                 right_keys: Sequence[E.Expression],
                 how: str, residual: Optional[E.Expression]) -> None:
        super().__init__(_join_output(left, right, how),
                         [QueryStageExec(left), QueryStageExec(right)])
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.how = how
        self.residual = residual

    def describe(self) -> str:
        return f"AdaptiveJoin({self.how}, {self.left_keys!r} = {self.right_keys!r})"

    def execute(self, ctx: ExecContext) -> RDD:
        self._record_cbo_estimate(ctx)
        left_stage, right_stage = self.children
        bound_left = [E.bind_expression(k, left_stage.output) for k in self.left_keys]
        bound_right = [E.bind_expression(k, right_stage.output) for k in self.right_keys]
        left_width = len(left_stage.output)
        right_width = len(right_stage.output)
        combined_attrs = list(left_stage.output) + list(right_stage.output)
        residual_bound = (
            E.bind_expression(self.residual, combined_attrs)
            if self.residual is not None else None
        )
        how = self.how
        per_row = ctx.cost.row_cpu_s
        num_parts = ctx.shuffle_partitions()
        threshold = int(ctx.conf.get("sql.autoBroadcastJoinThreshold", 128 * 1024))
        target = int(ctx.conf.get("sql.aqe.targetPartitionBytes", 64 * 1024))
        skew_factor = float(ctx.conf.get("sql.aqe.skewedPartitionFactor", 4.0))
        skew_min = int(ctx.conf.get("sql.aqe.skewedPartitionThresholdBytes", 64 * 1024))
        ctx.record_operator(self, initial_strategy="ShuffledHashJoin")

        def on_output(rows_out: int, bytes_out: int) -> None:
            ctx.accumulate_operator(self, rows_out=rows_out, bytes_out=bytes_out)

        def tag_side(bound_keys, side: int):
            def tag(rows, task_ctx):
                tagged = ((tuple(k.eval(r) for k in bound_keys), side, r)
                          for r in rows)
                return _cpu_charged(tagged, task_ctx, per_row)

            return tag

        # stage barrier 1: materialise the build (right) side's exchange
        shuffled_r = right_stage.execute(ctx).map_partitions(
            tag_side(bound_right, 1)
        ).partition_by(num_parts, key_fn=lambda e: e[0])
        stats_r = ctx.materialize_stage(shuffled_r)

        # rule 1: the build side measured small -> broadcast instead
        if stats_r.total_bytes <= threshold:
            table = self._collect_build_table(ctx, stats_r)
            ctx.metrics.incr("engine.aqe.broadcast_conversions", 1)
            ctx.record_reopt(
                self, "broadcast-conversion",
                f"build side wrote {stats_r.total_bytes}B "
                f"<= threshold {threshold}B",
            )
            ctx.record_operator(self, final_strategy="BroadcastHashJoin")
            probe = _make_broadcast_probe(
                table, bound_left, how, left_width, right_width,
                residual_bound, per_row, on_output,
            )
            # like the static broadcast join, the probe pipelines inside the
            # stream side's stage -- no scope stamp of its own
            return left_stage.execute(ctx).map_partitions(probe)

        # stage barrier 2: materialise the stream (left) side's exchange
        shuffled_l = left_stage.execute(ctx).map_partitions(
            tag_side(bound_left, 0)
        ).partition_by(num_parts, key_fn=lambda e: e[0])
        stats_l = ctx.materialize_stage(shuffled_l)

        # rule 1 (swapped): inner joins can build on a small *left* side and
        # stream the already-shuffled right side against it
        if how == "inner" and stats_l.total_bytes <= threshold:
            return self._swapped_broadcast(
                ctx, stats_l, stats_r, residual_bound,
                left_width, right_width, per_row, target, threshold, on_output,
            )

        # rules 2+3: shuffled join with coalesced / split reduce tasks
        return self._shuffled_with_layout(
            ctx, stats_l, stats_r, how, left_width, right_width,
            residual_bound, per_row, num_parts, target,
            skew_factor, skew_min, on_output,
        )

    def _collect_build_table(
        self, ctx: ExecContext, stats: ShuffleRuntimeStats
    ) -> Dict[tuple, List[tuple]]:
        """Gather a materialised (tagged) shuffle into a broadcast table.

        The blocks already paid their shuffle *write*; collecting them at
        the driver charges the read, and shipping the build table to every
        executor charges broadcast volume exactly like the static
        :class:`~repro.sql.physical.BroadcastHashJoinExec`.
        """
        store = ctx.scheduler.block_store
        table: Dict[tuple, List[tuple]] = {}
        build_bytes = 0
        for p in range(stats.num_partitions):
            for key, __side, row in store.fetch(stats.shuffle_id, p):
                build_bytes += estimate_size(row)
                if None not in key:
                    table.setdefault(key, []).append(row)
        ctx.charge_driver(
            stats.total_bytes / ctx.cost.shuffle_bytes_per_sec,
            "engine.shuffle_read_bytes", stats.total_bytes,
        )
        executors = len(ctx.scheduler.cluster.executors)
        ctx.charge_driver(
            build_bytes * executors / ctx.cost.network_bytes_per_sec,
            "engine.broadcast_bytes", build_bytes * executors,
        )
        return table

    def _swapped_broadcast(self, ctx: ExecContext,
                           stats_l: ShuffleRuntimeStats,
                           stats_r: ShuffleRuntimeStats,
                           residual_bound, left_width: int, right_width: int,
                           per_row: float, target: int, threshold: int,
                           on_output) -> RDD:
        """Rule 1's swapped variant: broadcast the small left, stream right."""
        table = self._collect_build_table(ctx, stats_l)
        ctx.metrics.incr("engine.aqe.broadcast_conversions", 1)
        ctx.record_reopt(
            self, "broadcast-conversion",
            f"left side wrote {stats_l.total_bytes}B <= threshold "
            f"{threshold}B; sides swapped",
        )
        ctx.record_operator(
            self, final_strategy="BroadcastHashJoin (build side swapped)")
        specs, merged = plan_coalesced_reads([stats_r], target)
        if merged:
            ctx.metrics.incr("engine.aqe.partitions_coalesced", merged)
            ctx.record_reopt(
                self, "coalesce",
                f"{stats_r.num_partitions} -> {len(specs)} stream tasks "
                f"(target {target}B)",
            )

        def probe_tagged(entries, task_ctx):
            out_count = 0
            out_bytes = 0
            for key, __side, right_row in entries:
                matches = table.get(key, []) if None not in key else []
                for left_row in matches:
                    combined = _combine_rows(left_row, right_row,
                                             left_width, right_width)
                    if residual_bound is None or residual_bound.eval(combined) is True:
                        out_count += 1
                        out_bytes += estimate_size(combined)
                        yield combined
            task_ctx.ledger.count("engine.join.rows_out", out_count)
            task_ctx.ledger.count("engine.join.bytes_out", out_bytes)
            on_output(out_count, out_bytes)
            task_ctx.ledger.charge(per_row * out_count,
                                   "engine.rows_processed", out_count)

        rdd = ShuffleReadRDD(specs, post_shuffle=probe_tagged)
        rdd.scope = self.op_id
        return rdd

    def _shuffled_with_layout(self, ctx: ExecContext,
                              stats_l: ShuffleRuntimeStats,
                              stats_r: ShuffleRuntimeStats,
                              how: str, left_width: int, right_width: int,
                              residual_bound, per_row: float, num_parts: int,
                              target: int, skew_factor: float, skew_min: int,
                              on_output) -> RDD:
        """Rules 2+3: re-plan the reduce layout of a shuffled join.

        Skewed stream partitions split into per-chunk tasks (the build
        partition is duplicated into each chunk, so every stream row still
        sees the full build table -- correct for all supported join types
        because out rows derive from exactly one stream row).  The
        remaining partitions coalesce toward the target task size.
        """
        reducer = _make_join_reducer(how, left_width, right_width,
                                     residual_bound, per_row, on_output)
        stream_bytes = stats_l.partition_bytes
        ordered = sorted(stream_bytes)
        median = ordered[len(ordered) // 2]
        specs: List[List[ReadSpec]] = []
        group: List[ReadSpec] = []
        group_bytes = 0
        plain_parts = 0
        plain_specs = 0
        splits = 0
        for p in range(num_parts):
            skewed = (stream_bytes[p] > skew_min
                      and stream_bytes[p] > skew_factor * max(median, 1))
            chunks = plan_skew_chunks(stats_l, p, target) if skewed else []
            if skewed and len(chunks) > 1:
                if group:
                    specs.append(group)
                    plain_specs += 1
                    group, group_bytes = [], 0
                for maps in chunks:
                    specs.append([
                        (stats_l.shuffle_id, p, frozenset(maps)),
                        (stats_r.shuffle_id, p, None),
                    ])
                splits += 1
                detail = (f"partition {p} ({stream_bytes[p]}B > "
                          f"{skew_factor:g}x median {median}B) split into "
                          f"{len(chunks)} tasks")
                hot = stats_l.hot_key(p)
                if hot is not None:
                    detail += f"; hot key {hot[0]!r} ~{int(hot[1])}B"
                ctx.record_reopt(self, "skew-split", detail)
                continue
            combined = stream_bytes[p] + stats_r.partition_bytes[p]
            if group and group_bytes + combined > target:
                specs.append(group)
                plain_specs += 1
                group, group_bytes = [], 0
            group.append((stats_l.shuffle_id, p, None))
            group.append((stats_r.shuffle_id, p, None))
            group_bytes += combined
            plain_parts += 1
        if group:
            specs.append(group)
            plain_specs += 1
        merged = plain_parts - plain_specs
        if splits:
            ctx.metrics.incr("engine.aqe.skew_splits", splits)
        if merged:
            ctx.metrics.incr("engine.aqe.partitions_coalesced", merged)
            ctx.record_reopt(
                self, "coalesce",
                f"{plain_parts} -> {plain_specs} reduce tasks "
                f"(target {target}B)",
            )
        ctx.record_operator(
            self, final_strategy=f"ShuffledHashJoin ({len(specs)} tasks)",
            aqe_partitions=len(specs),
        )
        rdd = ShuffleReadRDD(specs, post_shuffle=reducer)
        rdd.scope = self.op_id
        return rdd

"""The Data Source API -- the plug-in surface SHC implements.

Mirrors Spark's ``org.apache.spark.sql.sources``: a :class:`BaseRelation`
exposes a schema, a ``build_scan(required_columns, filters)`` entry point
(PrunedFilteredScan), and ``unhandled_filters`` -- the API the paper calls
out (section VI.A.3) as the way a source tells the engine which predicates
it fully handled so Spark can skip re-applying them.  Source *filters* are a
deliberately small, serialisable language distinct from Catalyst expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sql import expressions as E
from repro.sql.types import StructType

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD


# -- the source filter language --------------------------------------------------

@dataclass(frozen=True)
class Filter:
    """Base class of the source filter language."""

    def references(self) -> Tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class AttributeFilter(Filter):
    attribute: str

    def references(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class EqualTo(AttributeFilter):
    value: object


@dataclass(frozen=True)
class GreaterThan(AttributeFilter):
    value: object


@dataclass(frozen=True)
class GreaterThanOrEqual(AttributeFilter):
    value: object


@dataclass(frozen=True)
class LessThan(AttributeFilter):
    value: object


@dataclass(frozen=True)
class LessThanOrEqual(AttributeFilter):
    value: object


@dataclass(frozen=True)
class In(AttributeFilter):
    values: Tuple[object, ...]


@dataclass(frozen=True)
class StringStartsWith(AttributeFilter):
    prefix: str


@dataclass(frozen=True)
class IsNull(AttributeFilter):
    pass


@dataclass(frozen=True)
class IsNotNull(AttributeFilter):
    pass


@dataclass(frozen=True)
class Not(Filter):
    child: Filter

    def references(self) -> Tuple[str, ...]:
        return self.child.references()


@dataclass(frozen=True)
class And(Filter):
    left: Filter
    right: Filter

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()


@dataclass(frozen=True)
class Or(Filter):
    left: Filter
    right: Filter

    def references(self) -> Tuple[str, ...]:
        return self.left.references() + self.right.references()


def translate_expression(expr: E.Expression) -> Optional[Filter]:
    """Compile a Catalyst predicate into a source filter, or None.

    Only expressions whose leaves are a single column and literals translate;
    anything else stays in the engine as a residual filter.
    """
    if isinstance(expr, E.Comparison):
        return _translate_comparison(expr)
    if isinstance(expr, E.In):
        if isinstance(expr.value, E.Attribute) and all(
            isinstance(o, E.Literal) for o in expr.options
        ):
            return In(expr.value.name, tuple(o.value for o in expr.options))
        return None
    if isinstance(expr, E.IsNull) and isinstance(expr.children[0], E.Attribute):
        return IsNull(expr.children[0].name)
    if isinstance(expr, E.IsNotNull) and isinstance(expr.children[0], E.Attribute):
        return IsNotNull(expr.children[0].name)
    if isinstance(expr, E.Like) and isinstance(expr.children[0], E.Attribute):
        pattern = expr.pattern
        if pattern.endswith("%") and "%" not in pattern[:-1] and "_" not in pattern:
            return StringStartsWith(expr.children[0].name, pattern[:-1])
        return None
    if isinstance(expr, E.And):
        left = translate_expression(expr.children[0])
        right = translate_expression(expr.children[1])
        if left is not None and right is not None:
            return And(left, right)
        return None
    if isinstance(expr, E.Or):
        left = translate_expression(expr.children[0])
        right = translate_expression(expr.children[1])
        if left is not None and right is not None:
            return Or(left, right)
        return None
    if isinstance(expr, E.Not):
        child = translate_expression(expr.children[0])
        return Not(child) if child is not None else None
    return None


def _translate_comparison(expr: E.Comparison) -> Optional[Filter]:
    left, right = expr.children
    op = expr.op
    if isinstance(left, E.Literal) and isinstance(right, E.Attribute):
        # normalise "5 < col" into "col > 5"
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        left, right, op = right, left, flipped[op]
    if not (isinstance(left, E.Attribute) and isinstance(right, E.Literal)):
        return None
    name, value = left.name, right.value
    if op == "=":
        return EqualTo(name, value)
    if op == "!=":
        return Not(EqualTo(name, value))
    if op == ">":
        return GreaterThan(name, value)
    if op == ">=":
        return GreaterThanOrEqual(name, value)
    if op == "<":
        return LessThan(name, value)
    return LessThanOrEqual(name, value)


def evaluate_filter(flt: Filter, row: Dict[str, object]) -> bool:
    """Reference evaluator for source filters over a name->value mapping.

    Used by tests and by relations that apply filters client-side.
    NULL-handling matches SQL: comparisons against NULL never match.
    """
    if isinstance(flt, And):
        return evaluate_filter(flt.left, row) and evaluate_filter(flt.right, row)
    if isinstance(flt, Or):
        return evaluate_filter(flt.left, row) or evaluate_filter(flt.right, row)
    if isinstance(flt, Not):
        return not evaluate_filter(flt.child, row)
    if isinstance(flt, IsNull):
        return row.get(flt.attribute) is None
    if isinstance(flt, IsNotNull):
        return row.get(flt.attribute) is not None
    value = row.get(flt.attribute)
    if value is None:
        return False
    if isinstance(flt, EqualTo):
        return value == flt.value
    if isinstance(flt, GreaterThan):
        return value > flt.value
    if isinstance(flt, GreaterThanOrEqual):
        return value >= flt.value
    if isinstance(flt, LessThan):
        return value < flt.value
    if isinstance(flt, LessThanOrEqual):
        return value <= flt.value
    if isinstance(flt, In):
        return value in flt.values
    if isinstance(flt, StringStartsWith):
        return isinstance(value, str) and value.startswith(flt.prefix)
    raise TypeError(f"unknown filter {flt!r}")


# -- the relation plug-in API --------------------------------------------------------

class BaseRelation:
    """A pluggable data source (Spark's PrunedFilteredScan + InsertableRelation)."""

    @property
    def schema(self) -> StructType:
        raise NotImplementedError

    def size_in_bytes(self) -> Optional[int]:
        """Estimated data size; None means unknown (planner assumes huge)."""
        return None

    def build_scan(self, required_columns: Sequence[str],
                   filters: Sequence[Filter]) -> "RDD":
        """Return an RDD of tuples ordered as ``required_columns``.

        ``filters`` is advisory: the relation may apply any subset; the
        engine re-applies whatever ``unhandled_filters`` reports (and, for
        safety, everything unless the relation says otherwise).
        """
        raise NotImplementedError

    def unhandled_filters(self, filters: Sequence[Filter]) -> Sequence[Filter]:
        """The subset of ``filters`` the relation does NOT fully evaluate."""
        return list(filters)

    def insert(self, rdd: "RDD", schema: StructType, ctx,
               overwrite: bool = False) -> None:
        """Write an RDD of tuples (ordered as ``schema``) into the source.

        ``ctx`` is the query's :class:`~repro.sql.physical.ExecContext`; the
        relation runs whatever distributed jobs the write path needs through
        it so write time and metrics are accounted like a query.
        """
        raise NotImplementedError(f"{type(self).__name__} is not writable")


class RelationProvider:
    """Factory registered under a format name (DataSourceRegister)."""

    def create_relation(self, options: Dict[str, str], session) -> BaseRelation:
        raise NotImplementedError


_PROVIDERS: Dict[str, RelationProvider] = {}


def register_provider(format_name: str, provider: RelationProvider) -> None:
    """Register a data source format (e.g. SHC's full class name)."""
    _PROVIDERS[format_name] = provider


def lookup_provider(format_name: str) -> RelationProvider:
    """Resolve a registered data source format to its provider."""
    provider = _PROVIDERS.get(format_name)
    if provider is None:
        from repro.common.errors import AnalysisError

        raise AnalysisError(
            f"unknown data source format {format_name!r}; "
            f"registered: {sorted(_PROVIDERS)}"
        )
    return provider

"""The SQL type system and schemas.

Types carry the names used by SHC catalogs ("string", "int", "bigint",
"tinyint", "double", "time", ...) so the catalog parser, the coders and the
relational layer all speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import AnalysisError


@dataclass(frozen=True)
class DataType:
    """One SQL data type; instances are singletons below."""

    name: str
    python_type: type
    fixed_width: Optional[int] = None  # encoded width in bytes, None = variable

    def __repr__(self) -> str:
        return self.name


StringType = DataType("string", str)
BinaryType = DataType("binary", bytes)
BooleanType = DataType("boolean", bool, 1)
ByteType = DataType("tinyint", int, 1)
ShortType = DataType("smallint", int, 2)
IntegerType = DataType("int", int, 4)
LongType = DataType("bigint", int, 8)
FloatType = DataType("float", float, 4)
DoubleType = DataType("double", float, 8)
#: epoch milliseconds; the catalog spells it "time" (Code 1 in the paper)
TimestampType = DataType("time", int, 8)
#: a decoded Avro record (a Python dict); produced by per-column Avro coders
RecordType = DataType("record", dict)

_BY_NAME: Dict[str, DataType] = {
    t.name: t
    for t in (
        StringType, BinaryType, BooleanType, ByteType, ShortType,
        IntegerType, LongType, FloatType, DoubleType, TimestampType,
        RecordType,
    )
}
_ALIASES = {
    "timestamp": TimestampType,
    "long": LongType,
    "integer": IntegerType,
    "short": ShortType,
    "byte": ByteType,
    "bool": BooleanType,
    "varchar": StringType,
}

NUMERIC_TYPES = (ByteType, ShortType, IntegerType, LongType, FloatType, DoubleType, TimestampType)


def type_from_name(name: str) -> DataType:
    """Look up a type by its catalog spelling (case-insensitive)."""
    key = name.strip().lower()
    dtype = _BY_NAME.get(key) or _ALIASES.get(key)
    if dtype is None:
        raise AnalysisError(f"unknown data type {name!r}")
    return dtype


def is_numeric(dtype: DataType) -> bool:
    """Is ``dtype`` usable in arithmetic/range predicates?"""
    return dtype in NUMERIC_TYPES


@dataclass(frozen=True)
class StructField:
    """One column of a schema."""

    name: str
    dtype: DataType
    nullable: bool = True


class StructType:
    """An ordered collection of fields (a relational schema)."""

    def __init__(self, fields: Sequence[StructField] = ()) -> None:
        # duplicate names are legal in result schemas (e.g. a.v, b.v after a
        # self-join); name lookup raises on the ambiguous ones only
        self.fields: List[StructField] = list(fields)
        self._index: dict = {}
        self._ambiguous: set = set()
        for i, f in enumerate(self.fields):
            if f.name in self._index:
                self._ambiguous.add(f.name)
            else:
                self._index[f.name] = i

    def add(self, name: str, dtype: DataType, nullable: bool = True) -> "StructType":
        """Return a new schema with one more field appended."""
        return StructType(self.fields + [StructField(name, dtype, nullable)])

    def field_index(self, name: str) -> int:
        if name in self._ambiguous:
            raise AnalysisError(f"column name {name!r} is ambiguous in {self.names}")
        idx = self._index.get(name)
        if idx is None:
            raise AnalysisError(f"no column named {name!r} in {self.names}")
        return idx

    def field(self, name: str) -> StructField:
        return self.fields[self.field_index(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and self.fields == other.fields

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.dtype}" for f in self.fields)
        return f"StructType({cols})"

"""Structural fingerprints of logical plans, the partition-cache key.

Two independently-built DataFrames over the same table with the same
transformations must hit the same cache entry, but every analysis pass
mints fresh attribute ids (``name#17`` vs ``name#42``), so a naive
``pretty()`` hash would never match.  The fingerprint therefore renders the
plan tree to text and then *canonicalises* attribute ids by order of first
appearance -- the same trick Spark's ``QueryPlan.canonicalized`` uses --
so structurally identical plans collapse to one key.

Leaf identity needs care too: a ``LogicalRelation``'s repr says nothing
about *which* table it reads, so relations contribute their durable
coordinates (cluster quorum + qualified table name + source options) when
they expose them, and fall back to Python object identity otherwise --
a conservative default that can only cause cache misses, never wrong hits.
``LocalRelation`` hashes its actual rows, so two inline datasets only share
an entry when their data is identical.
"""

from __future__ import annotations

import hashlib
import re
from typing import List

from repro.sql import logical as L

_ATTR_ID = re.compile(r"#(\d+)")


def _relation_identity(node: L.LogicalRelation) -> str:
    """A durable identity string for an external relation."""
    relation = node.relation
    catalog = getattr(relation, "catalog", None)
    qualified = getattr(catalog, "qualified_name", None)
    if qualified is not None:
        quorum = getattr(relation, "quorum", "")
        options = getattr(relation, "options", None) or {}
        opts = ",".join(f"{k}={options[k]!r}" for k in sorted(options))
        return f"relation:{quorum}:{qualified}:{opts}"
    # unknown source type: object identity only ever under-matches
    return f"relation:{type(relation).__name__}:{id(relation)}"


def _describe(node: L.LogicalPlan) -> str:
    if isinstance(node, L.LogicalRelation):
        return (_relation_identity(node)
                + ":" + ",".join(repr(a) for a in node.output))
    if isinstance(node, L.LocalRelation):
        rows_digest = hashlib.sha256(
            repr(node.rows).encode("utf-8")
        ).hexdigest()[:16]
        cols = ",".join(f"{a.name}:{a.dtype}" for a in node.output)
        return f"local:{cols}:{rows_digest}"
    return node.describe()


def plan_fingerprint(plan: L.LogicalPlan) -> str:
    """A canonical hash identifying this plan's structure and sources."""
    lines: List[str] = []

    def visit(node: L.LogicalPlan, depth: int) -> None:
        lines.append(f"{depth}:{_describe(node)}")
        for child in node.children:
            visit(child, depth + 1)

    visit(plan, 0)
    text = "\n".join(lines)

    # canonicalise attribute ids by first appearance so fresh analyzer runs
    # of the same query produce the same fingerprint
    renumbered: dict = {}

    def canonical(match: "re.Match[str]") -> str:
        attr_id = match.group(1)
        if attr_id not in renumbered:
            renumbered[attr_id] = len(renumbered)
        return f"#{renumbered[attr_id]}"

    canonical_text = _ATTR_ID.sub(canonical, text)
    return hashlib.sha256(canonical_text.encode("utf-8")).hexdigest()[:16]

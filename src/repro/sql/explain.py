"""EXPLAIN ANALYZE: render an executed physical plan with runtime stats.

``DataFrame.explain(analyze=True)`` runs the query once with tracing on and
hands the physical plan plus its :class:`~repro.sql.session.QueryResult`
here.  The report annotates each operator with what actually happened --
regions pruned vs. scanned, filters pushed vs. residual, locality hits and
misses -- then appends a per-stage table (tasks, locality, simulated and
wall-clock time, bytes moved) and a query summary (shuffle/broadcast volume,
retries, speculation).  Every number is read from ``QueryResult.operator_stats``,
``QueryResult.stages`` and the run's ``MetricsRegistry``; nothing is
re-derived, so the report always agrees with the counters for the same run.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sql.physical import PhysicalPlan


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024.0 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GB"


def operator_annotations(physical: PhysicalPlan, result) -> Dict[int, List[str]]:
    """Per-operator annotation lines keyed by ``op_id``.

    Scan operators get their recorded stats (regions, filters) plus the
    locality of every stage whose lineage reads that scan
    (``StageInfo.scope``).
    """
    stages_by_scope: Dict[int, List] = {}
    for stage in result.stages:
        if stage.scope is not None:
            stages_by_scope.setdefault(stage.scope, []).append(stage)

    # once any operator executed in batch mode, every other operator is
    # explicitly marked row-mode so the report shows each transition
    vectorized_run = any(
        "vec_mode" in (s or {}) for s in result.operator_stats.values()
    )

    annotations: Dict[int, List[str]] = {}
    for op in physical.walk():
        notes: List[str] = []
        stats = result.operator_stats.get(op.op_id)
        if stats:
            vec_mode = stats.get("vec_mode")
            if vec_mode == "batch":
                if "batches" in stats:
                    notes.append(
                        f"mode: batch (batches={int(stats['batches'])}, "
                        f"rows={int(stats.get('rows', 0))})"
                    )
                else:
                    notes.append("mode: batch")
            elif vec_mode == "row":
                notes.append("mode: row")
            if "fused" in stats:
                notes.append(
                    f"fused: {int(stats['fused'])} operators in one pass")
            if "conversions" in stats:
                notes.append(
                    f"transition: partitions={int(stats['conversions'])}")
            if "setop_rows_out" in stats:
                notes.append(
                    f"setop: rows_out={int(stats['setop_rows_out'])}")
            if "regions_scanned" in stats:
                notes.append(
                    f"regions: scanned={stats['regions_scanned']} "
                    f"pruned={stats['regions_pruned']} "
                    f"of {stats['regions_total']}"
                )
            if "filters_pushed" in stats:
                notes.append(
                    f"filters: pushed={stats['filters_pushed']} "
                    f"residual={stats['filters_residual']}"
                )
            if "filters_runtime" in stats:
                notes.append(
                    f"runtime filters: {int(stats['filters_runtime'])} "
                    f"(semi-join build keys)"
                )
            if "rows_out" in stats:
                actual = int(stats["rows_out"])
                line = f"join: rows_out={actual} " \
                       f"({_fmt_bytes(stats.get('bytes_out', 0))})"
                if "cbo_rows" in stats:
                    est = float(stats["cbo_rows"])
                    err = actual / est if est > 0 else float("inf")
                    line += f", est={est:.0f} (x{err:.2f} actual/est)"
                notes.append(line)
            elif "cbo_rows" in stats:
                notes.append(f"cbo: est rows={float(stats['cbo_rows']):.0f}")
            if "semijoin_keys" in stats:
                pruned = int(stats.get("semijoin_rows_in", 0)) \
                    - int(stats.get("semijoin_rows_kept", 0))
                notes.append(
                    f"semi-join reduction: {int(stats['semijoin_keys'])} build "
                    f"keys, probe {int(stats.get('semijoin_rows_in', 0))} -> "
                    f"{int(stats.get('semijoin_rows_kept', 0))} rows "
                    f"({pruned} pruned)"
                )
            elif "semijoin" in stats:
                notes.append(f"semi-join reduction: {stats['semijoin']}")
            if "final_strategy" in stats:
                notes.append(
                    f"aqe: {stats.get('initial_strategy', '?')} -> "
                    f"{stats['final_strategy']}"
                )
            if "cached_partitions" in stats:
                notes.append(
                    f"cache: serving {stats['cached_partitions']} partitions "
                    f"({_fmt_bytes(stats['cached_bytes'])}) from memory"
                )
            elif "cached_fingerprint" in stats:
                notes.append(
                    f"cache: materializing as {stats['cached_fingerprint']} "
                    f"({_fmt_bytes(stats['cached_bytes'])} cached)"
                )
        scan_stages = stages_by_scope.get(op.op_id)
        if scan_stages:
            local = sum(s.local_tasks for s in scan_stages)
            tasks = sum(s.num_tasks for s in scan_stages)
            sim = sum(s.duration_s for s in scan_stages)
            ids = ",".join(str(s.stage_id) for s in scan_stages)
            notes.append(
                f"locality: hits={local} misses={tasks - local} "
                f"of {tasks} tasks"
            )
            notes.append(f"stages: [{ids}] sim={sim:.4f}s")
            cache_hits = sum(s.cache_hit_partitions for s in scan_stages)
            cache_misses = sum(s.cache_miss_partitions for s in scan_stages)
            if cache_hits or cache_misses:
                ratio = cache_hits / (cache_hits + cache_misses)
                notes.append(
                    f"partition cache: hits={cache_hits} "
                    f"misses={cache_misses} ({ratio:.0%} hit ratio)"
                )
            bc_hit = sum(s.blockcache_hit_bytes for s in scan_stages)
            bc_miss = sum(s.blockcache_miss_bytes for s in scan_stages)
            if bc_hit or bc_miss:
                ratio = bc_hit / (bc_hit + bc_miss)
                notes.append(
                    f"block cache: hit={_fmt_bytes(bc_hit)} "
                    f"miss={_fmt_bytes(bc_miss)} ({ratio:.0%} byte hit ratio)"
                )
            join_rows = sum(s.join_rows_out for s in scan_stages)
            join_bytes = sum(s.join_bytes_out for s in scan_stages)
            if join_rows:
                notes.append(
                    f"join stages: rows_out={join_rows} "
                    f"({_fmt_bytes(join_bytes)})"
                )
            setop_rows = sum(s.setop_rows_out for s in scan_stages)
            if setop_rows:
                notes.append(f"setop stages: rows_out={setop_rows}")
        if vectorized_run and not (stats and "vec_mode" in stats):
            notes.append("mode: row")
        if notes:
            annotations[op.op_id] = notes
    return annotations


def _stage_table(stages: Sequence) -> List[str]:
    header = (f"{'stage':>5}  {'kind':<11}  {'tasks':>5}  {'local':>5}  "
              f"{'sim_s':>9}  {'wall_s':>9}  {'output':>10}  {'scan':>4}")
    lines = [header, "-" * len(header)]
    for s in stages:
        scope = str(s.scope) if s.scope is not None else "-"
        lines.append(
            f"{s.stage_id:>5}  {s.kind:<11}  {s.num_tasks:>5}  "
            f"{s.local_tasks:>5}  {s.duration_s:>9.4f}  "
            f"{s.wall_clock_s:>9.4f}  {_fmt_bytes(s.output_bytes):>10}  "
            f"{scope:>4}"
        )
    return lines


def _summary(result) -> List[str]:
    m = result.metrics
    lines = [
        f"rows returned: {len(result.rows)}",
        f"simulated seconds: {result.seconds:.4f} "
        f"(wall-clock: {result.wall_clock_s:.4f}s)",
        f"tasks: {int(m.get('engine.tasks'))} total, "
        f"{int(m.get('engine.local_tasks'))} on preferred hosts",
        f"shuffle: write={_fmt_bytes(m.get('engine.shuffle_write_bytes'))} "
        f"read={_fmt_bytes(m.get('engine.shuffle_read_bytes'))} "
        f"broadcast={_fmt_bytes(m.get('engine.broadcast_bytes'))}",
        f"scans: regions scanned={int(m.get('shc.regions_scanned'))} "
        f"pruned={int(m.get('shc.regions_pruned'))}; "
        f"filters pushed={int(m.get('shc.filters_pushed'))} "
        f"residual={int(m.get('shc.filters_residual'))}",
        f"resilience: {int(m.get('engine.task_failures'))} task failures, "
        f"{int(m.get('hbase.retries'))} hbase retries, "
        f"speculative launched={int(m.get('engine.speculative_launched'))} "
        f"won={int(m.get('engine.speculative_won'))} "
        f"wasted={m.get('engine.speculative_wasted_s'):.4f}s",
    ]
    cache_hits = int(m.get("engine.cache.hits"))
    cache_misses = int(m.get("engine.cache.misses"))
    bc_hits = int(m.get("hbase.blockcache.hits"))
    bc_misses = int(m.get("hbase.blockcache.misses"))
    if cache_hits or cache_misses or bc_hits or bc_misses:
        lines.append(
            f"caches: partition hits={cache_hits} misses={cache_misses} "
            f"read={_fmt_bytes(m.get('engine.cache.read_bytes'))}; "
            f"block hits={bc_hits} misses={bc_misses} "
            f"hit_bytes={_fmt_bytes(m.get('hbase.blockcache.hit_bytes'))}"
        )
    return lines


def _vectorized_section(result) -> List[str]:
    """The batch-execution section: totals of the ``engine.vectorized.*``
    counters this run produced.  Empty (section omitted) for row-only runs,
    so reports are unchanged unless ``sql.vectorized.enabled`` did work.
    The per-operator ``mode: batch`` notes sum to exactly these numbers --
    both sides read the same ledger (tests/sql/test_vectorized_exec.py).
    """
    m = result.metrics
    batches = int(m.get("engine.vectorized.batches"))
    transitions = int(m.get("engine.vectorized.transitions"))
    if not (batches or transitions):
        return []
    return [
        "",
        "== Vectorized Execution ==",
        f"batches processed: {batches} "
        f"({int(m.get('engine.vectorized.rows'))} rows)",
        f"operators fused: {int(m.get('engine.vectorized.fused_operators'))}",
        f"columnar/row transitions: {transitions}",
    ]


def _adaptive_section(physical: PhysicalPlan, result) -> List[str]:
    """The adaptive-execution section: reopt events plus the final plan.

    Empty (section omitted entirely) for non-adaptive runs, so existing
    reports are unchanged unless ``sql.aqe.enabled`` re-optimised something.
    The initial plan is the tree EXPLAIN ANALYZE already printed; the final
    plan re-renders it with each adapted operator's executed strategy.
    """
    events = list(getattr(result, "reopt_events", ()) or ())
    if not events:
        return []
    overrides: Dict[int, str] = {}
    for op in physical.walk():
        stats = result.operator_stats.get(op.op_id) or {}
        final = stats.get("final_strategy")
        if final is not None:
            overrides[op.op_id] = f"{op.describe()} => {final}"
    lines = [
        "",
        "== Adaptive Execution ==",
        f"reoptimizations: {len(events)}",
    ]
    lines.extend(
        f"  op {e['op_id']}: {e['rule']} -- {e['detail']}" for e in events
    )
    lines.append("final plan:")
    lines.append(physical.pretty(overrides=overrides))
    return lines


def _cbo_section(physical: PhysicalPlan, result) -> List[str]:
    """The cost-based-optimizer section: what the stats-driven planner did.

    Empty (section omitted entirely) unless ``sql.cbo.enabled`` produced at
    least one estimate, so default-path reports are byte-identical.  The
    per-operator ``est=`` join annotations elaborate the same run; the
    estimation-error lines here make mis-estimates visible at a glance.
    """
    m = result.metrics
    counters = {
        name: m.get(name)
        for name in (
            "sql.cbo.estimates", "sql.cbo.stats_stale",
            "sql.cbo.reorders_applied", "sql.cbo.reorders_rejected",
            "sql.cbo.semijoins_applied", "sql.cbo.semijoins_rejected",
            "sql.cbo.semijoin.keys", "sql.cbo.semijoin.rows_pruned",
            "sql.cbo.aqe_priors_used",
        )
    }
    if not any(counters.values()):
        return []
    lines = [
        "",
        "== Cost-Based Optimization ==",
        f"estimates: {int(counters['sql.cbo.estimates'])} "
        f"(stale stats skipped: {int(counters['sql.cbo.stats_stale'])})",
        f"join reorders: applied={int(counters['sql.cbo.reorders_applied'])} "
        f"rejected={int(counters['sql.cbo.reorders_rejected'])}",
        f"semi-join reductions: "
        f"applied={int(counters['sql.cbo.semijoins_applied'])} "
        f"rejected={int(counters['sql.cbo.semijoins_rejected'])}; "
        f"{int(counters['sql.cbo.semijoin.keys'])} build keys broadcast, "
        f"{int(counters['sql.cbo.semijoin.rows_pruned'])} probe rows pruned",
    ]
    if counters["sql.cbo.aqe_priors_used"]:
        lines.append(
            f"aqe priors: {int(counters['sql.cbo.aqe_priors_used'])} join "
            f"strategies settled from statistics (no stage barrier)"
        )
    for op in physical.walk():
        stats = result.operator_stats.get(op.op_id) or {}
        if "cbo_rows" in stats and "rows_out" in stats:
            est = float(stats["cbo_rows"])
            actual = int(stats["rows_out"])
            err = actual / est if est > 0 else float("inf")
            lines.append(
                f"  op {op.op_id}: est {est:.0f} rows, actual {actual} "
                f"(x{err:.2f})"
            )
    return lines


def _serving_section(result) -> List[str]:
    """The admission-control section for queries that came through the
    serving front door (:mod:`repro.serving`).

    Empty (section omitted entirely) for directly-executed queries --
    ``result.serving`` is only stamped by the :class:`QueryServer`, so
    existing reports are byte-identical without it.  ``queue wait`` here is
    the same number the server charged to ``serving.queue_wait_s`` and to
    the client operation deadline (``CostLedger.queued_s``).
    """
    serving = getattr(result, "serving", None)
    if not serving:
        return []
    lines = [
        "",
        "== Serving ==",
        f"tenant: {serving.get('tenant', '?')}"
        + (" (breaker probe)" if serving.get("probe") else ""),
        f"queue wait: {float(serving.get('wait_s', 0.0)):.4f}s "
        f"(arrived {float(serving.get('arrival_s', 0.0)):.4f}s, "
        f"dispatched {float(serving.get('start_s', 0.0)):.4f}s)",
        f"leased slots: {int(serving.get('slots', 0))}",
        f"breaker state at dispatch: {serving.get('breaker_state', '?')}",
    ]
    total = float(serving.get("wait_s", 0.0)) + result.seconds
    lines.append(f"end-to-end simulated seconds: {total:.4f} "
                 f"(wait + execution)")
    return lines


def views_section_lines(events) -> List[str]:
    """The "Materialized Views" section for a list of rewrite events.

    Empty (section omitted entirely) when no view was considered, so
    view-free reports are byte-identical to the seed.  One line per
    decision: a rewrite names the view and the sizes it was priced at; a
    rejection says why the view could not answer the query (stale feed or
    a view no smaller than the base plan).
    """
    if not events:
        return []
    lines = ["", "== Materialized Views =="]
    for event in events:
        action = event.get("action")
        name = event.get("view", "?")
        view_b = _fmt_bytes(event.get("view_bytes", 0.0))
        base_b = _fmt_bytes(event.get("base_bytes", 0.0))
        lag = float(event.get("lag_s", 0.0))
        if action == "rewrites":
            lines.append(f"rewrote onto {name}: view {view_b} vs base "
                         f"{base_b}, lag {lag:.4f}s")
        elif action == "rejected_stale":
            lines.append(f"rejected {name}: stale (lag {lag:.4f}s over "
                         f"sql.view.staleness)")
        elif action == "rejected_cost":
            lines.append(f"rejected {name}: view {view_b} not smaller than "
                         f"base {base_b}")
        else:
            lines.append(f"{action} {name}")
    return lines


def _views_section(result) -> List[str]:
    """Materialized-view decisions for this execution (sql.view.enabled)."""
    return views_section_lines(getattr(result, "view_events", []))


def explain_analyze_report(physical: PhysicalPlan, result) -> str:
    """The full EXPLAIN ANALYZE text for one executed query."""
    sections = [
        "== Physical Plan (EXPLAIN ANALYZE) ==",
        physical.pretty(annotations=operator_annotations(physical, result)),
        "",
        "== Stages ==",
        *_stage_table(result.stages),
        "",
        "== Query Summary ==",
        *_summary(result),
        *_vectorized_section(result),
        *_adaptive_section(physical, result),
        *_cbo_section(physical, result),
        *_views_section(result),
        *_serving_section(result),
    ]
    return "\n".join(sections)

"""DataFrame expression builders (``pyspark.sql.functions`` equivalents)."""

from __future__ import annotations

from typing import Union

from repro.sql import expressions as E


class Column:
    """A user-facing expression wrapper with operator overloads."""

    def __init__(self, expr: E.Expression) -> None:
        self.expr = expr

    # -- comparisons -------------------------------------------------------
    def _cmp(self, op: str, other: object) -> "Column":
        return Column(E.Comparison(op, self.expr, _to_expr(other)))

    def __eq__(self, other: object) -> "Column":  # type: ignore[override]
        return self._cmp("=", other)

    def __ne__(self, other: object) -> "Column":  # type: ignore[override]
        return self._cmp("!=", other)

    def __lt__(self, other: object) -> "Column":
        return self._cmp("<", other)

    def __le__(self, other: object) -> "Column":
        return self._cmp("<=", other)

    def __gt__(self, other: object) -> "Column":
        return self._cmp(">", other)

    def __ge__(self, other: object) -> "Column":
        return self._cmp(">=", other)

    # -- arithmetic ---------------------------------------------------------
    def _arith(self, op: str, other: object, reverse: bool = False) -> "Column":
        left, right = self.expr, _to_expr(other)
        if reverse:
            left, right = right, left
        return Column(E.BinaryArithmetic(op, left, right))

    def __add__(self, other: object) -> "Column":
        return self._arith("+", other)

    def __radd__(self, other: object) -> "Column":
        return self._arith("+", other, reverse=True)

    def __sub__(self, other: object) -> "Column":
        return self._arith("-", other)

    def __rsub__(self, other: object) -> "Column":
        return self._arith("-", other, reverse=True)

    def __mul__(self, other: object) -> "Column":
        return self._arith("*", other)

    def __truediv__(self, other: object) -> "Column":
        return self._arith("/", other)

    def __mod__(self, other: object) -> "Column":
        return self._arith("%", other)

    # -- boolean -----------------------------------------------------------------
    def __and__(self, other: "Column") -> "Column":
        return Column(E.And(self.expr, _to_expr(other)))

    def __or__(self, other: "Column") -> "Column":
        return Column(E.Or(self.expr, _to_expr(other)))

    def __invert__(self) -> "Column":
        return Column(E.Not(self.expr))

    # -- misc ----------------------------------------------------------------------
    def alias(self, name: str) -> "Column":
        return Column(E.Alias(self.expr, name))

    def isin(self, *values: object) -> "Column":
        flat = values[0] if len(values) == 1 and isinstance(values[0], (list, tuple)) \
            else values
        return Column(E.In(self.expr, [_to_expr(v) for v in flat]))

    def like(self, pattern: str) -> "Column":
        return Column(E.Like(self.expr, pattern))

    def is_null(self) -> "Column":
        return Column(E.IsNull(self.expr))

    def is_not_null(self) -> "Column":
        return Column(E.IsNotNull(self.expr))

    def between(self, low: object, high: object) -> "Column":
        return Column(
            E.And(
                E.Comparison(">=", self.expr, _to_expr(low)),
                E.Comparison("<=", self.expr, _to_expr(high)),
            )
        )

    def asc(self) -> "Column":
        return self  # default ordering; order_by interprets desc() wrappers

    def desc(self) -> "Column":
        column = Column(self.expr)
        column._descending = True  # type: ignore[attr-defined]
        return column

    def __hash__(self) -> int:
        return id(self.expr)

    def __repr__(self) -> str:
        return f"Column({self.expr!r})"


def _to_expr(value: object) -> E.Expression:
    if isinstance(value, Column):
        return value.expr
    if isinstance(value, E.Expression):
        return value
    return E.lit_of(value)


def col(name: str) -> Column:
    """Reference a column; ``"t.x"`` resolves against qualifier ``t``."""
    if "." in name:
        qualifier, __, column_name = name.partition(".")
        return Column(E.UnresolvedAttribute(column_name, qualifier))
    return Column(E.UnresolvedAttribute(name))


def lit(value: object) -> Column:
    """A literal column."""
    return Column(E.lit_of(value))


def count(column: Union[str, Column, None] = None, distinct: bool = False) -> Column:
    """COUNT(*) / COUNT(col) / COUNT(DISTINCT col)."""
    if column is None or (isinstance(column, str) and column == "*"):
        return Column(E.Count(None))
    return Column(E.Count(_to_expr(col(column) if isinstance(column, str) else column),
                          distinct))


def sum_(column: Union[str, Column]) -> Column:
    """SUM aggregate."""
    return Column(E.Sum(_as_expr(column)))


def avg(column: Union[str, Column]) -> Column:
    """AVG aggregate."""
    return Column(E.Avg(_as_expr(column)))


def min_(column: Union[str, Column]) -> Column:
    """MIN aggregate."""
    return Column(E.Min(_as_expr(column)))


def max_(column: Union[str, Column]) -> Column:
    """MAX aggregate."""
    return Column(E.Max(_as_expr(column)))


def stddev(column: Union[str, Column]) -> Column:
    """Sample standard deviation aggregate."""
    return Column(E.StddevSamp(_as_expr(column)))


def expr(text: str) -> Column:
    """Parse an expression string into a Column (``expr("k + 1 as k2")``)."""
    from repro.sql.parser import parse_named_expression

    return Column(parse_named_expression(text))


def when(condition: Column, value: object) -> "CaseBuilder":
    """Start a CASE WHEN chain."""
    return CaseBuilder([(condition.expr, _to_expr(value))])


class CaseBuilder:
    """Fluent CASE WHEN builder: ``when(c, v).when(...).otherwise(d)``."""

    def __init__(self, branches) -> None:
        self._branches = branches

    def when(self, condition: Column, value: object) -> "CaseBuilder":
        return CaseBuilder(self._branches + [(condition.expr, _to_expr(value))])

    def otherwise(self, value: object) -> Column:
        return Column(E.CaseWhen(self._branches, _to_expr(value)))

    def end(self) -> Column:
        return Column(E.CaseWhen(self._branches, None))


def _as_expr(column: Union[str, Column]) -> E.Expression:
    if isinstance(column, str):
        return col(column).expr
    return column.expr

"""A Spark-SQL / Catalyst-like relational layer.

Parser -> unresolved logical plan -> analyzer (resolution against the temp
view catalog) -> rule-based optimizer (predicate pushdown, column pruning,
constant folding) -> planner (data-source pushdown via the Data Source API,
join strategy selection) -> physical operators compiled onto the engine's
RDDs.  The ``DataFrame`` API and ``SparkSession``-style entry point mirror
the programming surface the paper's code listings use.
"""

from repro.sql.dataframe import DataFrame
from repro.sql.functions import avg, col, count, expr, lit, max_, min_, stddev, sum_, when
from repro.sql.row import Row
from repro.sql.session import SparkSession
from repro.sql.types import (
    BinaryType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    LongType,
    ShortType,
    StringType,
    StructField,
    StructType,
    TimestampType,
)

__all__ = [
    "SparkSession",
    "DataFrame",
    "Row",
    "col",
    "lit",
    "expr",
    "when",
    "count",
    "sum_",
    "avg",
    "min_",
    "max_",
    "stddev",
    "StructType",
    "StructField",
    "StringType",
    "IntegerType",
    "LongType",
    "ShortType",
    "ByteType",
    "FloatType",
    "DoubleType",
    "BooleanType",
    "BinaryType",
    "TimestampType",
]

"""A DB-API 2.0 style interface over SparkSession -- the "JDBC" of Figure 1.

The paper's architecture exposes SHC through JDBC alongside the language
shells; this module provides the Python equivalent: ``connect(session)``
returns a :class:`Connection` whose cursors execute SQL against the session
and expose ``description`` / ``fetchone`` / ``fetchmany`` / ``fetchall``
with standard semantics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.common.errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sql.session import SparkSession

apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections
paramstyle = "qmark"


class Error(SqlError):
    """DB-API base error."""


class InterfaceError(Error):
    """Misuse of the connection/cursor objects."""


class ProgrammingError(Error):
    """Bad SQL or parameters."""


def connect(session: "SparkSession") -> "Connection":
    """Open a DB-API connection over an existing session."""
    return Connection(session)


class Connection:
    """A lightweight handle; closing it closes its cursors."""

    def __init__(self, session: "SparkSession") -> None:
        self._session = session
        self._closed = False
        self._cursors: List[Cursor] = []

    def cursor(self) -> "Cursor":
        self._check_open()
        cursor = Cursor(self._session, self)
        self._cursors.append(cursor)
        return cursor

    def close(self) -> None:
        for cursor in self._cursors:
            cursor.close()
        self._closed = True

    def commit(self) -> None:
        self._check_open()  # autocommit semantics; present for the API shape

    def rollback(self) -> None:
        raise InterfaceError("transactions are not supported")

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Cursor:
    """Executes statements and buffers their results."""

    arraysize = 1

    def __init__(self, session: "SparkSession", connection: Connection) -> None:
        self._session = session
        self._connection = connection
        self._closed = False
        self._rows: Optional[List[tuple]] = None
        self._pos = 0
        self.description: Optional[List[tuple]] = None
        self.rowcount = -1
        #: simulated seconds of the last execute (an extension)
        self.last_query_seconds: Optional[float] = None

    # -- execution ---------------------------------------------------------
    def execute(self, operation: str,
                parameters: Sequence[object] = ()) -> "Cursor":
        self._check_open()
        sql = _bind_parameters(operation, parameters)
        result = self._session.sql(sql).run()
        self._rows = [tuple(r.values) for r in result.rows]
        self._pos = 0
        self.rowcount = len(self._rows)
        self.last_query_seconds = result.seconds
        self.description = [
            (field.name, field.dtype.name, None, None, None, None, True)
            for field in result.schema
        ]
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Sequence[Sequence[object]]) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    # -- fetching -----------------------------------------------------------
    def fetchone(self) -> Optional[tuple]:
        self._check_results()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[tuple]:
        self._check_results()
        count = size if size is not None else self.arraysize
        out = self._rows[self._pos:self._pos + count]
        self._pos += len(out)
        return out

    def fetchall(self) -> List[tuple]:
        self._check_results()
        out = self._rows[self._pos:]
        self._pos = len(self._rows)
        return out

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self) -> None:
        self._closed = True
        self._rows = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def _check_results(self) -> None:
        self._check_open()
        if self._rows is None:
            raise ProgrammingError("no query has been executed")


def _bind_parameters(operation: str, parameters: Sequence[object]) -> str:
    """Substitute ``?`` placeholders with SQL-escaped literals."""
    if not parameters:
        if "?" in operation:
            raise ProgrammingError("statement has placeholders but no parameters")
        return operation
    parts = operation.split("?")
    if len(parts) - 1 != len(parameters):
        raise ProgrammingError(
            f"statement has {len(parts) - 1} placeholders, "
            f"got {len(parameters)} parameters"
        )
    out = [parts[0]]
    for value, tail in zip(parameters, parts[1:]):
        out.append(_literal(value))
        out.append(tail)
    return "".join(out)


def _literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise ProgrammingError(f"cannot bind parameter of type {type(value).__name__}")

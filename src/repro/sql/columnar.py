"""Columnar batches and vectorized expression kernels.

The row-at-a-time interpreter walks a bound expression tree once per row --
for a 100k-row scan with a three-conjunct filter that is ~a million Python
frame pushes.  Vectorized execution amortises the dispatch: rows are packed
into :class:`RecordBatch` column vectors (``sql.vectorized.batchSize`` rows
per batch) and :func:`compile_kernel` turns a bound expression tree into a
closure evaluating one *column* per call, with the inner loops running as
list comprehensions over C-level iterators (``zip``, ``operator.lt``,
``itertools.compress``).

Semantics are bit-for-bit those of :mod:`repro.sql.expressions`: SQL
three-valued NULL logic, ``/ 0 -> NULL``, ``IN`` with NULL options, invalid
casts to NULL.  Any expression node the compiler does not understand makes
:func:`compile_kernel` return ``None`` and the planner keeps that operator
on the row path -- vectorization is an optimisation, never a semantics
change.  Parity is enforced by randomized kernel-vs-``eval`` tests
(``tests/sql/test_vectorized_kernels.py``).  See docs/vectorized.md.
"""

from __future__ import annotations

import itertools
import operator
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.sql import expressions as E
from repro.sql.types import BooleanType, StringType

#: a compiled kernel: (columns, num_rows) -> one output column
Kernel = Callable[[Sequence[list], int], list]


class RecordBatch:
    """A batch of rows in columnar layout: one list per output attribute.

    ``columns[i][r]`` is row ``r``'s value for attribute ``i``.  Zero-width
    batches (e.g. the input of a bare ``COUNT(*)``) keep only ``num_rows``.
    """

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns: Sequence[list], num_rows: int) -> None:
        self.columns = list(columns)
        self.num_rows = num_rows

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "RecordBatch":
        """Transpose row tuples into column vectors (C-speed ``zip``)."""
        if not rows:
            return cls([[] for _ in range(width)], 0)
        if width == 0:
            return cls([], len(rows))
        return cls(list(zip(*rows)), len(rows))

    def to_rows(self) -> Iterator[tuple]:
        """Transpose back to row tuples (C-speed ``zip``)."""
        if not self.columns:
            return iter([()] * self.num_rows)
        return zip(*self.columns)

    def __len__(self) -> int:
        return self.num_rows


def batches_from_rows(rows: Iterable[tuple], width: int,
                      batch_size: int) -> Iterator[RecordBatch]:
    """Slice a row stream into :class:`RecordBatch` chunks of ``batch_size``."""
    it = iter(rows)
    while True:
        chunk = list(itertools.islice(it, batch_size))
        if not chunk:
            return
        yield RecordBatch.from_rows(chunk, width)


def rows_from_batches(batches: Iterable[RecordBatch]) -> Iterator[tuple]:
    """Flatten a batch stream back into row tuples."""
    for batch in batches:
        yield from batch.to_rows()


def apply_mask(batch: RecordBatch, mask: Sequence[object]) -> RecordBatch:
    """Keep the rows whose mask entry is exactly ``True``.

    Predicate kernels produce only ``True``/``False``/``None``; of those
    only ``True`` is truthy, so :func:`itertools.compress` implements the
    SQL keep-on-True rule directly.
    """
    if not batch.columns:
        return RecordBatch([], sum(1 for m in mask if m is True))
    columns = [list(itertools.compress(col, mask)) for col in batch.columns]
    return RecordBatch(columns, len(columns[0]))


# -- the kernel compiler ------------------------------------------------------

_CMP_FNS = {
    "=": operator.eq, "!=": operator.ne, "<": operator.lt,
    "<=": operator.le, ">": operator.gt, ">=": operator.ge,
}
_ARITH_FNS = {"+": operator.add, "-": operator.sub, "*": operator.mul}


def _binary_null_propagating(fn, left: Kernel, right: Kernel) -> Kernel:
    def kernel(cols: Sequence[list], n: int) -> list:
        return [None if a is None or b is None else fn(a, b)
                for a, b in zip(left(cols, n), right(cols, n))]

    return kernel


def _compile_division(op: str, left: Kernel, right: Kernel) -> Kernel:
    fn = operator.truediv if op == "/" else operator.mod

    def kernel(cols: Sequence[list], n: int) -> list:
        return [None if a is None or b is None else
                (fn(a, b) if b != 0 else None)
                for a, b in zip(left(cols, n), right(cols, n))]

    return kernel


def _compile_in(expr: E.In, value: Kernel) -> Optional[Kernel]:
    # only literal option lists vectorize; the row path's linear ``==``
    # probe and a set membership test agree for hashable scalar literals
    if not all(isinstance(o, E.Literal) for o in expr.options):
        return None
    present = {o.value for o in expr.options if o.value is not None}
    saw_null = any(o.value is None for o in expr.options)
    miss = None if saw_null else False

    def kernel(cols: Sequence[list], n: int) -> list:
        return [None if v is None else (True if v in present else miss)
                for v in value(cols, n)]

    return kernel


def _compile_case(expr: E.CaseWhen) -> Optional[Kernel]:
    branch_fns = []
    for cond, value in expr.branches():
        cond_fn = compile_kernel(cond)
        value_fn = compile_kernel(value)
        if cond_fn is None or value_fn is None:
            return None
        branch_fns.append((cond_fn, value_fn))
    tail = expr.else_value()
    else_fn = compile_kernel(tail) if tail is not None else None
    if tail is not None and else_fn is None:
        return None

    def kernel(cols: Sequence[list], n: int) -> list:
        out = list(else_fn(cols, n)) if else_fn is not None else [None] * n
        # apply branches last-to-first so the first matching WHEN wins
        for cond_fn, value_fn in reversed(branch_fns):
            out = [v if c is True else o
                   for c, v, o in zip(cond_fn(cols, n), value_fn(cols, n), out)]
        return out

    return kernel


def _compile_cast(expr: E.Cast, child: Kernel) -> Kernel:
    dtype = expr.dtype
    if dtype is BooleanType:
        convert: Callable = bool
    elif dtype is StringType:
        convert = str
    elif dtype.python_type is int:
        convert = int
    elif dtype.python_type is float:
        convert = float
    else:
        convert = lambda v: v  # noqa: E731 - identity cast

    def cast_one(v: object) -> object:
        try:
            return convert(v)
        except (TypeError, ValueError):
            return None

    def kernel(cols: Sequence[list], n: int) -> list:
        return [None if v is None else cast_one(v) for v in child(cols, n)]

    return kernel


def compile_kernel(expr: E.Expression) -> Optional[Kernel]:
    """Compile a *bound* expression into a column kernel, or ``None``.

    ``None`` means "not vectorizable": the caller must leave the enclosing
    operator on the row path.  The compiled closure returns a fresh column
    whose element ``r`` equals ``expr.eval(row_r)`` for every row of the
    batch -- the parity contract the property tests pin down.
    """
    if isinstance(expr, E.Alias):
        return compile_kernel(expr.child)
    if isinstance(expr, E.BoundReference):
        ordinal = expr.ordinal

        return lambda cols, n: cols[ordinal]
    if isinstance(expr, E.Literal):
        value = expr.value

        return lambda cols, n: [value] * n
    if isinstance(expr, (E.Comparison, E.BinaryArithmetic)):
        left = compile_kernel(expr.children[0])
        right = compile_kernel(expr.children[1])
        if left is None or right is None:
            return None
        if isinstance(expr, E.Comparison):
            return _binary_null_propagating(_CMP_FNS[expr.op], left, right)
        if expr.op in _ARITH_FNS:
            return _binary_null_propagating(_ARITH_FNS[expr.op], left, right)
        return _compile_division(expr.op, left, right)
    if isinstance(expr, E.And):
        left = compile_kernel(expr.children[0])
        right = compile_kernel(expr.children[1])
        if left is None or right is None:
            return None

        def and_kernel(cols: Sequence[list], n: int) -> list:
            return [False if a is False or b is False else
                    (None if a is None or b is None else True)
                    for a, b in zip(left(cols, n), right(cols, n))]

        return and_kernel
    if isinstance(expr, E.Or):
        left = compile_kernel(expr.children[0])
        right = compile_kernel(expr.children[1])
        if left is None or right is None:
            return None

        def or_kernel(cols: Sequence[list], n: int) -> list:
            return [True if a is True or b is True else
                    (None if a is None or b is None else False)
                    for a, b in zip(left(cols, n), right(cols, n))]

        return or_kernel
    if isinstance(expr, E.Not):
        child = compile_kernel(expr.children[0])
        if child is None:
            return None
        return lambda cols, n: [None if v is None else (not v)
                                for v in child(cols, n)]
    if isinstance(expr, E.IsNull):
        child = compile_kernel(expr.children[0])
        if child is None:
            return None
        return lambda cols, n: [v is None for v in child(cols, n)]
    if isinstance(expr, E.IsNotNull):
        child = compile_kernel(expr.children[0])
        if child is None:
            return None
        return lambda cols, n: [v is not None for v in child(cols, n)]
    if isinstance(expr, E.In):
        value = compile_kernel(expr.value)
        if value is None:
            return None
        return _compile_in(expr, value)
    if isinstance(expr, E.Like):
        child = compile_kernel(expr.children[0])
        if child is None:
            return None
        regex = expr._regex

        return lambda cols, n: [None if v is None else bool(regex.match(str(v)))
                                for v in child(cols, n)]
    if isinstance(expr, E.CaseWhen):
        return _compile_case(expr)
    if isinstance(expr, E.Cast):
        child = compile_kernel(expr.children[0])
        if child is None:
            return None
        return _compile_cast(expr, child)
    if isinstance(expr, E.ScalarFunction):
        args = [compile_kernel(c) for c in expr.children]
        if any(a is None for a in args):
            return None
        fn, __ = E.ScalarFunction._FUNCTIONS[expr.name]
        if len(args) == 1:
            only = args[0]

            return lambda cols, n: [fn((v,)) for v in only(cols, n)]

        def fn_kernel(cols: Sequence[list], n: int) -> list:
            return [fn(vals) for vals in zip(*(a(cols, n) for a in args))]

        return fn_kernel
    return None


def compile_bound(expr: E.Expression,
                  attrs: Sequence[E.Attribute]) -> Optional[Kernel]:
    """Bind ``expr`` against ``attrs`` and compile it; ``None`` if either fails."""
    try:
        bound = E.bind_expression(expr, attrs)
    except Exception:
        return None
    return compile_kernel(bound)


def supports_vectorized(expr: E.Expression,
                        attrs: Sequence[E.Attribute]) -> bool:
    """True when ``expr`` compiles to a kernel over ``attrs``' schema."""
    return compile_bound(expr, attrs) is not None


def key_tuples(key_kernels: Sequence[Kernel], cols: Sequence[list],
               n: int) -> Iterator[tuple]:
    """Row-order key tuples from per-key kernels (hash build/probe input)."""
    if not key_kernels:
        return iter(itertools.repeat((), n))
    return zip(*(k(cols, n) for k in key_kernels))


__all__: List[str] = [
    "Kernel",
    "RecordBatch",
    "apply_mask",
    "batches_from_rows",
    "compile_bound",
    "compile_kernel",
    "key_tuples",
    "rows_from_batches",
    "supports_vectorized",
]

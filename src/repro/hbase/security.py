"""Kerberos-like authentication and Hadoop-style delegation tokens.

Reproduces the security environment of section V.B.2: a KDC registers
principals and hands out keytabs; authenticating with a keytab yields a TGT;
a *secure service* (an HBase cluster) verifies Kerberos credentials and issues
expiring **delegation tokens** that later RPCs present instead of Kerberos.
``UserGroupInformation`` mirrors Hadoop's UGI: the per-user credential bag
that SHC's credentials manager populates before any HBase read or write.
"""

from __future__ import annotations

import base64
import itertools
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import SecurityError, TokenExpiredError
from repro.common.simclock import SimClock


@dataclass(frozen=True)
class Keytab:
    """A principal's long-lived secret, as stored in a keytab file."""

    principal: str
    secret: str


@dataclass(frozen=True)
class TicketGrantingTicket:
    """Proof of a successful Kerberos login."""

    principal: str
    issue_time: float
    expiry_time: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expiry_time


class KeyDistributionCenter:
    """The KDC: principal registry + login verification."""

    def __init__(self, clock: SimClock, ticket_lifetime_s: float = 24 * 3600.0) -> None:
        self._clock = clock
        self._ticket_lifetime = ticket_lifetime_s
        self._secrets: Dict[str, str] = {}
        self._secret_counter = itertools.count(1)

    def register_principal(self, principal: str) -> Keytab:
        """Create (or rotate) a principal and return its keytab."""
        secret = f"secret-{next(self._secret_counter)}"
        self._secrets[principal] = secret
        return Keytab(principal, secret)

    def login(self, keytab: Keytab) -> TicketGrantingTicket:
        """kinit: verify the keytab and issue a TGT."""
        expected = self._secrets.get(keytab.principal)
        if expected is None:
            raise SecurityError(f"unknown principal {keytab.principal}")
        if expected != keytab.secret:
            raise SecurityError(f"bad keytab for {keytab.principal}")
        now = self._clock.now()
        return TicketGrantingTicket(keytab.principal, now, now + self._ticket_lifetime)


@dataclass(frozen=True)
class DelegationToken:
    """An expiring, serialisable credential scoped to one service."""

    token_id: int
    service: str
    owner: str
    issue_time: float
    expiry_time: float
    max_lifetime: float

    def is_expired(self, now: float) -> bool:
        return now >= self.expiry_time

    def remaining_fraction(self, now: float) -> float:
        """Fraction of the token's lifetime still ahead (0 when expired)."""
        lifetime = self.expiry_time - self.issue_time
        if lifetime <= 0:
            return 0.0
        return max(0.0, (self.expiry_time - now) / lifetime)

    # -- wire format (section V.B.2: token serialization/deserialization) --
    def serialize(self) -> bytes:
        payload = {
            "token_id": self.token_id,
            "service": self.service,
            "owner": self.owner,
            "issue_time": self.issue_time,
            "expiry_time": self.expiry_time,
            "max_lifetime": self.max_lifetime,
        }
        return base64.b64encode(json.dumps(payload).encode("utf-8"))

    @staticmethod
    def deserialize(data: bytes) -> "DelegationToken":
        try:
            payload = json.loads(base64.b64decode(data).decode("utf-8"))
            return DelegationToken(**payload)
        except (ValueError, TypeError, KeyError) as exc:
            raise SecurityError(f"malformed delegation token: {exc}") from exc


class UserGroupInformation:
    """Hadoop-style per-user credential bag (principal + tokens by service)."""

    def __init__(self, user: str) -> None:
        self.user = user
        self._tokens: Dict[str, DelegationToken] = {}

    def add_token(self, token: DelegationToken) -> None:
        self._tokens[token.service] = token

    def get_token(self, service: str) -> Optional[DelegationToken]:
        return self._tokens.get(service)

    def tokens(self) -> Dict[str, DelegationToken]:
        return dict(self._tokens)

    def __repr__(self) -> str:
        return f"UserGroupInformation({self.user}, tokens={sorted(self._tokens)})"


class TokenAuthority:
    """The token-issuing side of one secure service (an HBase cluster)."""

    def __init__(
        self,
        service_name: str,
        kdc: KeyDistributionCenter,
        clock: SimClock,
        token_lifetime_s: float = 3600.0,
        max_lifetime_s: float = 7 * 24 * 3600.0,
    ) -> None:
        self.service_name = service_name
        self._kdc = kdc
        self._clock = clock
        self._token_lifetime = token_lifetime_s
        self._max_lifetime = max_lifetime_s
        self._ids = itertools.count(1)
        self._issued: Dict[int, DelegationToken] = {}

    def issue_token(self, keytab: Keytab) -> DelegationToken:
        """Authenticate via Kerberos and mint a delegation token."""
        tgt = self._kdc.login(keytab)
        now = self._clock.now()
        if tgt.is_expired(now):
            raise SecurityError(f"TGT for {keytab.principal} is expired")
        token = DelegationToken(
            token_id=next(self._ids),
            service=self.service_name,
            owner=keytab.principal,
            issue_time=now,
            expiry_time=now + self._token_lifetime,
            max_lifetime=now + self._max_lifetime,
        )
        self._issued[token.token_id] = token
        return token

    def renew_token(self, token: DelegationToken) -> DelegationToken:
        """Extend a token's expiry (up to its max lifetime)."""
        if token.token_id not in self._issued:
            raise SecurityError(f"token {token.token_id} was not issued by {self.service_name}")
        now = self._clock.now()
        if now >= token.max_lifetime:
            raise TokenExpiredError(
                f"token {token.token_id} passed its max lifetime; re-authenticate"
            )
        renewed = DelegationToken(
            token_id=token.token_id,
            service=token.service,
            owner=token.owner,
            issue_time=token.issue_time,
            expiry_time=min(now + self._token_lifetime, token.max_lifetime),
            max_lifetime=token.max_lifetime,
        )
        self._issued[token.token_id] = renewed
        return renewed

    def validate(self, token: Optional[DelegationToken]) -> None:
        """Gatekeeper check run on every RPC against a secure cluster."""
        if token is None:
            raise SecurityError(f"no credentials presented to {self.service_name}")
        if token.service != self.service_name:
            raise SecurityError(
                f"token for {token.service} presented to {self.service_name}"
            )
        issued = self._issued.get(token.token_id)
        if issued is None:
            raise SecurityError(f"token {token.token_id} unknown to {self.service_name}")
        if issued.is_expired(self._clock.now()):
            raise TokenExpiredError(f"token {token.token_id} is expired")


class KeytabStore:
    """Filesystem stand-in: keytab "paths" -> keytab objects.

    SHC configuration references keytabs by path (``spark.yarn.keytab``);
    deployments place the file on every node.  The store plays that role.
    """

    _store: Dict[str, Keytab] = {}

    @classmethod
    def install(cls, path: str, keytab: Keytab) -> None:
        cls._store[path] = keytab

    @classmethod
    def load(cls, path: str) -> Keytab:
        keytab = cls._store.get(path)
        if keytab is None:
            raise SecurityError(f"no keytab installed at {path!r}")
        return keytab

    @classmethod
    def clear(cls) -> None:
        cls._store.clear()

"""The HBase client API: Connections, Tables, Put/Get/Scan/Delete/Result.

Mirrors the pieces of ``org.apache.hadoop.hbase.client`` SHC programs against:
``ConnectionFactory.create_connection`` (the heavyweight operation SHC's
connection cache exists to avoid), ``Table`` with ``put``/``get``/``scan``/
``delete``/``bulk_get``, and builder-style ``Scan``/``Get``/``Put``/``Delete``
request objects.  Every data operation accepts a cost ledger and charges RPC
latency plus network transfer when the caller is not co-located with the
region server -- which is how data locality becomes measurable.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

import functools

from repro.common.errors import (
    HBaseError,
    OperationTimeoutError,
    RegionOfflineError,
    RetriesExhaustedError,
    TransientRpcError,
)
from repro.common.faults import FAULT_FILTER, FAULT_RPC, FAULT_STALE_META, FAULT_SCAN_STREAM
from repro.common.metrics import CostLedger
from repro.common.retry import RetryPolicy
from repro.hbase.cell import Cell, CellType
from repro.hbase.filters import Filter
from repro.hbase.master import RegionLocation
from repro.hbase.region import TimeRange
from repro.hbase.security import UserGroupInformation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster


class Configuration(dict):
    """String-keyed configuration (``hbase-site.xml`` stand-in).

    The key ``hbase.zookeeper.quorum`` names the target cluster; it is also
    what SHC's connection cache and credentials manager key their caches on.
    """

    QUORUM = "hbase.zookeeper.quorum"
    CLIENT_HOST = "hbase.client.host"
    #: retry-policy knobs, named after their real hbase-site counterparts
    RETRIES_NUMBER = "hbase.client.retries.number"
    CLIENT_PAUSE = "hbase.client.pause"
    CLIENT_PAUSE_MAX = "hbase.client.pause.max"
    OPERATION_TIMEOUT = "hbase.client.operation.timeout"

    def cluster_key(self) -> str:
        quorum = self.get(self.QUORUM)
        if not quorum:
            raise HBaseError(f"configuration is missing {self.QUORUM}")
        return quorum


# -- request/response objects ------------------------------------------------

class Put:
    """A batched mutation adding cells to one row."""

    def __init__(self, row: bytes) -> None:
        self.row = row
        self._cells: List[Tuple[str, str, bytes, Optional[int]]] = []

    def add_column(self, family: str, qualifier: str, value: bytes,
                   timestamp: Optional[int] = None) -> "Put":
        self._cells.append((family, qualifier, value, timestamp))
        return self

    def to_cells(self, default_ts: int) -> List[Cell]:
        return [
            Cell(self.row, family, qualifier, ts if ts is not None else default_ts, value)
            for family, qualifier, value, ts in self._cells
        ]

    def heap_size(self) -> int:
        return len(self.row) + sum(len(v) + len(f) + len(q) + 12 for f, q, v, __ in self._cells)


class Delete:
    """Tombstone mutation: whole row, one family, one column, or one version."""

    def __init__(self, row: bytes) -> None:
        self.row = row
        self._family_deletes: List[str] = []
        self._column_deletes: List[Tuple[str, str]] = []
        self._version_deletes: List[Tuple[str, str, int]] = []
        self._whole_row = True

    def add_family(self, family: str) -> "Delete":
        self._family_deletes.append(family)
        self._whole_row = False
        return self

    def add_column(self, family: str, qualifier: str,
                   timestamp: Optional[int] = None) -> "Delete":
        """Delete all versions of a column, or exactly one version when
        ``timestamp`` is given (HBase's ``Delete.addColumn(..., ts)``)."""
        if timestamp is None:
            self._column_deletes.append((family, qualifier))
        else:
            self._version_deletes.append((family, qualifier, timestamp))
        self._whole_row = False
        return self

    def to_cells(self, families: Sequence[str], default_ts: int) -> List[Cell]:
        if self._whole_row:
            return [
                Cell(self.row, family, "", default_ts, cell_type=CellType.DELETE_FAMILY)
                for family in families
            ]
        cells = [
            Cell(self.row, family, "", default_ts, cell_type=CellType.DELETE_FAMILY)
            for family in self._family_deletes
        ]
        cells.extend(
            Cell(self.row, family, qualifier, default_ts, cell_type=CellType.DELETE_COLUMN)
            for family, qualifier in self._column_deletes
        )
        cells.extend(
            Cell(self.row, family, qualifier, timestamp, cell_type=CellType.DELETE)
            for family, qualifier, timestamp in self._version_deletes
        )
        return cells


class Get:
    """A point read of one row."""

    def __init__(self, row: bytes) -> None:
        self.row = row
        self.columns: Optional[Set[Tuple[str, str]]] = None
        self.families: Optional[Set[str]] = None
        self.time_range: Optional[TimeRange] = None
        self.max_versions = 1

    def add_column(self, family: str, qualifier: str) -> "Get":
        if self.columns is None:
            self.columns = set()
        self.columns.add((family, qualifier))
        return self

    def add_family(self, family: str) -> "Get":
        if self.families is None:
            self.families = set()
        self.families.add(family)
        return self

    def set_time_range(self, min_ts: int, max_ts: int) -> "Get":
        self.time_range = TimeRange(min_ts, max_ts)
        return self

    def set_max_versions(self, n: int) -> "Get":
        self.max_versions = n
        return self


class Scan:
    """A range read ``[start_row, stop_row)`` with optional server-side filter."""

    def __init__(self, start_row: bytes = b"", stop_row: Optional[bytes] = None) -> None:
        self.start_row = start_row
        self.stop_row = stop_row
        self.columns: Optional[Set[Tuple[str, str]]] = None
        self.families: Optional[Set[str]] = None
        self.filter: Optional[Filter] = None
        self.time_range: Optional[TimeRange] = None
        self.max_versions = 1
        #: rows fetched per RPC round trip (HBase scanner caching)
        self.caching = 1000

    def add_column(self, family: str, qualifier: str) -> "Scan":
        if self.columns is None:
            self.columns = set()
        self.columns.add((family, qualifier))
        return self

    def add_family(self, family: str) -> "Scan":
        if self.families is None:
            self.families = set()
        self.families.add(family)
        return self

    def set_filter(self, row_filter: Filter) -> "Scan":
        self.filter = row_filter
        return self

    def set_time_range(self, min_ts: int, max_ts: int) -> "Scan":
        self.time_range = TimeRange(min_ts, max_ts)
        return self

    def set_timestamp(self, timestamp: int) -> "Scan":
        self.time_range = TimeRange(timestamp, timestamp + 1)
        return self

    def set_max_versions(self, n: int) -> "Scan":
        self.max_versions = n
        return self

    def set_caching(self, rows_per_rpc: int) -> "Scan":
        if rows_per_rpc <= 0:
            raise ValueError("caching must be positive")
        self.caching = rows_per_rpc
        return self


class Result:
    """One row returned by Get/Scan: the row key plus its visible cells."""

    def __init__(self, row: bytes, cells: Sequence[Cell]) -> None:
        self.row = row
        self.cells = list(cells)

    def get_value(self, family: str, qualifier: str) -> Optional[bytes]:
        """Newest value of one column, or None."""
        for cell in self.cells:  # cells arrive newest-first per column
            if cell.family == family and cell.qualifier == qualifier:
                return cell.value
        return None

    def cells_map(self) -> Dict[Tuple[str, str], bytes]:
        """Newest value per (family, qualifier)."""
        out: Dict[Tuple[str, str], bytes] = {}
        for cell in self.cells:
            out.setdefault((cell.family, cell.qualifier), cell.value)
        return out

    def is_empty(self) -> bool:
        return not self.cells

    def size_bytes(self) -> int:
        return sum(c.heap_size() for c in self.cells)

    def __repr__(self) -> str:
        return f"Result({self.row!r}, {len(self.cells)} cells)"


# -- connections ----------------------------------------------------------------

class Connection:
    """A live client connection to one cluster, with a meta-location cache.

    A pooled connection is shared by every executor-slot thread of a task
    runner, so the meta cache is guarded by a lock: lookups snapshot under
    it and invalidation never races an in-progress read.
    """

    _ids = itertools.count(1)

    def __init__(self, conf: Configuration, ugi: Optional[UserGroupInformation] = None) -> None:
        from repro.hbase.cluster import get_cluster  # local import: cycle guard

        self.conf = conf
        self.cluster: "HBaseCluster" = get_cluster(conf.cluster_key())
        self.ugi = ugi
        self.client_host = conf.get(Configuration.CLIENT_HOST, "client")
        self.connection_id = next(Connection._ids)
        self.closed = False
        self._meta_lock = threading.Lock()
        self._location_cache: Dict[str, List[RegionLocation]] = {}
        timeout = conf.get(Configuration.OPERATION_TIMEOUT)
        self.retry_policy = RetryPolicy(
            max_attempts=int(conf.get(Configuration.RETRIES_NUMBER, 4)),
            base_backoff_s=float(conf.get(Configuration.CLIENT_PAUSE, 0.05)),
            max_backoff_s=float(conf.get(Configuration.CLIENT_PAUSE_MAX, 2.0)),
            deadline_s=float(timeout) if timeout is not None else None,
        )
        # connection setup really is heavyweight: ZooKeeper round trips + meta
        self.cluster.metrics.incr("hbase.connections_created")
        self.cluster.on_connection_created()

    def get_table(self, name: str) -> "Table":
        self._check_open()
        return Table(self, name)

    def region_locations(self, table_name: str) -> List[RegionLocation]:
        """Locations for a table, cached client-side like HBase's meta cache."""
        self._check_open()
        with self._meta_lock:
            cached = self._location_cache.get(table_name)
        if cached is None:
            cached = self.cluster.active_master.region_locations(table_name)
            with self._meta_lock:
                self._location_cache[table_name] = cached
        return cached

    def invalidate_location_cache(self, table_name: Optional[str] = None) -> None:
        with self._meta_lock:
            if table_name is None:
                self._location_cache.clear()
            else:
                self._location_cache.pop(table_name, None)

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise HBaseError("connection is closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"Connection(#{self.connection_id} -> {self.cluster.name}, {state})"


class ConnectionFactory:
    """Creates connections.  Each call is expensive; see SHC's connection cache."""

    @staticmethod
    def create_connection(conf: Configuration,
                          ugi: Optional[UserGroupInformation] = None) -> Connection:
        return Connection(conf, ugi)


def _retries(method):
    """Retry with fresh meta + capped exponential backoff on retryable errors.

    Mirrors HBase's retrying caller: NotServingRegion-style errors (a region
    that split, merged, balanced or failed over) invalidate the cached
    location so the retry relocates; transient RPC failures just back off.
    Backoff follows the connection's :class:`~repro.common.retry.RetryPolicy`
    and is charged as *simulated* seconds to the operation's cost ledger, so
    recovery latency shows up in query time like any other work.  Exhausting
    the policy raises :class:`RetriesExhaustedError`; exceeding the optional
    per-operation deadline raises :class:`OperationTimeoutError`.
    """
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        ledger = kwargs.get("ledger")
        if ledger is None:
            for value in args:
                if isinstance(value, CostLedger):
                    ledger = value
                    break
        if ledger is None:
            # retries of a ledger-less call still need one place to
            # accumulate backoff for the deadline check
            ledger = CostLedger()
            kwargs["ledger"] = ledger
        policy = self.connection.retry_policy
        start_s = ledger.seconds
        attempt = 0
        while True:
            try:
                return method(self, *args, **kwargs)
            except (RegionOfflineError, TransientRpcError) as exc:
                if isinstance(exc, RegionOfflineError):
                    self.connection.invalidate_location_cache(self.name)
                attempt += 1
                if not policy.allows_retry(attempt):
                    raise RetriesExhaustedError(
                        f"{method.__name__} on {self.name} failed after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                backoff = policy.backoff_s(attempt, key=(self.name, method.__name__))
                # admission-queue wait counts against the operation deadline:
                # the timeout caps queue wait + attempts + backoff together
                spent = ledger.seconds - start_s + ledger.queued_s
                if not policy.within_deadline(spent + backoff):
                    raise OperationTimeoutError(
                        f"{method.__name__} on {self.name} exceeded its "
                        f"{policy.deadline_s:g}s operation deadline after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                ledger.charge(backoff, "hbase.backoff_s", backoff)
                ledger.count("hbase.retries")
                # the scheduler parks the running attempt's span on the
                # ledger when tracing is on; record the retry against it
                span = getattr(ledger, "trace_span", None)
                if span is not None and span.enabled:
                    span.event("hbase-retry", op=method.__name__,
                               table=self.name, attempt=attempt,
                               backoff_s=backoff)

    return wrapper


class Table:
    """Client handle for data-plane operations on one table."""

    def __init__(self, connection: Connection, name: str) -> None:
        self.connection = connection
        self.name = name
        self.cluster = connection.cluster
        self._cost = self.cluster.cost
        # fail fast on unknown tables, like HBase's table existence check
        self.cluster.active_master.describe_table(name)

    # -- security -----------------------------------------------------------
    def _check_auth(self) -> None:
        if not self.cluster.secure:
            return
        ugi = self.connection.ugi
        token = ugi.get_token(self.cluster.service_name) if ugi else None
        self.cluster.token_authority.validate(token)

    # -- RPC cost helpers ------------------------------------------------------
    def _charge_rpc(self, ledger: CostLedger, server_host: str, payload_bytes: int,
                    rpcs: int = 1) -> None:
        ledger.charge(self._cost.rpc_latency_s * rpcs, "hbase.rpcs", rpcs)
        if server_host != self.connection.client_host:
            ledger.charge(
                payload_bytes / self._cost.network_bytes_per_sec,
                "hbase.network_bytes", payload_bytes,
            )
        else:
            # co-located transfers still serialise across the process
            # boundary; data locality saves the wire, not the copy
            ledger.charge(
                payload_bytes / self._cost.local_ipc_bytes_per_sec,
                "hbase.local_ipc_bytes", payload_bytes,
            )

    def _fault(self, point: str, key: str, ledger: Optional[CostLedger] = None,
               **ctx) -> object:
        """Consult the cluster's fault injector at one fault point (or no-op)."""
        faults = self.cluster.faults
        if faults is None:
            return None
        return faults.check(point, key=key, ledger=ledger,
                            cluster=self.cluster, **ctx)

    def _locate(self, row: bytes) -> RegionLocation:
        self._fault(FAULT_STALE_META, self.name)
        for location in self.connection.region_locations(self.name):
            if row < location.start_row:
                continue
            if not location.end_row or row < location.end_row:
                return location
        # stale meta: the cached layout no longer covers the row, so drop it
        # and let the retry policy relocate instead of failing outright
        self.connection.invalidate_location_cache(self.name)
        raise RegionOfflineError(
            f"no region of {self.name} holds row {row!r} (stale meta?)"
        )

    # -- writes ------------------------------------------------------------------
    @_retries
    def put(self, puts: "Put | Iterable[Put]", ledger: Optional[CostLedger] = None) -> None:
        """Apply one or many Puts, batched per region server."""
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        batch = [puts] if isinstance(puts, Put) else list(puts)
        now_ms = self.cluster.clock.now_millis()
        by_region: Dict[str, List[Cell]] = {}
        locations: Dict[str, RegionLocation] = {}
        for put in batch:
            location = self._locate(put.row)
            by_region.setdefault(location.region_name, []).extend(put.to_cells(now_ms))
            locations[location.region_name] = location
        for region_name, cells in by_region.items():
            location = locations[region_name]
            self._fault(FAULT_RPC, region_name, ledger,
                        server_id=location.server_id)
            server = self.cluster.region_servers[location.server_id]
            payload = sum(c.heap_size() for c in cells)
            self._charge_rpc(ledger, location.host, payload)
            server.put(region_name, cells, ledger)

    @_retries
    def delete(self, delete: Delete, ledger: Optional[CostLedger] = None) -> None:
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        descriptor = self.cluster.active_master.describe_table(self.name)
        cells = delete.to_cells(descriptor.families, self.cluster.clock.now_millis())
        location = self._locate(delete.row)
        self._fault(FAULT_RPC, location.region_name, ledger,
                    server_id=location.server_id)
        server = self.cluster.region_servers[location.server_id]
        self._charge_rpc(ledger, location.host, sum(c.heap_size() for c in cells))
        server.put(location.region_name, cells, ledger)

    # -- reads -------------------------------------------------------------------
    @_retries
    def get(self, get: Get, ledger: Optional[CostLedger] = None) -> Result:
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        location = self._locate(get.row)
        self._fault(FAULT_RPC, location.region_name, ledger,
                    server_id=location.server_id)
        server = self.cluster.region_servers[location.server_id]
        hit = server.get(
            location.region_name, get.row, get.columns, get.families,
            get.time_range, get.max_versions, ledger,
        )
        payload = sum(c.heap_size() for __, cells in [hit] for c in cells) if hit else 0
        self._charge_rpc(ledger, location.host, payload)
        if hit is None:
            return Result(get.row, [])
        return Result(hit[0], hit[1])

    @_retries
    def bulk_get(self, gets: Sequence[Get], ledger: Optional[CostLedger] = None) -> List[Result]:
        """Batched Gets grouped per region server -- HBase's multi-get."""
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        by_server: Dict[str, List[Tuple[Get, RegionLocation]]] = {}
        for get in gets:
            location = self._locate(get.row)
            by_server.setdefault(location.server_id, []).append((get, location))
        results: Dict[bytes, Result] = {}
        for server_id, group in by_server.items():
            self._fault(FAULT_RPC, group[0][1].region_name, ledger,
                        server_id=server_id)
            server = self.cluster.region_servers[server_id]
            payload = 0
            for get, location in group:
                hit = server.get(
                    location.region_name, get.row, get.columns, get.families,
                    get.time_range, get.max_versions, ledger,
                )
                result = Result(get.row, hit[1] if hit else [])
                payload += result.size_bytes()
                results[get.row] = result
            # a single multi-get RPC per server carries the whole batch
            self._charge_rpc(ledger, group[0][1].host, payload)
        return [results[g.row] for g in gets]

    @_retries
    def increment(self, row: bytes, family: str, qualifier: str,
                  amount: int = 1,
                  ledger: Optional[CostLedger] = None) -> int:
        """Atomic counter increment (HBase ``Table.incrementColumnValue``)."""
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        location = self._locate(row)
        self._fault(FAULT_RPC, location.region_name, ledger,
                    server_id=location.server_id)
        server = self.cluster.region_servers[location.server_id]
        self._charge_rpc(ledger, location.host, 16)
        return server.increment(
            location.region_name, row, family, qualifier, amount,
            self.cluster.clock.now_millis(), ledger,
        )

    @_retries
    def check_and_put(self, row: bytes, family: str, qualifier: str,
                      expected: Optional[bytes], put: "Put",
                      ledger: Optional[CostLedger] = None) -> bool:
        """Atomic compare-and-set (HBase ``Table.checkAndPut``)."""
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        location = self._locate(row)
        server = self.cluster.region_servers[location.server_id]
        cells = put.to_cells(self.cluster.clock.now_millis())
        self._charge_rpc(ledger, location.host,
                         sum(c.heap_size() for c in cells))
        return server.check_and_put(
            location.region_name, row, family, qualifier, expected, cells,
            ledger,
        )

    @_retries
    def scan(self, scan: Scan, ledger: Optional[CostLedger] = None) -> List[Result]:
        """Run a scan across every region overlapping the range."""
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        results: List[Result] = []
        for location in self.connection.region_locations(self.name):
            if scan.stop_row is not None and location.start_row and location.start_row >= scan.stop_row:
                continue
            if location.end_row and scan.start_row and location.end_row <= scan.start_row:
                continue
            results.extend(self.scan_region(location, scan, ledger))
        return results

    def scan_region(self, location: RegionLocation, scan: Scan,
                    ledger: Optional[CostLedger] = None) -> Iterable[Result]:
        """Scan a single region -- the primitive SHC's scan RDD is built on.

        Fault-free this returns the full result list with one lump RPC
        charge, byte-identical to what it always did.  With a fault injector
        installed it returns a page-at-a-time iterator instead, so the
        ``hbase.scan_stream`` fault point can crash the server *between*
        pages -- the situation resumable scans exist for -- while the summed
        per-page charges equal the lump charge.
        """
        self._check_auth()
        ledger = ledger if ledger is not None else CostLedger()
        if location.replica_id:
            # tag the read with its replica provenance: the counter feeds
            # the replication bench, the span event feeds trace inspection
            ledger.count("hbase.replica.reads")
            span = getattr(ledger, "trace_span", None)
            if span is not None and span.enabled:
                span.event("replica-read", region=location.region_name,
                           server=location.server_id,
                           replica_id=location.replica_id)
        faults = self.cluster.faults
        if faults is not None:
            self._fault(FAULT_STALE_META, location.region_name, ledger)
            self._fault(FAULT_RPC, location.region_name, ledger,
                        server_id=location.server_id)
            if scan.filter is not None:
                self._fault(FAULT_FILTER, location.region_name, ledger)
        server = self.cluster.region_servers[location.server_id]
        rows = server.scan(
            location.region_name,
            start_row=scan.start_row,
            stop_row=scan.stop_row,
            columns=scan.columns,
            families=scan.families,
            row_filter=scan.filter,
            time_range=scan.time_range,
            max_versions=scan.max_versions,
            ledger=ledger,
        )
        results = [Result(row, cells) for row, cells in rows]
        if faults is None:
            payload = sum(r.size_bytes() for r in results)
            rpcs = max(1, -(-len(results) // scan.caching))  # ceil division
            self._charge_rpc(ledger, location.host, payload, rpcs=rpcs)
            return results
        return self._stream_scan_pages(location, scan, results, ledger)

    def _stream_scan_pages(self, location: RegionLocation, scan: Scan,
                           results: List[Result],
                           ledger: CostLedger) -> Iterable[Result]:
        """Yield scan results one scanner-caching page per simulated RPC.

        Only used under fault injection: each page consults the
        ``hbase.scan_stream`` fault point first, so an injected crash aborts
        the stream after some rows were already delivered -- exactly the
        mid-scan failure a resumable scan has to survive.
        """
        pages = [results[i:i + scan.caching]
                 for i in range(0, len(results), scan.caching)]
        if not pages:  # empty scans still cost one RPC round trip
            pages = [[]]
        for page in pages:
            self._fault(FAULT_SCAN_STREAM, location.region_name, ledger,
                        server_id=location.server_id)
            payload = sum(r.size_bytes() for r in page)
            self._charge_rpc(ledger, location.host, payload, rpcs=1)
            for result in page:
                yield result

"""The HMaster: table DDL, region assignment, balancing, failure handling.

Masters are elected through ZooKeeper; the active master persists table
descriptors and the region assignment map into znodes, so a standby that wins
the next election rebuilds the full administrative state (section VI.B).
Region *data* itself lives in store files ("HDFS" = the cluster's persistent
region registry), which is why a region-server crash loses only unflushed
memstore edits -- and those are recovered from the dead server's WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.common.errors import HBaseError, NoSuchTableError, TableExistsError
from repro.hbase.region import Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hbase.cluster import HBaseCluster

TABLES_ZNODE = "/hbase/tables"
ASSIGN_ZNODE = "/hbase/assignments"
ELECTION_ZNODE = "/hbase/master-election"
ATTRS_ZNODE = "/hbase/table-attrs"


@dataclass(frozen=True)
class TableDescriptor:
    """Schema-level metadata for one table."""

    name: str
    families: tuple
    max_versions: int = 3

    def to_json(self) -> dict:
        return {"name": self.name, "families": list(self.families), "max_versions": self.max_versions}

    @staticmethod
    def from_json(data: dict) -> "TableDescriptor":
        return TableDescriptor(data["name"], tuple(data["families"]), data["max_versions"])


@dataclass(frozen=True)
class RegionLocation:
    """Where one region lives: its key range and its hosting server.

    ``replica_id`` 0 is the primary; read replicas (docs/replication.md)
    surface as additional locations with the secondary's server/host and a
    positive id, so a scan routed there carries its provenance along.
    """

    region_name: str
    table_name: str
    start_row: bytes
    end_row: bytes
    server_id: str
    host: str
    replica_id: int = 0


class HMaster:
    """One master process; at most one is active at a time."""

    def __init__(self, name: str, cluster: "HBaseCluster") -> None:
        self.name = name
        self.cluster = cluster
        self.session_id = cluster.zookeeper.create_session()
        self._candidate_path = cluster.zookeeper.elect(ELECTION_ZNODE, name, self.session_id)
        self.tables: Dict[str, TableDescriptor] = {}
        #: free-form metadata riding with the schema (e.g. ANALYZE stats)
        self.table_attributes: Dict[str, Dict[str, str]] = {}
        self.assignments: Dict[str, str] = {}  # region name -> server id
        if self.is_active():
            self._load_state()

    # -- election ---------------------------------------------------------
    def is_active(self) -> bool:
        return self.cluster.zookeeper.leader(ELECTION_ZNODE) == self.name

    def fail(self) -> None:
        """Kill this master; its ephemeral election node disappears."""
        self.cluster.zookeeper.expire_session(self.session_id)

    def take_over(self) -> None:
        """Called on a standby after the active master died: rebuild state."""
        if not self.is_active():
            raise HBaseError(f"{self.name} is not the election leader")
        self._load_state()

    def _require_active(self) -> None:
        if not self.is_active():
            raise HBaseError(f"master {self.name} is in standby mode")

    # -- persistence --------------------------------------------------------
    def _load_state(self) -> None:
        zk = self.cluster.zookeeper
        if zk.exists(TABLES_ZNODE):
            raw = zk.get_json(TABLES_ZNODE)
            self.tables = {n: TableDescriptor.from_json(d) for n, d in raw.items()}
        if zk.exists(ASSIGN_ZNODE):
            self.assignments = dict(zk.get_json(ASSIGN_ZNODE))
        if zk.exists(ATTRS_ZNODE):
            self.table_attributes = {
                n: dict(v) for n, v in zk.get_json(ATTRS_ZNODE).items()
            }

    def _save_state(self) -> None:
        zk = self.cluster.zookeeper
        zk.set_json(TABLES_ZNODE, {n: d.to_json() for n, d in self.tables.items()})
        zk.set_json(ASSIGN_ZNODE, self.assignments)
        zk.set_json(ATTRS_ZNODE, self.table_attributes)

    # -- DDL ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        families: Sequence[str],
        split_keys: Optional[Sequence[bytes]] = None,
        max_versions: int = 3,
    ) -> TableDescriptor:
        """Create a table pre-split at ``split_keys`` (sorted, exclusive starts)."""
        self._require_active()
        if name in self.tables:
            raise TableExistsError(f"table {name} already exists")
        if not families:
            raise HBaseError("a table needs at least one column family")
        descriptor = TableDescriptor(name, tuple(families), max_versions)
        self.tables[name] = descriptor

        boundaries: List[bytes] = [b""]
        for key in sorted(set(split_keys or [])):
            if key:
                boundaries.append(key)
        for i, start in enumerate(boundaries):
            end = boundaries[i + 1] if i + 1 < len(boundaries) else b""
            region = Region(name, list(families), start, end,
                            flush_threshold=self.cluster.flush_threshold)
            self.cluster.register_region(region)
            self._assign(region)
        self._save_state()
        return descriptor

    def drop_table(self, name: str) -> None:
        self._require_active()
        if name not in self.tables:
            raise NoSuchTableError(f"table {name} does not exist")
        for region_name in [r for r, __ in self._table_regions(name)]:
            server = self.cluster.region_servers.get(self.assignments.pop(region_name, ""))
            if server is not None and server.alive and region_name in server.regions:
                server.close_region(region_name)
            self.cluster.unregister_region(region_name)
        del self.tables[name]
        self.table_attributes.pop(name, None)
        self._save_state()

    def set_table_attribute(self, name: str, key: str, value: str) -> None:
        """Attach one metadata attribute to a table, persisted like schema.

        Survives master failover through the same ZooKeeper znode replay
        as the table descriptors (the stats catalog rides on this).
        """
        self._require_active()
        if name not in self.tables:
            raise NoSuchTableError(f"table {name} does not exist")
        self.table_attributes.setdefault(name, {})[key] = value
        self._save_state()

    def get_table_attribute(self, name: str, key: str) -> Optional[str]:
        if name not in self.tables:
            raise NoSuchTableError(f"table {name} does not exist")
        return self.table_attributes.get(name, {}).get(key)

    def describe_table(self, name: str) -> TableDescriptor:
        descriptor = self.tables.get(name)
        if descriptor is None:
            raise NoSuchTableError(f"table {name} does not exist")
        return descriptor

    # -- assignment -------------------------------------------------------------
    def _assign(self, region: Region, replay_wal=None) -> None:
        """Place a region on the least-loaded live server."""
        servers = [s for s in self.cluster.region_servers.values() if s.alive]
        if not servers:
            raise HBaseError("no live region servers")
        target = min(servers, key=lambda s: len(s.regions))
        target.open_region(region, replay_wal=replay_wal)
        self.assignments[region.name] = target.server_id

    def _table_regions(self, table_name: str) -> List[tuple]:
        pairs = []
        for region_name, server_id in self.assignments.items():
            region = self.cluster.get_region(region_name)
            if region is not None and region.table_name == table_name:
                pairs.append((region_name, server_id))
        return pairs

    def region_locations(self, table_name: str) -> List[RegionLocation]:
        """All regions of a table in row-key order -- SHC's partition source."""
        if table_name not in self.tables:
            raise NoSuchTableError(f"table {table_name} does not exist")
        locations = []
        for region_name, server_id in self._table_regions(table_name):
            region = self.cluster.get_region(region_name)
            server = self.cluster.region_servers[server_id]
            locations.append(
                RegionLocation(region_name, table_name, region.start_row,
                               region.end_row, server_id, server.host)
            )
        locations.sort(key=lambda loc: loc.start_row)
        return locations

    def locate(self, table_name: str, row: bytes) -> RegionLocation:
        """Which region (and server) holds ``row``."""
        for location in self.region_locations(table_name):
            region = self.cluster.get_region(location.region_name)
            if region.contains_row(row):
                return location
        raise HBaseError(f"no region of {table_name} contains row {row!r}")

    # -- failure handling ---------------------------------------------------
    def handle_server_failure(self, server_id: str) -> List[str]:
        """Reassign a dead server's regions, replaying its WAL (log splitting).

        With region replication enabled, each region is first offered to its
        replication manager for *promotion*: a caught-up warm secondary takes
        over without WAL replay into a cold region.  Only regions with no
        live replica fall back to the cold reassignment path.
        """
        self._require_active()
        dead = self.cluster.region_servers.get(server_id)
        if dead is None:
            raise HBaseError(f"unknown server {server_id}")
        replication = self.cluster.replication
        moved = []
        for region_name, owner in list(self.assignments.items()):
            if owner != server_id:
                continue
            dead.regions.pop(region_name, None)
            if replication is not None:
                new_owner = replication.promote(region_name, dead.wal)
                if new_owner is not None:
                    self.assignments[region_name] = new_owner
                    moved.append(region_name)
                    continue
            region = self.cluster.get_region(region_name)
            self._assign(region, replay_wal=dead.wal)
            moved.append(region_name)
        if replication is not None:
            replication.drop_server_replicas(server_id)
        self._save_state()
        return moved

    # -- balancing & splits ------------------------------------------------------
    def balance(self) -> int:
        """Move regions from overloaded to underloaded servers; returns moves."""
        self._require_active()
        moves = 0
        while True:
            live = [s for s in self.cluster.region_servers.values() if s.alive]
            if len(live) < 2:
                return moves
            busiest = max(live, key=lambda s: len(s.regions))
            idlest = min(live, key=lambda s: len(s.regions))
            if len(busiest.regions) - len(idlest.regions) <= 1:
                return moves
            region_name = next(iter(busiest.regions))
            region = busiest.close_region(region_name)
            idlest.open_region(region)
            self.assignments[region_name] = idlest.server_id
            moves += 1
            self._save_state()

    def merge_regions(self, left_name: str, right_name: str) -> str:
        """Merge two adjacent regions into one (HBase ``merge_region``).

        Both regions' memstores are flushed first; the merged region adopts
        every store file (a follow-up major compaction collapses them).
        """
        self._require_active()
        left_owner = self.assignments.get(left_name)
        right_owner = self.assignments.get(right_name)
        if left_owner is None or right_owner is None:
            raise HBaseError("both regions must be online to merge")
        left = self.cluster.get_region(left_name)
        right = self.cluster.get_region(right_name)
        if left.table_name != right.table_name:
            raise HBaseError("cannot merge regions of different tables")
        if left.start_row > right.start_row:
            left, right = right, left
            left_name, right_name = right_name, left_name
            left_owner, right_owner = right_owner, left_owner
        if left.end_row != right.start_row:
            raise HBaseError(
                f"regions {left_name} and {right_name} are not adjacent"
            )
        self.cluster.region_servers[left_owner].flush_region(left_name)
        self.cluster.region_servers[right_owner].flush_region(right_name)

        merged = Region(left.table_name, list(left.stores), left.start_row,
                        right.end_row, flush_threshold=left.flush_threshold)
        for family in merged.stores:
            merged.stores[family].files = (
                list(left.stores[family].files)
                + list(right.stores[family].files)
            )
        for name, owner in ((left_name, left_owner), (right_name, right_owner)):
            self.cluster.region_servers[owner].close_region(name)
            del self.assignments[name]
            self.cluster.unregister_region(name)
        self.cluster.register_region(merged)
        self._assign(merged)
        self._save_state()
        return merged.name

    def split_region(self, region_name: str) -> Optional[List[str]]:
        """Split one region in two and reassign the daughters."""
        self._require_active()
        server_id = self.assignments.get(region_name)
        if server_id is None:
            raise HBaseError(f"region {region_name} is not assigned")
        server = self.cluster.region_servers[server_id]
        region = server.regions.get(region_name)
        if region is None:
            raise HBaseError(f"region {region_name} is offline")
        daughters = region.split()
        if daughters is None:
            return None
        server.close_region(region_name)
        del self.assignments[region_name]
        self.cluster.unregister_region(region_name)
        names = []
        for daughter in daughters:
            self.cluster.register_region(daughter)
            self._assign(daughter)
            names.append(daughter.name)
        self._save_state()
        return names

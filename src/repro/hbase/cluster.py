"""Wiring for one HBase cluster: hosts, masters, region servers, ZooKeeper.

An :class:`HBaseCluster` builds a ZooKeeper ensemble, one region server per
host, and an active + optional standby HMaster.  It also owns the *persistent
region registry* (the stand-in for store files living in HDFS), the simulated
clock, the cost model and a cluster-wide metrics registry.  Clusters register
themselves by ZooKeeper quorum name so ``ConnectionFactory`` can resolve a
``Configuration`` to a live cluster, exactly like a classpath ``hbase-site``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.cost import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import HBaseError
from repro.common.metrics import MetricsRegistry
from repro.common.simclock import SimClock
from repro.hbase.client import Configuration
from repro.hbase.hdfs import DistributedFileSystem
from repro.hbase.master import HMaster, RegionLocation, TableDescriptor
from repro.hbase.region import DEFAULT_FLUSH_THRESHOLD_BYTES, Region
from repro.hbase.regionserver import RegionServer
from repro.hbase.security import KeyDistributionCenter, TokenAuthority
from repro.hbase.zookeeper import ZooKeeper

#: quorum name -> cluster, the moral equivalent of DNS + hbase-site.xml
_CLUSTER_REGISTRY: Dict[str, "HBaseCluster"] = {}


def get_cluster(quorum: str) -> "HBaseCluster":
    """Resolve a ZooKeeper quorum string to a registered cluster."""
    cluster = _CLUSTER_REGISTRY.get(quorum)
    if cluster is None:
        raise HBaseError(f"no HBase cluster registered for quorum {quorum!r}")
    return cluster


def clear_cluster_registry() -> None:
    """Test hook: forget every registered cluster."""
    _CLUSTER_REGISTRY.clear()


class HBaseCluster:
    """One self-contained HBase deployment."""

    def __init__(
        self,
        name: str,
        hosts: Sequence[str],
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        secure: bool = False,
        kdc: Optional[KeyDistributionCenter] = None,
        standby_masters: int = 0,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD_BYTES,
        region_max_bytes: Optional[int] = None,
        hdfs_replication: int = 3,
    ) -> None:
        if not hosts:
            raise HBaseError("a cluster needs at least one host")
        self.name = name
        self.hosts = list(hosts)
        self.clock = clock if clock is not None else SimClock()
        self.cost = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.metrics = MetricsRegistry()
        #: optional :class:`~repro.common.faults.FaultInjector`; while None,
        #: every substrate fault point is a single ``is None`` check
        self.faults = None
        self.flush_threshold = flush_threshold
        self.zookeeper = ZooKeeper()
        self.hdfs = DistributedFileSystem(self.hosts, hdfs_replication)
        self._regions: Dict[str, Region] = {}
        #: optional :class:`~repro.hbase.replication.ReplicationManager`;
        #: while None, every replication hook is a single ``is None`` check
        self.replication = None
        #: optional :class:`~repro.hbase.cdc.CDCStream`; while None (the
        #: default), every CDC hook is a single ``is None`` check
        self.cdc = None
        #: servers the serving layer reported degraded (docs/replication.md);
        #: replica routing avoids them until they are reported healthy again
        self._unhealthy_servers: set = set()

        self.region_max_bytes = region_max_bytes
        self._pending_splits: set = set()
        self.region_servers: Dict[str, RegionServer] = {}
        for i, host in enumerate(self.hosts):
            server_id = f"{name}-rs{i}"
            server = RegionServer(server_id, host, self.cost)
            server.region_max_bytes = region_max_bytes
            server.split_listener = self._pending_splits.add
            server.hdfs = self.hdfs
            self.region_servers[server_id] = server

        self.masters: List[HMaster] = [HMaster(f"{name}-master0", self)]
        for i in range(standby_masters):
            self.masters.append(HMaster(f"{name}-master{i + 1}", self))

        self.secure = secure
        self.service_name = f"hbase/{name}"
        if secure:
            if kdc is None:
                raise HBaseError("a secure cluster needs a KDC")
            self.kdc = kdc
            self.token_authority = TokenAuthority(self.service_name, kdc, self.clock)
        else:
            self.kdc = kdc
            self.token_authority = None

        self.quorum = f"zk-{name}:2181"
        _CLUSTER_REGISTRY[self.quorum] = self

    # -- plumbing -----------------------------------------------------------
    def configuration(self, client_host: str = "client") -> Configuration:
        """A ready-to-use client Configuration pointing at this cluster."""
        return Configuration({
            Configuration.QUORUM: self.quorum,
            Configuration.CLIENT_HOST: client_host,
        })

    def enable_block_cache(self, capacity_bytes: int) -> None:
        """Give every region server a fresh LRU block cache of this size.

        Replaces any existing caches (so repeated calls reset hit counters).
        The cache is an opt-in ablation knob: until this is called, scans
        charge the exact uncached cost path.
        """
        from repro.hbase.blockcache import BlockCache

        for server in self.region_servers.values():
            server.block_cache = BlockCache(capacity_bytes)

    def disable_block_cache(self) -> None:
        """Detach every server's block cache, restoring uncached charging."""
        for server in self.region_servers.values():
            server.block_cache = None

    def block_cache_stats(self) -> Dict[str, object]:
        """Per-server cache snapshots, for tests and benchmark reports."""
        return {
            server_id: server.block_cache.stats()
            for server_id, server in self.region_servers.items()
            if server.block_cache is not None
        }

    def enable_region_replication(self, replicas: int = 1) -> "object":
        """Opt in to region read replicas (docs/replication.md).

        Creates a :class:`~repro.hbase.replication.ReplicationManager`,
        places ``replicas`` secondaries per region immediately, and keeps
        them fed from :meth:`run_maintenance`.  Until this is called (the
        default state) no replica exists and every cost path is
        byte-identical to the seed.
        """
        from repro.hbase.replication import ReplicationManager

        self.replication = ReplicationManager(self, replicas)
        self.replication.ensure_placement()
        return self.replication

    def enable_cdc(self) -> "object":
        """Opt in to change-data capture (docs/views.md).

        Creates a :class:`~repro.hbase.cdc.CDCStream` (idempotent: repeated
        calls return the same stream, keeping existing subscriptions) and
        keeps it pumped from :meth:`run_maintenance`.  Until this is called
        no WAL tail is ever polled and every cost path is byte-identical to
        the seed.
        """
        from repro.hbase.cdc import CDCStream

        if self.cdc is None:
            self.cdc = CDCStream(self)
        return self.cdc

    def disable_cdc(self) -> None:
        """Drop every subscription and detach the CDC stream."""
        self.cdc = None

    def disable_region_replication(self) -> None:
        """Drop every replica and detach the replication manager."""
        if self.replication is None:
            return
        for server in self.region_servers.values():
            server.replica_regions.clear()
        self.replication = None

    def report_server_health(self, server_id: str, healthy: bool) -> None:
        """Serving-layer health signal feeding replica read routing."""
        if healthy:
            self._unhealthy_servers.discard(server_id)
        else:
            self._unhealthy_servers.add(server_id)

    def is_server_healthy(self, server_id: str) -> bool:
        """Alive and not flagged degraded by the serving layer."""
        server = self.region_servers.get(server_id)
        if server is None or not server.alive:
            return False
        return server_id not in self._unhealthy_servers

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.common.faults.FaultInjector` (None removes it).

        Substrate fault points (client RPCs, meta lookups, mid-scan pages,
        pushed-down filters) consult ``cluster.faults`` on every invocation;
        with no injector installed they are exactly the fault-free code path.
        """
        self.faults = injector

    def on_connection_created(self) -> None:
        """Hook for connection-setup accounting (the cache makes this rare)."""
        # time is charged by the caller that owns a ledger; the counter above
        # in Connection.__init__ is what the harness converts into seconds

    @property
    def active_master(self) -> HMaster:
        leader = self.zookeeper.leader("/hbase/master-election")
        for master in self.masters:
            if master.name == leader:
                return master
        raise HBaseError("no active master (did every master fail?)")

    def failover_master(self) -> HMaster:
        """After the active master dies, promote the new election winner."""
        master = self.active_master
        master.take_over()
        return master

    # -- persistent region registry ("HDFS") ----------------------------------
    def register_region(self, region: Region) -> None:
        self._regions[region.name] = region

    def unregister_region(self, region_name: str) -> None:
        self._regions.pop(region_name, None)
        if self.replication is not None:
            self.replication.drop_region(region_name)

    def get_region(self, region_name: str) -> Optional[Region]:
        return self._regions.get(region_name)

    # -- admin conveniences ---------------------------------------------------
    def create_table(
        self,
        name: str,
        families: Sequence[str],
        split_keys: Optional[Sequence[bytes]] = None,
        max_versions: int = 3,
    ) -> TableDescriptor:
        return self.active_master.create_table(name, families, split_keys, max_versions)

    def drop_table(self, name: str) -> None:
        self.active_master.drop_table(name)

    def has_table(self, name: str) -> bool:
        return name in self.active_master.tables

    def set_table_attribute(self, name: str, key: str, value: str) -> None:
        self.active_master.set_table_attribute(name, key, value)

    def get_table_attribute(self, name: str, key: str) -> Optional[str]:
        return self.active_master.get_table_attribute(name, key)

    def region_locations(self, table_name: str) -> List[RegionLocation]:
        return self.active_master.region_locations(table_name)

    def flush_table(self, table_name: str) -> None:
        for location in self.region_locations(table_name):
            self.region_servers[location.server_id].flush_region(location.region_name)

    def compact_table(self, table_name: str, major: bool = False) -> None:
        for location in self.region_locations(table_name):
            self.region_servers[location.server_id].compact_region(location.region_name, major)

    def run_maintenance(self) -> Dict[str, int]:
        """Split outgrown regions and rebalance -- HBase's background chores.

        Deterministic stand-in for the HMaster's housekeeping threads; the
        write path invokes it after flushing a table.
        """
        splits = 0
        while self._pending_splits:
            region_name = self._pending_splits.pop()
            if self.get_region(region_name) is None:
                continue
            daughters = self.active_master.split_region(region_name)
            if daughters:
                splits += 1
                if self.region_max_bytes is not None:
                    for daughter in daughters:
                        region = self.get_region(daughter)
                        if region is not None and region.size_bytes() >= self.region_max_bytes:
                            self._pending_splits.add(daughter)
        moves = self.active_master.balance()
        if self.replication is not None:
            self.replication.ensure_placement()
            self.replication.pump()
        if self.cdc is not None:
            self.cdc.pump()
        return {"splits": splits, "moves": moves}

    def kill_region_server(self, server_id: str) -> List[str]:
        """Crash a server and run the master's recovery; returns moved regions."""
        server = self.region_servers.get(server_id)
        if server is None:
            raise HBaseError(f"unknown region server {server_id}")
        server.crash()
        return self.active_master.handle_server_failure(server_id)

    def table_size_bytes(self, table_name: str) -> int:
        total = 0
        for location in self.region_locations(table_name):
            region = self.get_region(location.region_name)
            if region is not None:
                total += region.size_bytes()
        return total

    def __repr__(self) -> str:
        return (
            f"HBaseCluster({self.name}, hosts={len(self.hosts)}, "
            f"tables={sorted(self.active_master.tables)})"
        )

"""The in-memory write buffer of a region (HBase MemStore).

Cells are kept sorted in KeyValue order so reads can merge the memstore with
store files without sorting, and so a flush can emit an already-sorted store
file in one pass.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple

from repro.hbase.cell import Cell


class MemStore:
    """A sorted, size-tracked buffer of cells."""

    def __init__(self) -> None:
        # entries are (sort_key, insertion_seq, cell); the sequence number
        # breaks ties so identical coordinates never compare Cell objects
        self._entries: List[Tuple[tuple, int, Cell]] = []
        self._seq = 0
        self._size_bytes = 0

    def add(self, cell: Cell) -> None:
        """Insert one cell keeping KeyValue order."""
        self._seq += 1
        bisect.insort(self._entries, (cell.sort_key(), self._seq, cell))
        self._size_bytes += cell.heap_size()

    def add_all(self, cells: List[Cell]) -> None:
        """Bulk insert; re-sorts once, which is cheaper than n insorts."""
        if not cells:
            return
        for cell in cells:
            self._seq += 1
            self._entries.append((cell.sort_key(), self._seq, cell))
        self._entries.sort(key=lambda e: (e[0], e[1]))
        self._size_bytes += sum(c.heap_size() for c in cells)

    def scan(self, start_row: bytes = b"", stop_row: bytes | None = None) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in KeyValue order."""
        lo = bisect.bisect_left(self._entries, ((start_row,),)) if start_row else 0
        for __, __seq, cell in self._entries[lo:]:
            if stop_row is not None and cell.row >= stop_row:
                break
            yield cell

    def snapshot(self) -> List[Cell]:
        """The current contents, sorted, for flushing to a store file."""
        return [cell for __, __seq, cell in self._entries]

    def clear(self) -> None:
        self._entries.clear()
        self._size_bytes = 0

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def __len__(self) -> int:
        return len(self._entries)

"""An HBase-like distributed, column-oriented key-value store (simulated).

This package is a from-scratch substrate standing in for Apache HBase: sorted
memstores flushed to immutable store files (with block indexes and bloom
filters), a write-ahead log, regions with split/merge, region servers that
evaluate server-side filters, an HMaster, a ZooKeeper-like coordination
service, a client API (Put/Get/Scan/Delete/BulkGet) and a Kerberos-like
security layer issuing delegation tokens.  All byte-level semantics that SHC's
optimizations depend on (lexicographic row ordering, region boundaries,
per-cell timestamps/versions) are honoured exactly.
"""

from repro.hbase.cell import Cell, CellType
from repro.hbase.client import (
    Connection,
    ConnectionFactory,
    Delete,
    Get,
    Put,
    Result,
    Scan,
    Table,
)
from repro.hbase.cluster import HBaseCluster
from repro.hbase.hbytes import Bytes, OrderedBytes

__all__ = [
    "Bytes",
    "OrderedBytes",
    "Cell",
    "CellType",
    "HBaseCluster",
    "Connection",
    "ConnectionFactory",
    "Table",
    "Put",
    "Get",
    "Scan",
    "Delete",
    "Result",
]

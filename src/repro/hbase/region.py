"""Regions: contiguous row-key ranges of a table, the unit of distribution.

A region holds one :class:`Store` per column family (HBase keeps separate
store files per family, which is exactly why SHC's column pruning saves real
I/O: families that no required column maps to are never read).  Each store is
a memstore plus a stack of immutable store files; reads merge them, flushes
roll the memstore into a new file, compactions collapse the stack and drop
shadowed cells and tombstones.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.errors import HBaseError
from repro.hbase.cell import Cell
from repro.hbase.hfile import StoreFile
from repro.hbase.memstore import MemStore

DEFAULT_FLUSH_THRESHOLD_BYTES = 256 * 1024


@dataclass(frozen=True)
class TimeRange:
    """Half-open timestamp interval ``[min_ts, max_ts)`` in milliseconds."""

    min_ts: int = 0
    max_ts: int = 2**63 - 1

    def contains(self, timestamp: int) -> bool:
        return self.min_ts <= timestamp < self.max_ts


class Store:
    """One column family's storage inside a region."""

    def __init__(self, family: str) -> None:
        self.family = family
        self.memstore = MemStore()
        self.files: List[StoreFile] = []

    def flush(self) -> Optional[StoreFile]:
        """Roll the memstore into a new store file; returns it (or None)."""
        snapshot = self.memstore.snapshot()
        if not snapshot:
            return None
        store_file = StoreFile(snapshot)
        self.files.append(store_file)
        self.memstore.clear()
        return store_file

    def compact(self, drop_deletes: bool) -> None:
        """Merge every store file into one.

        Major compactions (``drop_deletes=True``) also discard tombstones and
        the cells they shadow; minor compactions keep them so older files on
        other stores still get masked correctly.
        """
        if len(self.files) <= 1 and not drop_deletes:
            return
        merged = list(heapq.merge(*(f.scan() for f in self.files), key=Cell.sort_key))
        if drop_deletes:
            merged = _drop_shadowed(merged)
        self.files = [StoreFile(merged)] if merged else []

    def size_bytes(self) -> int:
        return self.memstore.size_bytes + sum(f.size_bytes for f in self.files)

    def scan(self, start_row: bytes, stop_row: Optional[bytes]) -> Iterator[Cell]:
        """Merged view over memstore + files for the row range."""
        sources = [self.memstore.scan(start_row, stop_row)]
        sources.extend(f.scan(start_row, stop_row) for f in self.files)
        return heapq.merge(*sources, key=Cell.sort_key)

    def scanned_bytes(self, start_row: bytes, stop_row: Optional[bytes]) -> int:
        """I/O bytes a scan of the range touches in this store."""
        total = sum(f.scanned_bytes(start_row, stop_row) for f in self.files)
        total += sum(c.heap_size() for c in self.memstore.scan(start_row, stop_row))
        return total


class Region:
    """A ``[start_row, end_row)`` slice of one table."""

    _ids = itertools.count(1)

    def __init__(
        self,
        table_name: str,
        families: Sequence[str],
        start_row: bytes = b"",
        end_row: bytes = b"",
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD_BYTES,
    ) -> None:
        self.table_name = table_name
        self.start_row = start_row
        self.end_row = end_row  # b"" means unbounded
        self.region_id = next(Region._ids)
        self.name = f"{table_name},{start_row.hex()},{self.region_id}"
        self.stores: Dict[str, Store] = {f: Store(f) for f in families}
        self.flush_threshold = flush_threshold
        self.max_flushed_seq = 0
        #: store files created by the last flush/compaction (for placement)
        self.last_new_files: list = []

    # -- row-range plumbing -------------------------------------------------
    def contains_row(self, row: bytes) -> bool:
        if row < self.start_row:
            return False
        return not self.end_row or row < self.end_row

    def clamp(self, start_row: bytes, stop_row: Optional[bytes]) -> Tuple[bytes, Optional[bytes]]:
        """Intersect a scan range with this region's boundaries."""
        lo = max(start_row, self.start_row)
        if self.end_row:
            hi = self.end_row if stop_row is None else min(stop_row, self.end_row)
        else:
            hi = stop_row
        return lo, hi

    # -- writes ------------------------------------------------------------
    def put_cells(self, cells: Sequence[Cell]) -> None:
        """Apply already-WAL-logged cells to the memstores."""
        by_family: Dict[str, List[Cell]] = {}
        for cell in cells:
            if not self.contains_row(cell.row):
                raise HBaseError(
                    f"row {cell.row!r} outside region {self.name} "
                    f"[{self.start_row!r}, {self.end_row!r})"
                )
            if cell.family not in self.stores:
                raise HBaseError(f"unknown column family {cell.family!r} in {self.table_name}")
            by_family.setdefault(cell.family, []).append(cell)
        for family, group in by_family.items():
            self.stores[family].memstore.add_all(group)

    def memstore_size(self) -> int:
        return sum(s.memstore.size_bytes for s in self.stores.values())

    def should_flush(self) -> bool:
        return self.memstore_size() >= self.flush_threshold

    def flush(self) -> int:
        """Flush every store; returns total bytes written to store files."""
        written = 0
        self.last_new_files = []
        for store in self.stores.values():
            store_file = store.flush()
            if store_file is not None:
                written += store_file.size_bytes
                self.last_new_files.append(store_file)
        return written

    def compact(self, major: bool = False) -> None:
        before = {
            id(f) for store in self.stores.values() for f in store.files
        }
        for store in self.stores.values():
            store.compact(drop_deletes=major)
        self.last_new_files = [
            f for store in self.stores.values() for f in store.files
            if id(f) not in before
        ]

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self.stores.values())

    # -- reads --------------------------------------------------------------
    def scan_rows(
        self,
        start_row: bytes = b"",
        stop_row: Optional[bytes] = None,
        families: Optional[Set[str]] = None,
        columns: Optional[Set[Tuple[str, str]]] = None,
        time_range: Optional[TimeRange] = None,
        max_versions: int = 1,
    ) -> Iterator[Tuple[bytes, List[Cell]]]:
        """Yield ``(row_key, visible cells)`` in row order.

        Applies delete-marker masking, version pruning and column selection.
        ``families`` limits which stores are read at all (column-family
        pruning); ``columns`` further restricts to specific qualifiers.
        """
        lo, hi = self.clamp(start_row, stop_row)
        if hi is not None and lo >= hi:
            return
        chosen = self._chosen_families(families, columns)
        merged = heapq.merge(
            *(self.stores[f].scan(lo, hi) for f in chosen), key=Cell.sort_key
        )
        for row, group in itertools.groupby(merged, key=lambda c: c.row):
            visible = _visible_cells(list(group), columns, time_range, max_versions)
            if visible:
                yield row, visible

    def io_bytes_for_range(
        self,
        start_row: bytes = b"",
        stop_row: Optional[bytes] = None,
        families: Optional[Set[str]] = None,
        columns: Optional[Set[Tuple[str, str]]] = None,
    ) -> int:
        """Store-file + memstore bytes a scan over the range would read."""
        lo, hi = self.clamp(start_row, stop_row)
        if hi is not None and lo >= hi:
            return 0
        chosen = self._chosen_families(families, columns)
        return sum(self.stores[f].scanned_bytes(lo, hi) for f in chosen)

    def io_bytes_by_locality(
        self,
        host: str,
        start_row: bytes = b"",
        stop_row: Optional[bytes] = None,
        families: Optional[Set[str]] = None,
        columns: Optional[Set[Tuple[str, str]]] = None,
    ) -> Tuple[int, int]:
        """Split the range's I/O into (HDFS-local, HDFS-remote) bytes.

        A store file without placement metadata counts as local; the
        memstore always is.
        """
        lo, hi = self.clamp(start_row, stop_row)
        if hi is not None and lo >= hi:
            return 0, 0
        local = 0
        remote = 0
        for family in self._chosen_families(families, columns):
            store = self.stores[family]
            for store_file in store.files:
                nbytes = store_file.scanned_bytes(lo, hi)
                placed = store_file.hdfs_file
                if placed is None or placed.is_local_to(host):
                    local += nbytes
                else:
                    remote += nbytes
            local += sum(c.heap_size() for c in store.memstore.scan(lo, hi))
        return local, remote

    def touched_blocks_by_file(
        self,
        host: str,
        start_row: bytes = b"",
        stop_row: Optional[bytes] = None,
        families: Optional[Set[str]] = None,
        columns: Optional[Set[Tuple[str, str]]] = None,
    ) -> Tuple[List[Tuple[StoreFile, bool, List[tuple]]], int]:
        """Block-granular view of the I/O a range scan performs.

        Returns ``(files, memstore_bytes)`` where ``files`` lists, for every
        store file the scan touches, the file itself, whether its HDFS
        replica is local to ``host``, and its ``(block_index, nbytes)``
        pairs.  Summing all block bytes plus ``memstore_bytes`` reproduces
        :meth:`io_bytes_by_locality` exactly -- the block cache uses this
        decomposition to charge hits and misses per block while keeping
        cache-off totals byte-identical.
        """
        lo, hi = self.clamp(start_row, stop_row)
        if hi is not None and lo >= hi:
            return [], 0
        files: List[Tuple[StoreFile, bool, List[tuple]]] = []
        memstore_bytes = 0
        for family in self._chosen_families(families, columns):
            store = self.stores[family]
            for store_file in store.files:
                blocks = store_file.blocks_for_range(lo, hi)
                if blocks:
                    placed = store_file.hdfs_file
                    is_local = placed is None or placed.is_local_to(host)
                    files.append((store_file, is_local, blocks))
            memstore_bytes += sum(c.heap_size() for c in store.memstore.scan(lo, hi))
        return files, memstore_bytes

    def store_file_ids(self) -> Set[int]:
        """The ``file_id`` of every store file currently in this region."""
        return {f.file_id for store in self.stores.values() for f in store.files}

    def _chosen_families(
        self,
        families: Optional[Set[str]],
        columns: Optional[Set[Tuple[str, str]]],
    ) -> List[str]:
        wanted = set(self.stores)
        if families is not None:
            wanted &= families
        if columns:
            wanted &= {f for f, __ in columns}
        return sorted(wanted)

    # -- split ----------------------------------------------------------------
    def split_point(self) -> Optional[bytes]:
        """Midpoint row of the largest store, or None if unsplittable."""
        largest = max(self.stores.values(), key=Store.size_bytes, default=None)
        if largest is None:
            return None
        rows = sorted({c.row for f in largest.files for c in f.scan()})
        if len(rows) < 2:
            return None
        mid = rows[len(rows) // 2]
        if mid == self.start_row:
            return None
        return mid

    def split(self) -> Optional[Tuple["Region", "Region"]]:
        """Split into two daughter regions at the midpoint (HBase-style)."""
        point = self.split_point()
        if point is None:
            return None
        families = list(self.stores)
        left = Region(self.table_name, families, self.start_row, point, self.flush_threshold)
        right = Region(self.table_name, families, point, self.end_row, self.flush_threshold)
        for family, store in self.stores.items():
            cells = list(store.scan(self.start_row or b"", None))
            left_cells = [c for c in cells if c.row < point]
            right_cells = [c for c in cells if c.row >= point]
            if left_cells:
                left.stores[family].files.append(StoreFile(left_cells))
            if right_cells:
                right.stores[family].files.append(StoreFile(right_cells))
        return left, right

    def __repr__(self) -> str:
        return f"Region({self.name}, [{self.start_row!r}, {self.end_row!r}))"


def _visible_cells(
    cells: List[Cell],
    columns: Optional[Set[Tuple[str, str]]],
    time_range: Optional[TimeRange],
    max_versions: int,
) -> List[Cell]:
    """Resolve deletes/versions/column selection for one row's raw cells."""
    deletes = [c for c in cells if c.is_delete()]
    result: List[Cell] = []
    versions_seen: Dict[Tuple[str, str], int] = {}
    for cell in cells:  # already in KeyValue order: newest versions first
        if cell.is_delete():
            continue
        if columns is not None and (cell.family, cell.qualifier) not in columns:
            continue
        if any(d.shadows(cell) for d in deletes):
            continue
        # HBase applies the time range while scanning, then counts the
        # newest max_versions among the *qualifying* versions
        if time_range is not None and not time_range.contains(cell.timestamp):
            continue
        key = (cell.family, cell.qualifier)
        seen = versions_seen.get(key, 0)
        if seen >= max_versions:
            continue
        versions_seen[key] = seen + 1
        result.append(cell)
    return result


def _drop_shadowed(cells: List[Cell]) -> List[Cell]:
    """Major-compaction cleanup: remove tombstones and the cells they hide."""
    out: List[Cell] = []
    for row, group in itertools.groupby(cells, key=lambda c: c.row):
        row_cells = list(group)
        deletes = [c for c in row_cells if c.is_delete()]
        for cell in row_cells:
            if cell.is_delete():
                continue
            if any(d.shadows(cell) for d in deletes):
                continue
            out.append(cell)
    return out

"""A minimal HDFS: replicated file placement under the HBase store files.

Figure 1 puts HDFS underneath HBase; what matters for SHC is *where the
bytes live*.  HDFS's write path places the first replica on the writing
host, so a region server's flushes and compactions are host-local -- but
when the HMaster moves a region, the store files stay put and the region
reads them remotely until the next major compaction rewrites them locally.
That short-data-locality story is real HBase behaviour, and this module is
what makes it measurable in the simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import HBaseError


@dataclass(frozen=True)
class HdfsFile:
    """One replicated file: a path, its size, and its replica hosts."""

    path: str
    size_bytes: int
    replica_hosts: Tuple[str, ...]

    def is_local_to(self, host: str) -> bool:
        return host in self.replica_hosts


class DistributedFileSystem:
    """Replica placement + lookup for one cluster's files."""

    def __init__(self, hosts: Sequence[str], replication: int = 3) -> None:
        if not hosts:
            raise HBaseError("HDFS needs at least one datanode host")
        self.hosts = list(hosts)
        self.replication = min(replication, len(self.hosts))
        self._files: Dict[str, HdfsFile] = {}
        self._ids = itertools.count(1)

    def create_file(self, size_bytes: int, writer_host: Optional[str]) -> HdfsFile:
        """Write a file; the first replica lands on the writing host.

        Remaining replicas go to the next hosts in ring order -- a
        deterministic stand-in for HDFS's rack-aware placement.
        """
        path = f"/hbase/data/file-{next(self._ids)}"
        if writer_host in self.hosts:
            start = self.hosts.index(writer_host)
        else:
            start = (size_bytes + len(path)) % len(self.hosts)
        replicas = tuple(
            self.hosts[(start + i) % len(self.hosts)]
            for i in range(self.replication)
        )
        hdfs_file = HdfsFile(path, size_bytes, replicas)
        self._files[path] = hdfs_file
        return hdfs_file

    def locate(self, path: str) -> Tuple[str, ...]:
        hdfs_file = self._files.get(path)
        if hdfs_file is None:
            raise HBaseError(f"no such HDFS file {path!r}")
        return hdfs_file.replica_hosts

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self._files.values())

    def local_fraction(self, files: Sequence[HdfsFile], host: str) -> float:
        """Byte-weighted fraction of ``files`` readable without the network."""
        total = sum(f.size_bytes for f in files)
        if total == 0:
            return 1.0
        local = sum(f.size_bytes for f in files if f.is_local_to(host))
        return local / total

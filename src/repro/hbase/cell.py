"""Cells -- the atomic unit of HBase storage.

A cell is the tuple ``(row, column family, qualifier, timestamp, type, value)``.
Cells sort by row ascending, then family, then qualifier, then timestamp
*descending* (newest first), matching HBase's ``KeyValue`` comparator; the
memstore, store files and scanners all rely on this order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class CellType(enum.IntEnum):
    """Mutation type carried by a cell (subset of HBase's KeyValue types)."""

    PUT = 4
    DELETE = 8           # delete a specific cell version
    DELETE_COLUMN = 12   # delete all versions of one column
    DELETE_FAMILY = 14   # delete a whole column family for the row


@dataclass(frozen=True)
class Cell:
    """One immutable HBase cell."""

    row: bytes
    family: str
    qualifier: str
    timestamp: int
    value: bytes = b""
    cell_type: CellType = CellType.PUT

    def sort_key(self) -> Tuple[bytes, str, str, int, int]:
        """Key realising the KeyValue comparator (timestamp descending).

        Within identical coordinates, delete markers sort before puts (higher
        type code first) so scanners see the tombstone before the shadowed
        value -- same tie-break HBase uses.
        """
        return (self.row, self.family, self.qualifier, -self.timestamp, -int(self.cell_type))

    def heap_size(self) -> int:
        """Approximate on-disk / in-memory footprint in bytes."""
        return len(self.row) + len(self.family) + len(self.qualifier) + len(self.value) + 12

    def is_delete(self) -> bool:
        return self.cell_type != CellType.PUT

    def shadows(self, other: "Cell") -> bool:
        """True when this delete marker hides ``other`` from readers."""
        if not self.is_delete() or self.row != other.row or self.family != other.family:
            return False
        if self.cell_type == CellType.DELETE_FAMILY:
            return other.timestamp <= self.timestamp
        if self.qualifier != other.qualifier:
            return False
        if self.cell_type == CellType.DELETE_COLUMN:
            return other.timestamp <= self.timestamp
        return other.timestamp == self.timestamp


def compare_cells(a: Cell, b: Cell) -> int:
    """Three-way comparison in KeyValue order."""
    ka, kb = a.sort_key(), b.sort_key()
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0

"""Server-side filters evaluated inside Region Servers.

SHC's predicate pushdown (section VI.A.3) works by compiling Spark SQL source
filters into instances of these classes and attaching them to ``Scan``
requests; the Region Server then drops non-matching rows *before* anything
crosses the network.  The hierarchy mirrors the HBase filters SHC actually
uses: row-key comparisons, single-column value comparisons, prefix filters,
and AND/OR filter lists.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.hbase.cell import Cell


class CompareOp(enum.Enum):
    """Byte-wise comparison operators (HBase ``CompareFilter.CompareOp``)."""

    LESS = "<"
    LESS_OR_EQUAL = "<="
    EQUAL = "="
    NOT_EQUAL = "!="
    GREATER_OR_EQUAL = ">="
    GREATER = ">"

    def evaluate(self, lhs: bytes, rhs: bytes) -> bool:
        """Apply the operator to two byte strings (lexicographic order)."""
        if self is CompareOp.LESS:
            return lhs < rhs
        if self is CompareOp.LESS_OR_EQUAL:
            return lhs <= rhs
        if self is CompareOp.EQUAL:
            return lhs == rhs
        if self is CompareOp.NOT_EQUAL:
            return lhs != rhs
        if self is CompareOp.GREATER_OR_EQUAL:
            return lhs >= rhs
        return lhs > rhs


class Filter:
    """Base class: decides whether a fully-assembled row survives the scan."""

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        """Return True to keep the row, False to drop it."""
        raise NotImplementedError

    def cells_evaluated(self) -> int:
        """How many cell comparisons one row costs (for the cost model)."""
        return 1


class RowFilter(Filter):
    """Compare the row key itself against a constant."""

    def __init__(self, op: CompareOp, comparator: bytes) -> None:
        self.op = op
        self.comparator = comparator

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        return self.op.evaluate(row, self.comparator)

    def __repr__(self) -> str:
        return f"RowFilter(row {self.op.value} {self.comparator!r})"


class PrefixFilter(Filter):
    """Keep rows whose key starts with ``prefix``."""

    def __init__(self, prefix: bytes) -> None:
        self.prefix = prefix

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        return row.startswith(self.prefix)

    def __repr__(self) -> str:
        return f"PrefixFilter({self.prefix!r})"


class SingleColumnValueFilter(Filter):
    """Compare one column's latest value against a constant.

    ``filter_if_missing`` matches HBase semantics: when False (the default), a
    row that lacks the column passes the filter.  SHC sets it True because the
    relational model treats a missing column as NULL, and NULL never satisfies
    a comparison predicate.
    """

    def __init__(
        self,
        family: str,
        qualifier: str,
        op: CompareOp,
        comparator: bytes,
        filter_if_missing: bool = True,
    ) -> None:
        self.family = family
        self.qualifier = qualifier
        self.op = op
        self.comparator = comparator
        self.filter_if_missing = filter_if_missing

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        for cell in cells:
            if cell.family == self.family and cell.qualifier == self.qualifier:
                return self.op.evaluate(cell.value, self.comparator)
        return not self.filter_if_missing

    def __repr__(self) -> str:
        return (
            f"SingleColumnValueFilter({self.family}:{self.qualifier} "
            f"{self.op.value} {self.comparator!r})"
        )


class FilterListOp(enum.Enum):
    """Combination mode of a :class:`FilterList` (AND vs OR)."""

    MUST_PASS_ALL = "AND"
    MUST_PASS_ONE = "OR"


class FilterList(Filter):
    """Boolean combination of child filters (AND / OR)."""

    def __init__(self, operator: FilterListOp, filters: Sequence[Filter]) -> None:
        self.operator = operator
        self.filters: List[Filter] = list(filters)

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        if self.operator is FilterListOp.MUST_PASS_ALL:
            return all(f.filter_row(row, cells) for f in self.filters)
        return any(f.filter_row(row, cells) for f in self.filters)

    def cells_evaluated(self) -> int:
        return sum(f.cells_evaluated() for f in self.filters)

    def __repr__(self) -> str:
        inner = f" {self.operator.value} ".join(repr(f) for f in self.filters)
        return f"FilterList({inner})"


class PageFilter(Filter):
    """Stop returning rows once ``page_size`` rows have passed (LIMIT pushdown)."""

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self._seen = 0

    def filter_row(self, row: bytes, cells: Sequence[Cell]) -> bool:
        if self._seen >= self.page_size:
            return False
        self._seen += 1
        return True

    def reset(self) -> None:
        self._seen = 0

    def __repr__(self) -> str:
        return f"PageFilter({self.page_size})"

"""Immutable store files (HBase HFiles) with block index and bloom filter.

A flush writes the memstore snapshot into a :class:`StoreFile`.  The file
keeps a sparse *block index* (first row key of every block) so scans starting
mid-file seek instead of reading from the top, and a row-key *bloom filter*
so point Gets can skip files that certainly do not contain the row -- both
mechanisms HBase relies on and both metered by the cost model.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, List, Optional, Sequence

from repro.hbase.cell import Cell

DEFAULT_BLOCK_CELLS = 64


class BloomFilter:
    """A classic k-hash bloom filter over row keys."""

    def __init__(self, expected_keys: int, bits_per_key: int = 10, num_hashes: int = 3) -> None:
        self._num_bits = max(64, expected_keys * bits_per_key)
        self._bits = bytearray((self._num_bits + 7) // 8)
        self._num_hashes = num_hashes

    def _positions(self, key: bytes) -> Iterator[int]:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos // 8] |= 1 << (pos % 8)

    def might_contain(self, key: bytes) -> bool:
        return all(self._bits[p // 8] & (1 << (p % 8)) for p in self._positions(key))


class StoreFile:
    """An immutable, sorted run of cells plus its index structures."""

    _next_id = 0

    def __init__(self, cells: Sequence[Cell], block_cells: int = DEFAULT_BLOCK_CELLS) -> None:
        self._cells: List[Cell] = sorted(cells, key=Cell.sort_key)
        self._rows: List[bytes] = [c.row for c in self._cells]
        self._block_cells = block_cells
        self._block_index: List[bytes] = self._rows[::block_cells] if self._rows else []
        self.size_bytes = sum(c.heap_size() for c in self._cells)
        distinct_rows = len(set(self._rows))
        self._bloom = BloomFilter(max(1, distinct_rows))
        for row in set(self._rows):
            self._bloom.add(row)
        StoreFile._next_id += 1
        self.file_id = StoreFile._next_id
        #: HDFS placement; None means "assume local" (tests, bulk loads)
        self.hdfs_file = None

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def first_row(self) -> Optional[bytes]:
        return self._rows[0] if self._rows else None

    @property
    def last_row(self) -> Optional[bytes]:
        return self._rows[-1] if self._rows else None

    def might_contain_row(self, row: bytes) -> bool:
        """Bloom-filter check used by Get to skip files."""
        return self._bloom.might_contain(row)

    def block_start_keys(self) -> List[bytes]:
        """First row key of every block -- the sparse block index.

        Replica-aware routing splits a hot region's scan range at these
        keys, so each piece aligns with whole blocks and the per-piece
        charges sum exactly to the unsplit scan's charge.
        """
        return list(self._block_index)

    def seek_index(self, start_row: bytes) -> int:
        """Index of the first cell whose row is >= ``start_row`` (block seek)."""
        return bisect.bisect_left(self._rows, start_row)

    def scan(self, start_row: bytes = b"", stop_row: bytes | None = None) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in KeyValue order."""
        idx = self.seek_index(start_row) if start_row else 0
        for cell in self._cells[idx:]:
            if stop_row is not None and cell.row >= stop_row:
                break
            yield cell

    def scanned_bytes(self, start_row: bytes = b"", stop_row: bytes | None = None) -> int:
        """Bytes a scan over the given range touches (block-granular)."""
        return sum(nbytes for _, nbytes in self.blocks_for_range(start_row, stop_row))

    def blocks_for_range(
        self, start_row: bytes = b"", stop_row: bytes | None = None
    ) -> List[tuple]:
        """The ``(block_index, nbytes)`` pairs a scan of the range reads.

        HBase reads whole blocks, so the range is rounded out to block
        boundaries; the per-block sizes sum exactly to ``scanned_bytes``
        for the same range.  Block indices are stable for the lifetime of
        this (immutable) file, which is what lets the region-server block
        cache key on ``(file_id, block_index)``.
        """
        lo = self.seek_index(start_row) if start_row else 0
        hi = bisect.bisect_left(self._rows, stop_row) if stop_row is not None else len(self._cells)
        if lo >= hi:
            return []
        bc = self._block_cells
        first_block = lo // bc
        last_block = (hi + bc - 1) // bc  # exclusive
        blocks: List[tuple] = []
        for block_idx in range(first_block, last_block):
            start = block_idx * bc
            stop = min(len(self._cells), start + bc)
            nbytes = sum(c.heap_size() for c in self._cells[start:stop])
            blocks.append((block_idx, nbytes))
        return blocks
